//! Fault-injection model: from disturbance counters to *actual* bit-flips.
//!
//! The classic tracker behaviour (and the default here) is a hard cliff:
//! a row that accumulates `N_RH` disturbance records exactly one would-be
//! bitflip event. Real DRAM is messier — per-cell retention varies die to
//! die and row to row, so the RowHammer threshold is a distribution, not a
//! constant, and crossing it flips a bit only with some probability
//! (ABACuS and the RowHammer characterization literature model exactly
//! this). [`FaultModel::Probabilistic`] reproduces that behaviour while
//! staying bit-deterministic: per-row thresholds are sampled at tracker
//! init from a seeded hash, and each threshold *crossing* draws one
//! Bernoulli flip from a hash of `(seed, channel, bank, row, crossing)`.
//! Because every draw is a pure function of those coordinates — no shared
//! PRNG stream — the flip set is independent of the order in which
//! channels (or epochs, under parallel stepping) advance.
//!
//! On top of the raw flips sits a SEC-DED ECC model
//! ([`EccMode::SecDed`], [`classify_flips`]): one flip per row is
//! corrected, two are detected (a machine-check event), three or more
//! escape silently. A mitigation is then judged by the paper's real
//! currency — *silent* corruption of victim data — rather than by proxy
//! action counts.

use crate::geometry::RowAddr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How disturbance-threshold crossings turn into bit-flips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// The legacy hard cliff: exactly one would-be flip event when a row's
    /// disturbance reaches `N_RH`. This is the default and is bit-identical
    /// to the pre-fault-model tracker (the 40-config goldens pin it).
    #[default]
    Threshold,
    /// Per-row probabilistic flips: each row's threshold is sampled once at
    /// init from `N_RH × [1 - nrh_variation, 1 + nrh_variation]`, and every
    /// crossing of that per-row threshold draws one Bernoulli flip with
    /// `flip_probability`, from an order-independent hash of
    /// `(seed, channel, bank, row, crossing_count)`.
    Probabilistic {
        /// Probability that one threshold crossing flips a bit (0.0–1.0).
        flip_probability: f64,
        /// Half-width of the per-row threshold variation as a fraction of
        /// `N_RH` (0.0 = every row at exactly `N_RH`; must be < 1.0).
        nrh_variation: f64,
    },
}

impl FaultModel {
    /// True for the probabilistic variant.
    pub fn is_probabilistic(&self) -> bool {
        matches!(self, FaultModel::Probabilistic { .. })
    }
}

/// The ECC scheme layered over the raw flips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccMode {
    /// No ECC: every raw flip is silent corruption.
    #[default]
    None,
    /// SEC-DED per row: a single flip is corrected, a double flip is
    /// detected (machine check), triple-and-up escapes silently.
    SecDed,
}

/// The fault-injection knobs carried by the system configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// How threshold crossings turn into flips.
    #[serde(default)]
    pub model: FaultModel,
    /// The ECC scheme classifying the flips.
    #[serde(default)]
    pub ecc: EccMode,
}

impl FaultConfig {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if let FaultModel::Probabilistic { flip_probability, nrh_variation } = self.model {
            if !(0.0..=1.0).contains(&flip_probability) || flip_probability.is_nan() {
                return Err(format!(
                    "flip probability must be within [0, 1], got {flip_probability}"
                ));
            }
            if !(0.0..1.0).contains(&nrh_variation) || nrh_variation.is_nan() {
                return Err(format!(
                    "per-row N_RH variation must be within [0, 1), got {nrh_variation}"
                ));
            }
        }
        Ok(())
    }
}

/// What counts as a successful attack on the watched victim rows (declared
/// by a workload's victim layout; evaluated against the end-of-run flips).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuccessCriterion {
    /// At least one watched victim row took a flip that escaped ECC — the
    /// key-table/page-table threat model: corrected or detected flips do
    /// not hand the attacker anything.
    #[default]
    AnySilentFlip,
    /// At least one watched victim row took any raw flip, ECC or not — the
    /// denial-of-service reading where even a detected (machine-check)
    /// flip crashes the victim.
    AnyFlip,
}

// --- deterministic hashing ---------------------------------------------------

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer. All fault-model
/// randomness is derived by folding coordinates through this, so every draw
/// is a pure function of `(seed, channel, bank, row, …)` and therefore
/// independent of simulation order.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds a coordinate tuple into one 64-bit hash.
#[inline]
pub(crate) fn hash_coords(seed: u64, channel: u64, bank: u64, row: u64, extra: u64) -> u64 {
    mix64(seed ^ mix64(channel ^ mix64(bank ^ mix64(row ^ mix64(extra)))))
}

/// Maps a 64-bit hash to a uniform `[0, 1)` double (53 mantissa bits).
#[inline]
pub(crate) fn hash_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// --- ECC classification ------------------------------------------------------

/// The ECC classification of one tracker's raw flip set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EccClassification {
    /// Raw flips, before ECC.
    pub flips_raw: u64,
    /// Flips corrected by ECC (rows with exactly one flip under SEC-DED).
    pub corrected: u64,
    /// Flips detected but not corrected (rows with exactly two flips under
    /// SEC-DED; each such row raises one machine-check event).
    pub detected: u64,
    /// Flips that escaped ECC silently (3+ flips per row under SEC-DED;
    /// every flip when no ECC is present).
    pub silent: u64,
    /// Machine-check events raised (one per detected-double row).
    pub machine_checks: u64,
    /// Rows that took at least one silent flip, with their silent-flip
    /// counts, in row order.
    pub silent_rows: Vec<(RowAddr, u64)>,
}

/// Classifies a tracker's raw flip events under `ecc`, grouping flips per
/// victim row (the model's ECC codeword granularity).
pub fn classify_flips(flips: &[crate::rowhammer::BitflipEvent], ecc: EccMode) -> EccClassification {
    let mut per_row: BTreeMap<RowAddr, u64> = BTreeMap::new();
    for flip in flips {
        *per_row.entry(flip.victim).or_insert(0) += 1;
    }
    let mut out = EccClassification::default();
    for (row, count) in per_row {
        out.flips_raw += count;
        match ecc {
            EccMode::None => {
                out.silent += count;
                out.silent_rows.push((row, count));
            }
            EccMode::SecDed => match count {
                1 => out.corrected += 1,
                2 => {
                    out.detected += 2;
                    out.machine_checks += 1;
                }
                n => {
                    out.silent += n;
                    out.silent_rows.push((row, n));
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankAddr;
    use crate::rowhammer::BitflipEvent;

    fn flip(bank: usize, row: usize) -> BitflipEvent {
        BitflipEvent {
            victim: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank }, row },
            cycle: 0,
            disturbance: 64,
        }
    }

    #[test]
    fn default_fault_config_is_the_legacy_hard_threshold() {
        let config = FaultConfig::default();
        assert_eq!(config.model, FaultModel::Threshold);
        assert_eq!(config.ecc, EccMode::None);
        assert!(!config.model.is_probabilistic());
        assert_eq!(config.validate(), Ok(()));
    }

    #[test]
    fn probabilistic_knobs_are_validated() {
        let good = FaultConfig {
            model: FaultModel::Probabilistic { flip_probability: 0.5, nrh_variation: 0.2 },
            ecc: EccMode::SecDed,
        };
        assert_eq!(good.validate(), Ok(()));
        for (p, v) in [(-0.1, 0.0), (1.5, 0.0), (0.5, 1.0), (0.5, -0.2), (f64::NAN, 0.0)] {
            let bad = FaultConfig {
                model: FaultModel::Probabilistic { flip_probability: p, nrh_variation: v },
                ecc: EccMode::None,
            };
            assert!(bad.validate().is_err(), "p={p} v={v}");
        }
    }

    #[test]
    fn hash_is_deterministic_and_coordinate_sensitive() {
        let a = hash_coords(1, 2, 3, 4, 5);
        assert_eq!(a, hash_coords(1, 2, 3, 4, 5));
        assert_ne!(a, hash_coords(1, 2, 3, 4, 6));
        assert_ne!(a, hash_coords(1, 2, 3, 5, 4));
        assert_ne!(a, hash_coords(2, 1, 3, 4, 5));
        let u = hash_unit(a);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn secded_classifies_per_row_multiplicity() {
        // Row A: 1 flip (corrected); row B: 2 (detected + machine check);
        // row C: 3 (silent).
        let flips =
            vec![flip(0, 10), flip(0, 20), flip(0, 20), flip(1, 30), flip(1, 30), flip(1, 30)];
        let c = classify_flips(&flips, EccMode::SecDed);
        assert_eq!(c.flips_raw, 6);
        assert_eq!(c.corrected, 1);
        assert_eq!(c.detected, 2);
        assert_eq!(c.silent, 3);
        assert_eq!(c.machine_checks, 1);
        assert_eq!(c.silent_rows.len(), 1);
        assert_eq!(c.silent_rows[0].0.row, 30);
        assert_eq!(c.silent_rows[0].1, 3);
    }

    #[test]
    fn no_ecc_leaves_every_flip_silent() {
        let flips = vec![flip(0, 10), flip(0, 20), flip(0, 20)];
        let c = classify_flips(&flips, EccMode::None);
        assert_eq!(c.flips_raw, 3);
        assert_eq!(c.corrected + c.detected, 0);
        assert_eq!(c.silent, 3);
        assert_eq!(c.machine_checks, 0);
        assert_eq!(c.silent_rows.len(), 2);
    }
}
