//! # bh-bench — the experiment harness
//!
//! Regenerates every table and figure of the BreakHammer paper's evaluation.
//! Each figure has a dedicated binary under `src/bin/` (run it with
//! `cargo run -p bh-bench --release --bin figNN_…`); the shared machinery —
//! workload-mix campaigns, parallel evaluation, aggregation, table/CSV
//! output, and the environment-variable scale knobs — lives in
//! [`experiments`].
//!
//! Criterion micro-benchmarks for the simulator's hot paths live under
//! `benches/` and run with `cargo bench -p bh-bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod experiments;

pub use campaign::{
    termination_status, CampaignSpec, CellOverseer, CellRecord, FailedCell, ResultStore,
    StoreEntry, SweepSummary,
};
pub use experiments::{
    evaluate_jobs, figure_nrh, filter_class, geomean_speedup, maybe_print_config, mean_of,
    paper_config, print_results, select, Campaign, EvalHooks, RunRecord, Scale,
};
