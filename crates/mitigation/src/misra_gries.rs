//! Misra–Gries frequent-element counting, the tracker shared by Graphene and
//! AQUA.
//!
//! The Misra–Gries summary tracks the `capacity` most frequently activated
//! rows of a bank with a bounded error: any row activated more than
//! `spillover` times is guaranteed to be present in the table, and a tracked
//! row's counter is at most `spillover` below its true activation count. Both
//! Graphene and AQUA rely on this guarantee to never miss an aggressor.

use std::collections::HashMap;

/// A Misra–Gries summary over row indices.
#[derive(Debug, Clone)]
pub struct MisraGries {
    capacity: usize,
    counts: HashMap<usize, u64>,
    spillover: u64,
}

impl MisraGries {
    /// Creates a summary that tracks up to `capacity` rows.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Misra-Gries capacity must be positive");
        MisraGries { capacity, counts: HashMap::with_capacity(capacity), spillover: 0 }
    }

    /// Records one activation of `row` and returns its estimated count.
    pub fn record(&mut self, row: usize) -> u64 {
        if let Some(c) = self.counts.get_mut(&row) {
            *c += 1;
            return *c;
        }
        if self.counts.len() < self.capacity {
            let count = self.spillover + 1;
            self.counts.insert(row, count);
            return count;
        }
        // Table full: either replace an entry that has decayed to the
        // spillover level, or absorb the activation into the spillover.
        // The victim choice is made deterministic (lowest row index) so that
        // simulations are exactly reproducible run to run.
        if let Some(&victim) =
            self.counts.iter().filter(|(_, c)| **c <= self.spillover).map(|(r, _)| r).min()
        {
            self.counts.remove(&victim);
            let count = self.spillover + 1;
            self.counts.insert(row, count);
            count
        } else {
            self.spillover += 1;
            self.spillover
        }
    }

    /// Estimated activation count of `row` (the spillover if untracked).
    pub fn estimate(&self, row: usize) -> u64 {
        self.counts.get(&row).copied().unwrap_or(self.spillover)
    }

    /// Resets the counter of `row` to the current spillover level, as Graphene
    /// does after issuing a preventive refresh for the row.
    pub fn reset_row(&mut self, row: usize) {
        if let Some(c) = self.counts.get_mut(&row) {
            *c = self.spillover;
        }
    }

    /// Removes `row` from the table entirely (AQUA does this after migrating
    /// the row away, because the quarantined copy starts cold).
    pub fn remove_row(&mut self, row: usize) {
        self.counts.remove(&row);
    }

    /// Clears the whole summary (done at every reset window).
    pub fn clear(&mut self) {
        self.counts.clear();
        self.spillover = 0;
    }

    /// Number of tracked rows.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if no row is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current spillover counter.
    pub fn spillover(&self) -> u64 {
        self.spillover
    }

    /// Iterates over `(row, estimated_count)` pairs of tracked rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().map(|(r, c)| (*r, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_up_to_capacity_exactly() {
        let mut mg = MisraGries::new(4);
        for row in 0..4 {
            for _ in 0..=row {
                mg.record(row);
            }
        }
        assert_eq!(mg.len(), 4);
        for row in 0..4usize {
            assert_eq!(mg.estimate(row), row as u64 + 1);
        }
        assert_eq!(mg.spillover(), 0);
    }

    #[test]
    fn never_underestimates_by_more_than_spillover() {
        let mut mg = MisraGries::new(4);
        let mut truth = std::collections::HashMap::new();
        // 8 distinct rows, so half of them spill.
        for i in 0..2000usize {
            let row = i % 8;
            mg.record(row);
            *truth.entry(row).or_insert(0u64) += 1;
        }
        for (row, true_count) in truth {
            let est = mg.estimate(row);
            assert!(
                est + mg.spillover() >= true_count,
                "row {row}: estimate {est} + spillover {} < true {true_count}",
                mg.spillover()
            );
        }
    }

    #[test]
    fn heavy_hitter_is_always_tracked() {
        let mut mg = MisraGries::new(2);
        // Interleave one heavy row with many light rows.
        for i in 0..1000usize {
            mg.record(9999);
            mg.record(i);
        }
        // The heavy row must be tracked and its estimate must cover at least
        // the true count minus the spillover (Misra-Gries guarantee).
        assert!(mg.estimate(9999) + mg.spillover() >= 1000);
        assert!(mg.iter().any(|(r, _)| r == 9999));
    }

    #[test]
    fn reset_and_remove() {
        let mut mg = MisraGries::new(2);
        for _ in 0..10 {
            mg.record(5);
        }
        assert_eq!(mg.estimate(5), 10);
        mg.reset_row(5);
        assert_eq!(mg.estimate(5), mg.spillover());
        mg.remove_row(5);
        assert!(mg.is_empty());
        for _ in 0..3 {
            mg.record(1);
        }
        mg.clear();
        assert!(mg.is_empty());
        assert_eq!(mg.spillover(), 0);
        assert_eq!(mg.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MisraGries::new(0);
    }
}
