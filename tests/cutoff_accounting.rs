//! Per-core cycle accounting at the `max_dram_cycles` cutoff.
//!
//! A core that is hard-stalled (instruction window full behind an incomplete
//! miss) accrues its cycles as *debt* that is only replayed into the core
//! when the miss completes — or, if the simulation is cut off mid-stall, by
//! the final flush before the [`SimulationResult`] snapshot. If that flush
//! were missing, a core cut off mid-stall would under-report its cycles and
//! per-core cycle totals would no longer sum to the simulated horizon.
//! These tests force a cutoff in the middle of a hard stall and pin the
//! invariant on both kernels.

use breakhammer_suite::cpu::Trace;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    SchedulerKind, SimulationResult, System, SystemConfig, TerminationReason,
};
use breakhammer_suite::workloads::AttackerProfile;

/// CPU ticks the simulator's clock-domain crossing performs over
/// `dram_cycles` DRAM cycles — the same fractional-accumulator arithmetic,
/// replayed operation for operation, so the comparison is exact.
fn cpu_ticks(dram_cycles: u64, ratio: f64) -> u64 {
    let mut acc = 0.0f64;
    let mut ticks = 0u64;
    for _ in 0..dram_cycles {
        acc += ratio;
        while acc >= 1.0 {
            acc -= 1.0;
            ticks += 1;
        }
    }
    ticks
}

/// Four copies of the tight uncached hammering loop: every core's window
/// fills up behind outstanding misses almost immediately and stays full, so
/// the `max_dram_cycles` cutoff is guaranteed to land mid-hard-stall.
fn stall_heavy_config(kernel: SchedulerKind) -> (SystemConfig, Vec<Trace>) {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    config.instructions_per_core = 500_000; // far more than the cutoff allows
    config.max_dram_cycles = 25_000;
    config.cache.mshrs = 4; // tiny MSHR pool: misses back up into hard stalls
    config.scheduler = kernel;
    let attacker = AttackerProfile::paper_default();
    let traces = (0..4)
        .map(|i| attacker.trace(&config.geometry, config.memctrl.mapping, 2_000, 900 + i as u64))
        .collect();
    (config, traces)
}

fn run(kernel: SchedulerKind) -> (SimulationResult, f64) {
    let (config, traces) = stall_heavy_config(kernel);
    let ratio = config.cpu_cycles_per_dram_cycle();
    (System::new(config, &traces, vec![0, 1, 2, 3]).run(), ratio)
}

/// The invariant: at the cutoff, every unfinished core's cycle counter must
/// equal the CPU ticks elapsed over the simulated horizon — stall debt
/// included. An unflushed final-step debt would leave the hard-stalled cores
/// short.
#[test]
fn cutoff_mid_stall_flushes_all_stall_debt_into_the_cores() {
    for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
        let (result, ratio) = run(kernel);
        assert_eq!(result.dram_cycles, 25_000, "{kernel:?}: the run must hit the cutoff");
        // The default-on watchdog must see the reads trickling through and
        // leave the cutoff classified as a cutoff, not a livelock.
        assert_eq!(result.termination, TerminationReason::CycleCutoff, "{kernel:?}");
        let expected = cpu_ticks(result.dram_cycles, ratio);
        for core in &result.cores {
            assert!(!core.finished, "{kernel:?}: the cutoff must land before completion");
            assert_eq!(
                core.cycles, expected,
                "{kernel:?}: core {:?} cycles must cover the whole horizon (stall debt flushed)",
                core.thread
            );
        }
        // The scenario really did cut off inside memory stalls, not idling.
        let stalled: u64 = result.cores.iter().map(|c| c.instructions).sum();
        assert!(stalled < 4 * 500_000, "no core may complete its budget");
        assert!(result.cache.mshr_full_rejections > 0, "{kernel:?}: misses must have backed up");
    }
}

/// Both kernels must agree on the cut-off state bit for bit (the event-driven
/// kernel fast-forwards through the stalled tail, the per-cycle kernel grinds
/// through it — the flushed totals must be identical).
#[test]
fn cutoff_mid_stall_is_identical_across_kernels() {
    let (reference, _) = run(SchedulerKind::PerCycle);
    let (event_driven, _) = run(SchedulerKind::EventDriven);
    assert_eq!(reference, event_driven);
}
