//! D2 negative: deterministic simulation code plus a timing test module.

pub fn step(cycle: u64) -> u64 {
    cycle + 1
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let start = Instant::now();
        assert!(start.elapsed().as_secs() < 60);
    }
}
