//! Victim layouts — the third axis of the composable attacker framework.
//!
//! A [`VictimLayout`] declares which DRAM rows hold the data the attack is
//! trying to corrupt. The simulator watches exactly those rows and reports
//! their accumulated disturbance and bitflips per victim in
//! `SimulationResult::victims`, so a campaign can distinguish "the attacker
//! was throttled" from "the attacker was throttled *and the victim data
//! survived*" — the end-to-end property BreakHammer actually promises.

use crate::placement::{AggressorGrid, AGGRESSOR_BASE};
use bh_dram::{DramGeometry, RowAddr, SuccessCriterion};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One watched victim row: a physical row on a specific channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VictimRow {
    /// The channel whose RowHammer tracker watches this row.
    pub channel: usize,
    /// The bank-qualified row address.
    pub row: RowAddr,
}

/// The victim axis: given where the aggressors landed, which rows hold the
/// data at risk.
///
/// # Example
///
/// ```
/// use bh_dram::DramGeometry;
/// use bh_workloads::{
///     AccessPattern, AggressorPlacement, FuzzedPattern, NeighborPlacement, SandwichedVictims,
///     VictimLayout,
/// };
///
/// let geometry = DramGeometry::paper_ddr5();
/// let pattern = FuzzedPattern::new(1, 4);
/// let grid = NeighborPlacement::new().place(&pattern.request(), &geometry);
/// let victims = SandwichedVictims::new().victim_rows(&grid, &geometry);
/// // Every victim is directly adjacent to some aggressor row.
/// let aggressors: Vec<usize> = grid.aggressor_rows().iter().map(|(_, r)| *r).collect();
/// assert!(victims.iter().all(|v| {
///     aggressors.iter().any(|a| v.row.row + 1 == *a || *a + 1 == v.row.row)
/// }));
/// ```
pub trait VictimLayout: fmt::Debug + Send + Sync {
    /// Short label used in scenario names (e.g. `"sandwich"`, `"keys"`).
    fn label(&self) -> &'static str;

    /// The rows holding victim data, given the placed aggressor grid. Row
    /// indices must already be reduced modulo `geometry.rows_per_bank`.
    fn victim_rows(&self, grid: &AggressorGrid, geometry: &DramGeometry) -> Vec<VictimRow>;

    /// What counts as a successful attack on this layout's rows. The default
    /// — at least one flip that escaped ECC silently — matches the
    /// key-table/page-table threat model, where corrected or detected flips
    /// hand the attacker nothing.
    fn success_criterion(&self) -> SuccessCriterion {
        SuccessCriterion::AnySilentFlip
    }
}

/// The physically-adjacent victims of every aggressor: rows `r ± 1` for each
/// placed aggressor row `r`, on every channel the grid touches, excluding
/// rows that are themselves aggressors (double-sided sandwiches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SandwichedVictims;

impl SandwichedVictims {
    /// The adjacent-row victim layout.
    pub fn new() -> Self {
        SandwichedVictims
    }
}

impl VictimLayout for SandwichedVictims {
    fn label(&self) -> &'static str {
        "sandwich"
    }

    fn victim_rows(&self, grid: &AggressorGrid, geometry: &DramGeometry) -> Vec<VictimRow> {
        let rows = geometry.rows_per_bank;
        let aggressors: BTreeSet<(bh_dram::BankAddr, usize)> =
            grid.aggressor_rows().iter().map(|(bank, row)| (*bank, row % rows)).collect();
        let mut victims = BTreeSet::new();
        for channel in grid.channels() {
            for (bank, row) in &aggressors {
                let mut neighbors = vec![(row + 1) % rows];
                if *row > 0 {
                    neighbors.push(row - 1);
                } else {
                    neighbors.push(rows - 1);
                }
                for neighbor in neighbors {
                    if !aggressors.contains(&(*bank, neighbor)) {
                        victims.insert(VictimRow {
                            channel: *channel,
                            row: RowAddr { bank: *bank, row: neighbor },
                        });
                    }
                }
            }
        }
        victims.into_iter().collect()
    }
}

/// A fixed key-table layout: `entries` security-critical rows interleaved
/// with the classic aggressor region (rows `AGGRESSOR_BASE + 1 + 2i`), the
/// textbook RSA-key/page-table victim placement — each key row sits exactly
/// between two aggressor rows of a classic double-sided pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyTableVictims {
    entries: usize,
}

impl KeyTableVictims {
    /// A key table of `entries` rows (at least one).
    pub fn new(entries: usize) -> Self {
        KeyTableVictims { entries: entries.max(1) }
    }
}

impl Default for KeyTableVictims {
    fn default() -> Self {
        KeyTableVictims::new(4)
    }
}

impl VictimLayout for KeyTableVictims {
    fn label(&self) -> &'static str {
        "keys"
    }

    fn victim_rows(&self, grid: &AggressorGrid, geometry: &DramGeometry) -> Vec<VictimRow> {
        let rows = geometry.rows_per_bank;
        let mut victims = BTreeSet::new();
        for channel in grid.channels() {
            for step in 0..grid.bank_steps() {
                let bank = grid.bank(step);
                for i in 0..self.entries {
                    victims.insert(VictimRow {
                        channel: *channel,
                        row: RowAddr { bank, row: (AGGRESSOR_BASE + 1 + 2 * i) % rows },
                    });
                }
            }
        }
        victims.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::AttackerKind;
    use crate::pattern::{AccessPattern, ClassicPattern};
    use crate::placement::{AggressorPlacement, NeighborPlacement, SpreadPlacement};

    #[test]
    fn sandwiched_victims_are_adjacent_and_not_aggressors() {
        let geometry = DramGeometry::paper_ddr5();
        let pattern = ClassicPattern::new(AttackerKind::MultiBank { banks: 2, aggressors: 2 });
        let grid = NeighborPlacement::new().place(&pattern.request(), &geometry);
        let victims = SandwichedVictims::new().victim_rows(&grid, &geometry);
        let aggressors: BTreeSet<(bh_dram::BankAddr, usize)> =
            grid.aggressor_rows().into_iter().collect();
        assert!(!victims.is_empty());
        for v in &victims {
            assert!(!aggressors.contains(&(v.row.bank, v.row.row)));
            let adjacent = aggressors
                .iter()
                .any(|(b, r)| *b == v.row.bank && (v.row.row + 1 == *r || r + 1 == v.row.row));
            assert!(adjacent, "victim {v:?} is not next to an aggressor");
        }
        // Classic neighbor placement puts aggressors at base, base+2, … so
        // the sandwiched rows base+1, … are all victims.
        assert!(victims.iter().any(|v| v.row.row == AGGRESSOR_BASE + 1));
    }

    #[test]
    fn sandwiched_victims_cover_every_grid_channel() {
        let geometry = DramGeometry::paper_ddr5().with_channels(4);
        let pattern = ClassicPattern::new(AttackerKind::DoubleSided);
        let grid = NeighborPlacement::interleaved().place(&pattern.request(), &geometry);
        let victims = SandwichedVictims::new().victim_rows(&grid, &geometry);
        let channels: BTreeSet<usize> = victims.iter().map(|v| v.channel).collect();
        assert_eq!(channels, (0..4).collect());
    }

    #[test]
    fn victim_rows_are_reduced_to_the_geometry() {
        // On the tiny test geometry (128 rows/bank) AGGRESSOR_BASE wraps;
        // victims must stay in range so the tracker's dense index holds.
        let geometry = DramGeometry::tiny();
        let pattern = ClassicPattern::new(AttackerKind::ManySided { aggressors: 4 });
        let grid = SpreadPlacement::new().place(&pattern.request(), &geometry);
        for layout in [
            Box::new(SandwichedVictims::new()) as Box<dyn VictimLayout>,
            Box::new(KeyTableVictims::new(3)),
        ] {
            for v in layout.victim_rows(&grid, &geometry) {
                assert!(v.row.row < geometry.rows_per_bank, "{}: {v:?}", layout.label());
            }
        }
    }

    #[test]
    fn key_table_sits_between_classic_aggressor_pairs() {
        let geometry = DramGeometry::paper_ddr5();
        let pattern = ClassicPattern::new(AttackerKind::ManySided { aggressors: 3 });
        let grid = NeighborPlacement::new().place(&pattern.request(), &geometry);
        let victims = KeyTableVictims::new(2).victim_rows(&grid, &geometry);
        let rows: BTreeSet<usize> = victims.iter().map(|v| v.row.row).collect();
        assert_eq!(rows, BTreeSet::from([AGGRESSOR_BASE + 1, AGGRESSOR_BASE + 3]));
    }
}
