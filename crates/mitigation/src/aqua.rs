//! AQUA: quarantine-based aggressor row migration [Saxena et al., MICRO 2022].
//!
//! AQUA tracks aggressor rows with a Misra–Gries summary (like Graphene) but
//! its preventive action is different: instead of refreshing victims, it
//! *migrates* the aggressor row's contents to a quarantine area of DRAM, so
//! subsequent activations of the (remapped) aggressor land far away from the
//! original victims. A migration is expensive — the whole row must be read
//! out and written back — which is why the paper finds AQUA has the highest
//! preventive-action cost and the worst scaling at low `N_RH` (§8.1).

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use crate::misra_gries::MisraGries;
use bh_dram::{Cycle, DramGeometry, RowAddr, TimingParams};

/// Fraction of each bank's rows reserved as the quarantine area (1/16).
const QUARANTINE_FRACTION: usize = 16;

/// The AQUA mechanism.
#[derive(Debug)]
pub struct Aqua {
    geometry: DramGeometry,
    threshold: u64,
    entries_per_bank: usize,
    tables: Vec<MisraGries>,
    /// Per bank: next quarantine slot to use (round-robin within the area).
    quarantine_next: Vec<usize>,
    quarantine_rows: usize,
    window_cycles: Cycle,
    window_end: Cycle,
    migrations: u64,
}

impl Aqua {
    /// Creates AQUA for the given system and RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh < 4`.
    pub fn new(geometry: DramGeometry, timing: &TimingParams, nrh: u64) -> Self {
        assert!(nrh >= 4, "N_RH must be at least 4");
        let threshold = (nrh / 4).max(1);
        let window_cycles = timing.t_refw;
        let max_acts_per_window = (window_cycles / timing.t_rc).max(1);
        let entries_per_bank = (max_acts_per_window / threshold + 1) as usize;
        let banks = geometry.banks_per_channel();
        let quarantine_rows = (geometry.rows_per_bank / QUARANTINE_FRACTION).max(1);
        Aqua {
            geometry,
            threshold,
            entries_per_bank,
            tables: (0..banks).map(|_| MisraGries::new(entries_per_bank)).collect(),
            quarantine_next: vec![0; banks],
            quarantine_rows,
            window_cycles,
            window_end: window_cycles,
            migrations: 0,
        }
    }

    /// The migration threshold in use.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Number of row migrations performed so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// First row index of the quarantine area (rows at or above this index are
    /// reserved).
    pub fn quarantine_base(&self) -> usize {
        self.geometry.rows_per_bank - self.quarantine_rows
    }

    fn maybe_reset_window(&mut self, cycle: Cycle) {
        if cycle >= self.window_end {
            for t in &mut self.tables {
                t.clear();
            }
            while cycle >= self.window_end {
                self.window_end += self.window_cycles;
            }
        }
    }
}

impl TriggerMechanism for Aqua {
    fn name(&self) -> &'static str {
        "AQUA"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Aqua
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        self.maybe_reset_window(event.cycle);
        let bank = self.geometry.flat_bank(event.row.bank);
        // Activations inside the quarantine area are not re-quarantined.
        if event.row.row >= self.quarantine_base() {
            return;
        }
        let count = self.tables[bank].record(event.row.row);
        if count >= self.threshold {
            self.tables[bank].remove_row(event.row.row);
            let slot = self.quarantine_next[bank];
            self.quarantine_next[bank] = (slot + 1) % self.quarantine_rows;
            let dest = RowAddr { bank: event.row.bank, row: self.quarantine_base() + slot };
            self.migrations += 1;
            sink.push_migrate(event.row, dest);
        }
    }

    fn storage_bits(&self) -> u64 {
        // Tracking table (like Graphene) plus the forward/reverse mapping
        // table entries for quarantined rows.
        let row_bits = (usize::BITS - (self.geometry.rows_per_bank - 1).leading_zeros()) as u64;
        let counter_bits = 64 - self.threshold.leading_zeros() as u64 + 1;
        let tracking = self.entries_per_bank as u64
            * (row_bits + counter_bits)
            * self.geometry.banks_per_channel() as u64;
        let mapping =
            self.quarantine_rows as u64 * 2 * row_bits * self.geometry.banks_per_channel() as u64;
        tracking + mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, ThreadId};

    fn mech(nrh: u64) -> Aqua {
        Aqua::new(DramGeometry::tiny(), &TimingParams::fast_test(), nrh)
    }

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn hammering_triggers_a_migration_to_quarantine() {
        let mut a = mech(64); // threshold 16
        let mut migration = None;
        for i in 0..16u64 {
            let acts = a.on_activation_vec(&event(10, i));
            if !acts.is_empty() {
                migration = Some(acts[0].clone());
            }
        }
        match migration {
            Some(PreventiveAction::MigrateRow { source, dest }) => {
                assert_eq!(source.row, 10);
                assert!(dest.row >= a.quarantine_base());
                assert_eq!(dest.bank, source.bank);
            }
            other => panic!("expected a migration, got {other:?}"),
        }
        assert_eq!(a.migrations(), 1);
    }

    #[test]
    fn quarantine_slots_rotate() {
        let mut a = mech(64);
        let mut dests = Vec::new();
        for round in 0..3u64 {
            for i in 0..16u64 {
                let acts = a.on_activation_vec(&event(10 + round as usize, round * 100 + i));
                for act in acts {
                    if let PreventiveAction::MigrateRow { dest, .. } = act {
                        dests.push(dest.row);
                    }
                }
            }
        }
        assert_eq!(dests.len(), 3);
        assert_eq!(dests[1], dests[0] + 1);
        assert_eq!(dests[2], dests[0] + 2);
    }

    #[test]
    fn quarantined_rows_are_not_requarantined() {
        let mut a = mech(64);
        let qrow = a.quarantine_base() + 1;
        for i in 0..200u64 {
            assert!(a.on_activation_vec(&event(qrow, i)).is_empty());
        }
        assert_eq!(a.migrations(), 0);
    }

    #[test]
    fn migration_resets_tracking_for_the_source_row() {
        let mut a = mech(64);
        let mut migrations = 0;
        for i in 0..64u64 {
            for act in a.on_activation_vec(&event(10, i)) {
                if matches!(act, PreventiveAction::MigrateRow { .. }) {
                    migrations += 1;
                }
            }
        }
        // 64 activations at threshold 16 => 4 migrations (counter restarts
        // after each migration).
        assert_eq!(migrations, 4);
    }

    #[test]
    fn window_reset_clears_tracking() {
        let timing = TimingParams::fast_test();
        let mut a = Aqua::new(DramGeometry::tiny(), &timing, 64);
        for i in 0..15u64 {
            assert!(a.on_activation_vec(&event(10, i)).is_empty());
        }
        let far = timing.t_refw + 1;
        for i in 0..15u64 {
            assert!(a.on_activation_vec(&event(10, far + i)).is_empty());
        }
        assert_eq!(a.migrations(), 0);
    }

    #[test]
    fn metadata() {
        let a = mech(1024);
        assert_eq!(a.name(), "AQUA");
        assert_eq!(a.kind(), MechanismKind::Aqua);
        assert!(a.storage_bits() > 0);
        assert!(a.quarantine_base() < DramGeometry::tiny().rows_per_bank);
    }
}
