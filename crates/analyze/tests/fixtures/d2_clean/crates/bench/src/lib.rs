//! D2 negative: bh_bench is the one crate allowed to read the wall clock.
use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}
