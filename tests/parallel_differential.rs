//! Differential testing of epoch-parallel channel stepping.
//!
//! `ChannelStepping::Parallel` advances the per-channel memory controllers
//! independently through barrier epochs (on worker threads when profitable)
//! and must be *bit-identical* to `ChannelStepping::Serial` — same IPCs,
//! preventive actions, suspect flags, latency histograms, energy, the whole
//! [`SimulationResult`] — with one deliberate exception: the `stepping`
//! counters describe how the run was scheduled, not what it computed, and
//! are normalized to their default before comparison.
//!
//! The suite pits parallel stepping against both serial kernels (per-cycle
//! and event-driven), across channel counts, the full mechanism matrix with
//! BreakHammer on and off, tight BreakHammer windows (epochs must stop at
//! every window edge), a `max_dram_cycles` cutoff landing mid-epoch, and
//! proptest-randomized mixes.

use breakhammer_suite::cpu::Trace;
use breakhammer_suite::mem::SteppingStats;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    ChannelStepping, SchedulerKind, SimulationResult, System, SystemConfig, TerminationReason,
};
use proptest::prelude::*;

mod common;
use common::{attack_traces, benign_traces};

/// Runs `config` with the given kernel/stepping pair.
fn run_with(
    mut config: SystemConfig,
    scheduler: SchedulerKind,
    stepping: ChannelStepping,
    traces: &[Trace],
    required: Vec<usize>,
) -> SimulationResult {
    config.scheduler = scheduler;
    config.stepping = stepping;
    System::new(config, traces, required).run()
}

/// Strips the scheduling-diagnostic counters so results compare on the
/// behavioural surface only.
fn normalized(mut result: SimulationResult) -> SimulationResult {
    result.stepping = SteppingStats::default();
    result
}

/// Asserts parallel stepping matches both serial kernels, and that the
/// parallel run actually exercised epochs (otherwise the assertion would be
/// vacuous — serial fallback comparing against itself).
fn assert_parallel_identical(config: SystemConfig, traces: &[Trace], required: Vec<usize>) {
    let label = config.summary();
    let parallel = run_with(
        config.clone(),
        SchedulerKind::EventDriven,
        ChannelStepping::Parallel,
        traces,
        required.clone(),
    );
    assert!(
        parallel.stepping.epochs > 0,
        "no epoch ran for {label} — the differential lost its coverage"
    );
    let serial = run_with(
        config.clone(),
        SchedulerKind::EventDriven,
        ChannelStepping::Serial,
        traces,
        required.clone(),
    );
    assert_eq!(
        normalized(parallel.clone()),
        normalized(serial),
        "parallel vs serial event-driven diverged for {label}"
    );
    let per_cycle =
        run_with(config, SchedulerKind::PerCycle, ChannelStepping::Serial, traces, required);
    assert_eq!(
        normalized(parallel),
        normalized(per_cycle),
        "parallel vs per-cycle diverged for {label}"
    );
}

/// Every mechanism (and the no-defense baseline), with and without
/// BreakHammer, under attack at 2 channels, must be bit-identical across
/// stepping modes.
#[test]
fn all_mechanisms_under_attack_are_identical_across_stepping() {
    for mechanism in [
        MechanismKind::None,
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ] {
        for breakhammer in [false, true] {
            if mechanism == MechanismKind::None && breakhammer {
                continue;
            }
            let mut config = SystemConfig::fast_test(mechanism, 128, breakhammer).with_channels(2);
            config.instructions_per_core = 6_000;
            let traces = attack_traces(&config, 2_000, 100);
            assert_parallel_identical(config, &traces, vec![0, 1, 2]);
        }
    }
}

/// The channels axis: 2 and 4 channels, attack and benign mixes.
#[test]
fn channel_counts_are_identical_across_stepping() {
    for channels in [2usize, 4] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 128, true).with_channels(channels);
        config.instructions_per_core = 6_000;
        let traces = attack_traces(&config, 2_000, 100);
        assert_parallel_identical(config.clone(), &traces, vec![0, 1, 2]);

        let traces = benign_traces(&config, 2_000, 100);
        assert_parallel_identical(config, &traces, vec![0, 1, 2, 3]);
    }
}

/// Single-channel systems take the same epoch path (inline, no pool) and
/// must stay pinned too — this is the configuration the 40-config golden
/// digests run at.
#[test]
fn single_channel_is_identical_across_stepping() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, true);
    config.instructions_per_core = 6_000;
    let traces = attack_traces(&config, 2_000, 100);
    assert_parallel_identical(config, &traces, vec![0, 1, 2]);
}

/// Tight BreakHammer windows: epochs must end at every window edge so the
/// rotation (and the quota propagation on the following cycle) happens at
/// exactly the serial schedule's cycle.
#[test]
fn tight_breakhammer_windows_are_identical_across_stepping() {
    for (window, seed) in [(300u64, 42u64), (1_000, 6), (2_000, 7)] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 64, true).with_channels(2);
        config.instructions_per_core = 15_000;
        let mut bh = config.effective_breakhammer_config();
        bh.threat_threshold = 4.0;
        bh.window_cycles = window;
        config.breakhammer_config = Some(bh);
        let traces = attack_traces(&config, 2_000, seed);
        let label = format!("window {window} seed {seed}");
        let parallel = run_with(
            config.clone(),
            SchedulerKind::EventDriven,
            ChannelStepping::Parallel,
            &traces,
            vec![0, 1, 2],
        );
        let stats = parallel.breakhammer.as_ref().expect("BreakHammer attached");
        assert!(stats.windows_completed > 0, "{label}: no rotation — coverage lost");
        assert!(parallel.stepping.epochs > 0, "{label}: no epoch ran — coverage lost");
        let serial = run_with(
            config,
            SchedulerKind::EventDriven,
            ChannelStepping::Serial,
            &traces,
            vec![0, 1, 2],
        );
        assert_eq!(normalized(parallel), normalized(serial), "diverged for {label}");
    }
}

/// A `max_dram_cycles` cutoff landing mid-epoch: the epoch horizon is
/// clamped to the cap, the channels advance through `max - 1`, and no step
/// runs at `max` — exactly the serial schedule's cutoff behaviour.
#[test]
fn cutoff_mid_epoch_is_identical_across_stepping() {
    for channels in [2usize, 4] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Aqua, 64, false).with_channels(channels);
        config.instructions_per_core = 50_000;
        config.max_dram_cycles = 30_000; // far too few to finish
        let traces = attack_traces(&config, 2_000, 7);
        let parallel = run_with(
            config.clone(),
            SchedulerKind::EventDriven,
            ChannelStepping::Parallel,
            &traces,
            vec![0, 1, 2],
        );
        assert_eq!(parallel.dram_cycles, 30_000, "the cap must bind or the test loses coverage");
        assert!(parallel.stepping.epochs > 0, "no epoch ran — coverage lost");
        let serial = run_with(
            config,
            SchedulerKind::EventDriven,
            ChannelStepping::Serial,
            &traces,
            vec![0, 1, 2],
        );
        assert_eq!(
            normalized(parallel),
            normalized(serial),
            "cutoff diverged at {channels} channels"
        );
    }
}

/// Both front-end kernels drive the same epoch machinery.
#[test]
fn front_ends_are_identical_across_stepping() {
    use breakhammer_suite::sim::FrontEndKind;
    for front_end in [FrontEndKind::Legacy, FrontEndKind::Engine] {
        let mut config = SystemConfig::fast_test(MechanismKind::Hydra, 128, true).with_channels(2);
        config.instructions_per_core = 6_000;
        config.front_end = front_end;
        let traces = attack_traces(&config, 2_000, 100);
        assert_parallel_identical(config, &traces, vec![0, 1, 2]);
    }
}

/// The probabilistic fault model draws every bit-flip from a pure hash of
/// `(seed, channel, bank, row, crossing index)`, so its output must be
/// bit-identical across stepping modes and kernels too — and the run must
/// actually produce flips, or the assertion is vacuous.
#[test]
fn probabilistic_fault_model_is_identical_across_stepping() {
    use breakhammer_suite::dram::{EccMode, FaultConfig, FaultModel};
    for nrh in [64u64, 128] {
        let mut config = SystemConfig::fast_test(MechanismKind::None, nrh, false).with_channels(2);
        config.instructions_per_core = 6_000;
        config.fault = FaultConfig {
            model: FaultModel::Probabilistic { flip_probability: 0.7, nrh_variation: 0.2 },
            ecc: EccMode::SecDed,
        };
        let traces = attack_traces(&config, 2_000, 100);
        let parallel = run_with(
            config.clone(),
            SchedulerKind::EventDriven,
            ChannelStepping::Parallel,
            &traces,
            vec![0, 1, 2],
        );
        assert!(
            parallel.outcome.flips_raw > 0,
            "no probabilistic flips at nrh {nrh} — the differential lost its coverage"
        );
        assert_parallel_identical(config, &traces, vec![0, 1, 2]);
    }
}

/// Both front-end kernels agree on the probabilistic fault model's outcome.
#[test]
fn probabilistic_fault_model_is_identical_across_front_ends() {
    use breakhammer_suite::dram::{EccMode, FaultConfig, FaultModel};
    use breakhammer_suite::sim::FrontEndKind;
    let mut config = SystemConfig::fast_test(MechanismKind::None, 64, false).with_channels(2);
    config.instructions_per_core = 6_000;
    config.fault = FaultConfig {
        model: FaultModel::Probabilistic { flip_probability: 0.7, nrh_variation: 0.2 },
        ecc: EccMode::SecDed,
    };
    let traces = attack_traces(&config, 2_000, 100);
    let mut results = Vec::new();
    for front_end in [FrontEndKind::Legacy, FrontEndKind::Engine] {
        let mut cfg = config.clone();
        cfg.front_end = front_end;
        results.push(normalized(run_with(
            cfg,
            SchedulerKind::EventDriven,
            ChannelStepping::Parallel,
            &traces,
            vec![0, 1, 2],
        )));
    }
    assert!(results[0].outcome.flips_raw > 0, "no flips — coverage lost");
    assert_eq!(results[0], results[1], "front ends diverged on the fault model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized small mixes across the channels axis: stepping modes must
    /// never diverge.
    #[test]
    fn randomized_mixes_are_identical_across_stepping(
        mechanism_idx in 0usize..6,
        channels_idx in 0usize..2,
        breakhammer in any::<bool>(),
        attack in any::<bool>(),
        instructions in 1_500u64..5_000,
        entries in 500usize..2_000,
        seed in 0u64..1_000,
    ) {
        let mechanism = [
            MechanismKind::Para,
            MechanismKind::Graphene,
            MechanismKind::Hydra,
            MechanismKind::Rfm,
            MechanismKind::Aqua,
            MechanismKind::BlockHammer,
        ][mechanism_idx];
        let channels = [2usize, 4][channels_idx];
        let mut config =
            SystemConfig::fast_test(mechanism, 256, breakhammer).with_channels(channels);
        config.instructions_per_core = instructions;
        config.seed = seed;
        let (traces, required) = if attack {
            (attack_traces(&config, entries, seed), vec![0, 1, 2])
        } else {
            (benign_traces(&config, entries, seed), vec![0, 1, 2, 3])
        };
        let label = config.summary();
        let parallel = run_with(
            config.clone(),
            SchedulerKind::EventDriven,
            ChannelStepping::Parallel,
            &traces,
            required.clone(),
        );
        let serial = run_with(
            config,
            SchedulerKind::EventDriven,
            ChannelStepping::Serial,
            &traces,
            required,
        );
        prop_assert_eq!(
            normalized(parallel),
            normalized(serial),
            "stepping modes diverged for {}",
            label
        );
    }
}

/// Epoch-parallel stepping clamps its barrier epochs at watchdog boundaries;
/// the chaos-injected livelock verdict must match both serial kernels bit
/// for bit, and the parallel run must still have exercised real epochs.
#[test]
fn watchdog_livelock_verdict_is_identical_under_parallel_stepping() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    config.instructions_per_core = 50_000;
    config.chaos.drop_fills_after = Some(1_000);
    config.watchdog.epoch_cycles = 5_000;
    config.watchdog.stall_epochs = 4;
    let traces = benign_traces(&config, 2_000, 7);
    let parallel = run_with(
        config.clone(),
        SchedulerKind::EventDriven,
        ChannelStepping::Parallel,
        &traces,
        vec![0, 1, 2, 3],
    );
    assert_eq!(parallel.termination, TerminationReason::Livelock);
    assert!(parallel.stepping.epochs > 0, "the dead tail must still run real epochs");
    let serial = run_with(
        config.clone(),
        SchedulerKind::EventDriven,
        ChannelStepping::Serial,
        &traces,
        vec![0, 1, 2, 3],
    );
    assert_eq!(normalized(parallel.clone()), normalized(serial), "parallel vs serial diverged");
    let per_cycle = run_with(
        config,
        SchedulerKind::PerCycle,
        ChannelStepping::Serial,
        &traces,
        vec![0, 1, 2, 3],
    );
    assert_eq!(normalized(parallel), normalized(per_cycle), "parallel vs per-cycle diverged");
}
