//! Benign-workload profiles.
//!
//! The paper draws benign applications from SPEC CPU2006/2017, TPC,
//! MediaBench and YCSB and groups them into High / Medium / Low memory
//! intensity by their row-buffer misses per kilo-instruction (RBMPKI ≥ 20,
//! ≥ 10 and < 10 respectively). Since the proprietary traces are not
//! available, this module defines synthetic profiles whose generated traces
//! reproduce the two properties that drive every result in the paper:
//!
//! 1. the memory intensity class (how often the thread misses the LLC), and
//! 2. the hot-row behaviour of Table 3 (how many DRAM rows collect 64+, 128+
//!    or 512+ activations per 64 ms window), which determines how often a
//!    *benign* thread triggers RowHammer-preventive actions at low `N_RH`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A benign-profile lookup failed: the requested name is not in the library.
///
/// Carries the offending name and the list of known profiles, so a typo in a
/// workload configuration surfaces as an actionable error instead of
/// crashing a long simulation campaign half-way through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProfileError {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name the library does know, for the error message.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown benign profile `{}` (known profiles: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownProfileError {}

/// Memory-intensity class of an application (Table 3 / §7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntensityClass {
    /// RBMPKI ≥ 20.
    High,
    /// 10 ≤ RBMPKI < 20.
    Medium,
    /// RBMPKI < 10.
    Low,
}

impl IntensityClass {
    /// Single-letter label used in mix names (H / M / L).
    pub fn letter(self) -> char {
        match self {
            IntensityClass::High => 'H',
            IntensityClass::Medium => 'M',
            IntensityClass::Low => 'L',
        }
    }
}

/// A synthetic benign-application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenignProfile {
    /// Workload name (named after the benchmark it is modelled on).
    pub name: &'static str,
    /// Intensity class.
    pub class: IntensityClass,
    /// Memory accesses per kilo-instruction issued by the core (before cache
    /// filtering). Because the generated footprints are much larger than the
    /// LLC, most of these become row-buffer misses, so this value tracks the
    /// paper's RBMPKI closely.
    pub apki: f64,
    /// Probability that the next access stays within the current DRAM row
    /// (streaming locality → row-buffer hits instead of activations).
    pub row_locality: f64,
    /// Fraction of accesses directed at a small set of hot rows.
    pub hot_row_fraction: f64,
    /// Number of hot rows per bank the profile hammers organically.
    pub hot_rows: usize,
    /// Total footprint in DRAM rows (spread over all banks).
    pub footprint_rows: usize,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
}

impl BenignProfile {
    /// The library of named profiles, modelled on the paper's benchmark
    /// selection: the eight most memory-intensive workloads of Table 3 plus
    /// medium- and low-intensity applications from SPEC / TPC / MediaBench /
    /// YCSB.
    pub fn library() -> Vec<BenignProfile> {
        use IntensityClass::*;
        vec![
            // --- High intensity (Table 3) -----------------------------------
            BenignProfile {
                name: "mcf",
                class: High,
                apki: 68.0,
                row_locality: 0.15,
                hot_row_fraction: 0.45,
                hot_rows: 640,
                footprint_rows: 40_000,
                write_fraction: 0.20,
            },
            BenignProfile {
                name: "lbm06",
                class: High,
                apki: 28.0,
                row_locality: 0.35,
                hot_row_fraction: 0.30,
                hot_rows: 200,
                footprint_rows: 30_000,
                write_fraction: 0.35,
            },
            BenignProfile {
                name: "libquantum",
                class: High,
                apki: 26.0,
                row_locality: 0.70,
                hot_row_fraction: 0.0,
                hot_rows: 0,
                footprint_rows: 24_000,
                write_fraction: 0.25,
            },
            BenignProfile {
                name: "fotonik3d",
                class: High,
                apki: 25.0,
                row_locality: 0.45,
                hot_row_fraction: 0.10,
                hot_rows: 96,
                footprint_rows: 28_000,
                write_fraction: 0.30,
            },
            BenignProfile {
                name: "gemsfdtd",
                class: High,
                apki: 25.0,
                row_locality: 0.40,
                hot_row_fraction: 0.12,
                hot_rows: 128,
                footprint_rows: 28_000,
                write_fraction: 0.30,
            },
            BenignProfile {
                name: "lbm17",
                class: High,
                apki: 24.0,
                row_locality: 0.35,
                hot_row_fraction: 0.28,
                hot_rows: 180,
                footprint_rows: 26_000,
                write_fraction: 0.35,
            },
            BenignProfile {
                name: "zeusmp",
                class: High,
                apki: 22.0,
                row_locality: 0.30,
                hot_row_fraction: 0.25,
                hot_rows: 256,
                footprint_rows: 24_000,
                write_fraction: 0.25,
            },
            BenignProfile {
                name: "parest",
                class: High,
                apki: 20.0,
                row_locality: 0.40,
                hot_row_fraction: 0.08,
                hot_rows: 64,
                footprint_rows: 20_000,
                write_fraction: 0.20,
            },
            // --- Medium intensity --------------------------------------------
            BenignProfile {
                name: "xalancbmk",
                class: Medium,
                apki: 14.0,
                row_locality: 0.30,
                hot_row_fraction: 0.10,
                hot_rows: 48,
                footprint_rows: 16_000,
                write_fraction: 0.20,
            },
            BenignProfile {
                name: "cactusadm",
                class: Medium,
                apki: 12.0,
                row_locality: 0.45,
                hot_row_fraction: 0.08,
                hot_rows: 32,
                footprint_rows: 14_000,
                write_fraction: 0.30,
            },
            BenignProfile {
                name: "tpcc",
                class: Medium,
                apki: 11.0,
                row_locality: 0.25,
                hot_row_fraction: 0.15,
                hot_rows: 64,
                footprint_rows: 18_000,
                write_fraction: 0.35,
            },
            BenignProfile {
                name: "ycsb-a",
                class: Medium,
                apki: 10.0,
                row_locality: 0.25,
                hot_row_fraction: 0.12,
                hot_rows: 48,
                footprint_rows: 16_000,
                write_fraction: 0.40,
            },
            // --- Low intensity -----------------------------------------------
            BenignProfile {
                name: "povray",
                class: Low,
                apki: 1.0,
                row_locality: 0.60,
                hot_row_fraction: 0.05,
                hot_rows: 8,
                footprint_rows: 4_000,
                write_fraction: 0.15,
            },
            BenignProfile {
                name: "calculix",
                class: Low,
                apki: 2.0,
                row_locality: 0.55,
                hot_row_fraction: 0.05,
                hot_rows: 8,
                footprint_rows: 5_000,
                write_fraction: 0.20,
            },
            BenignProfile {
                name: "h264-dec",
                class: Low,
                apki: 3.0,
                row_locality: 0.65,
                hot_row_fraction: 0.04,
                hot_rows: 8,
                footprint_rows: 6_000,
                write_fraction: 0.25,
            },
            BenignProfile {
                name: "ycsb-c",
                class: Low,
                apki: 4.5,
                row_locality: 0.30,
                hot_row_fraction: 0.08,
                hot_rows: 16,
                footprint_rows: 8_000,
                write_fraction: 0.10,
            },
        ]
    }

    /// Profiles of a given intensity class.
    pub fn of_class(class: IntensityClass) -> Vec<BenignProfile> {
        BenignProfile::library().into_iter().filter(|p| p.class == class).collect()
    }

    /// Looks up a profile by name.
    pub fn by_name(name: &str) -> Option<BenignProfile> {
        BenignProfile::library().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a profile by name, threading an actionable error instead of
    /// leaving the caller to `unwrap` an [`Option`] (an unknown name used to
    /// crash whole simulation campaigns with a bare `unwrap` panic).
    ///
    /// # Errors
    /// Returns [`UnknownProfileError`] — naming the known profiles — if no
    /// profile matches.
    pub fn resolve(name: &str) -> Result<BenignProfile, UnknownProfileError> {
        BenignProfile::by_name(name).ok_or_else(|| UnknownProfileError {
            name: name.to_string(),
            known: BenignProfile::library().iter().map(|p| p.name).collect(),
        })
    }

    /// The eight most memory-intensive profiles, mirroring Table 3.
    pub fn table3_profiles() -> Vec<BenignProfile> {
        BenignProfile::of_class(IntensityClass::High)
    }

    /// Validates that the profile's parameters are internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        let unit = |v: f64, what: &str| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{what} must be in [0, 1], got {v}"))
            }
        };
        if !(self.apki > 0.0 && self.apki < 1000.0) {
            return Err(format!("APKI must be in (0, 1000), got {}", self.apki));
        }
        unit(self.row_locality, "row locality")?;
        unit(self.hot_row_fraction, "hot-row fraction")?;
        unit(self.write_fraction, "write fraction")?;
        if self.hot_row_fraction > 0.0 && self.hot_rows == 0 {
            return Err("a non-zero hot-row fraction needs at least one hot row".to_string());
        }
        if self.footprint_rows == 0 {
            return Err("the footprint must cover at least one row".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_valid_and_covers_all_classes() {
        let lib = BenignProfile::library();
        assert!(lib.len() >= 16);
        for p in &lib {
            assert_eq!(p.validate(), Ok(()), "profile {}", p.name);
        }
        for class in [IntensityClass::High, IntensityClass::Medium, IntensityClass::Low] {
            assert!(
                BenignProfile::of_class(class).len() >= 4,
                "need at least 4 profiles of class {class:?} to build mixes"
            );
        }
    }

    #[test]
    fn class_thresholds_match_the_paper() {
        for p in BenignProfile::library() {
            match p.class {
                IntensityClass::High => assert!(p.apki >= 20.0, "{}", p.name),
                IntensityClass::Medium => assert!(p.apki >= 10.0 && p.apki < 20.0, "{}", p.name),
                IntensityClass::Low => assert!(p.apki < 10.0, "{}", p.name),
            }
        }
    }

    #[test]
    fn table3_has_eight_high_intensity_workloads() {
        let t3 = BenignProfile::table3_profiles();
        assert_eq!(t3.len(), 8);
        assert_eq!(t3[0].name, "mcf");
        assert!(t3[0].apki > 60.0);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(BenignProfile::by_name("MCF").is_some());
        assert!(BenignProfile::by_name("does-not-exist").is_none());
    }

    #[test]
    fn resolve_threads_an_actionable_error_for_unknown_names() {
        assert_eq!(BenignProfile::resolve("mcf").unwrap().name, "mcf");
        let err = BenignProfile::resolve("does-not-exist").unwrap_err();
        assert_eq!(err.name, "does-not-exist");
        assert!(err.known.contains(&"mcf"));
        let msg = err.to_string();
        assert!(msg.contains("does-not-exist"), "{msg}");
        assert!(msg.contains("mcf"), "error must list the known profiles: {msg}");
        // It is a real error type, so `?` works in campaign code.
        let _: &dyn std::error::Error = &err;
    }

    #[test]
    fn class_letters() {
        assert_eq!(IntensityClass::High.letter(), 'H');
        assert_eq!(IntensityClass::Medium.letter(), 'M');
        assert_eq!(IntensityClass::Low.letter(), 'L');
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = BenignProfile::by_name("mcf").unwrap();
        p.apki = 0.0;
        assert!(p.validate().is_err());
        let mut p = BenignProfile::by_name("mcf").unwrap();
        p.row_locality = 1.5;
        assert!(p.validate().is_err());
        let mut p = BenignProfile::by_name("mcf").unwrap();
        p.hot_rows = 0;
        assert!(p.validate().is_err());
        let mut p = BenignProfile::by_name("mcf").unwrap();
        p.footprint_rows = 0;
        assert!(p.validate().is_err());
    }
}
