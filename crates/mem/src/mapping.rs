//! Physical-address to DRAM-coordinate mapping schemes.
//!
//! The paper's memory controller uses the MOP ("Minimalist Open Page")
//! mapping [Kaseridis et al., MICRO 2011], which stripes small bursts of
//! consecutive cache lines across banks so that sequential streams exploit a
//! little row-buffer locality while still spreading load over all banks. A
//! simple row-interleaved scheme (`RoBaRaCoCh`) is provided for comparison
//! and for tests.
//!
//! On multi-channel systems ([`DramGeometry::channels`] > 1) an
//! [`AddressMapping`] additionally carries a [`ChannelInterleave`] policy
//! that decides which channel a cache line lives in *before* the per-channel
//! scheme decodes the remaining bits. With a single channel every policy is
//! the identity, so single-channel decode/encode behaviour is unchanged.

use bh_dram::{BankAddr, DramGeometry, DramLocation, PhysAddr};
use serde::{Deserialize, Serialize};

/// The per-channel bank/row/column mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// Minimalist Open Page: `row | col_high | rank | bank | bank-group |
    /// col_low(MOP burst) | line-offset` from MSB to LSB.
    Mop {
        /// Number of consecutive cache lines mapped to the same row before
        /// moving to the next bank (the "MOP burst"); must be a power of two.
        burst_lines: usize,
    },
    /// Row : Bank : Rank : Column interleaving (pages stay in one bank;
    /// consecutive lines share a row).
    RoBaRaCoCh,
}

/// How cache lines are distributed over the memory channels.
///
/// Every policy is the identity when the geometry has a single channel, so
/// the default system behaves exactly like the paper's single-channel
/// configuration regardless of the policy chosen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelInterleave {
    /// Consecutive cache lines alternate channels (the common
    /// bandwidth-maximising default: every stream spreads over all channels).
    #[default]
    CacheLine,
    /// Consecutive row-sized blocks of the line-address space alternate
    /// channels. Under the [`MappingScheme::RoBaRaCoCh`] scheme — whose rows
    /// occupy contiguous line addresses — this puts each whole DRAM row in
    /// one channel, preserving per-channel row-buffer locality. Under
    /// [`MappingScheme::Mop`], which deliberately scatters a row's lines
    /// across banks, it degrades to block-granularity interleaving (a
    /// row-sized *address* block stays in one channel, the row's columns do
    /// not).
    Row,
    /// The address space is partitioned channel-by-channel: each channel owns
    /// one contiguous slice of the physical address space. An attacker (or a
    /// benign task) whose footprint fits one slice is *pinned* to a single
    /// channel — the adversarial placement for per-channel trackers.
    Pinned,
}

impl ChannelInterleave {
    /// Splits a global line index into `(channel, line-within-channel)`.
    fn split(self, line: u64, geometry: &DramGeometry) -> (usize, u64) {
        let channels = geometry.channels.max(1) as u64;
        if channels == 1 {
            return (0, line);
        }
        match self {
            ChannelInterleave::CacheLine => ((line % channels) as usize, line / channels),
            ChannelInterleave::Row => {
                let lines_per_row = geometry.columns_per_row as u64;
                let row_index = line / lines_per_row;
                let offset = line % lines_per_row;
                let channel = (row_index % channels) as usize;
                (channel, (row_index / channels) * lines_per_row + offset)
            }
            ChannelInterleave::Pinned => {
                let lines_per_channel =
                    geometry.rows_per_channel() as u64 * geometry.columns_per_row as u64;
                let channel = ((line / lines_per_channel) % channels) as usize;
                (channel, line % lines_per_channel)
            }
        }
    }

    /// Inverse of [`ChannelInterleave::split`] for in-range inner lines.
    fn join(self, channel: usize, inner: u64, geometry: &DramGeometry) -> u64 {
        let channels = geometry.channels.max(1) as u64;
        if channels == 1 {
            return inner;
        }
        let channel = channel as u64 % channels;
        match self {
            ChannelInterleave::CacheLine => inner * channels + channel,
            ChannelInterleave::Row => {
                let lines_per_row = geometry.columns_per_row as u64;
                let row_index = inner / lines_per_row;
                let offset = inner % lines_per_row;
                (row_index * channels + channel) * lines_per_row + offset
            }
            ChannelInterleave::Pinned => {
                let lines_per_channel =
                    geometry.rows_per_channel() as u64 * geometry.columns_per_row as u64;
                channel * lines_per_channel + inner
            }
        }
    }
}

/// Address-mapping configuration: the per-channel [`MappingScheme`] plus the
/// [`ChannelInterleave`] policy distributing lines over channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    /// The per-channel bank/row/column scheme.
    pub scheme: MappingScheme,
    /// The channel-interleave policy (irrelevant on single-channel systems).
    #[serde(default)]
    pub interleave: ChannelInterleave,
}

impl AddressMapping {
    /// The paper's default mapping (MOP with a burst of 4 cache lines,
    /// cache-line channel interleaving).
    pub fn paper_default() -> Self {
        AddressMapping::mop(4)
    }

    /// MOP mapping with the given burst length.
    pub fn mop(burst_lines: usize) -> Self {
        AddressMapping {
            scheme: MappingScheme::Mop { burst_lines },
            interleave: ChannelInterleave::CacheLine,
        }
    }

    /// Row-interleaved `RoBaRaCoCh` mapping.
    pub fn robaracoch() -> Self {
        AddressMapping {
            scheme: MappingScheme::RoBaRaCoCh,
            interleave: ChannelInterleave::CacheLine,
        }
    }

    /// The same mapping with a different channel-interleave policy.
    pub fn with_interleave(mut self, interleave: ChannelInterleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// The channel a physical address maps to (cheap: only the interleave
    /// split runs, not the full per-channel decode). Always 0 on
    /// single-channel geometries.
    pub fn channel_of(&self, addr: PhysAddr, geometry: &DramGeometry) -> usize {
        let line = addr.0 / geometry.column_bytes as u64;
        self.interleave.split(line, geometry).0
    }

    /// Decodes a physical address into DRAM coordinates for `geometry`.
    ///
    /// Addresses beyond the total capacity wrap around (the simulator's
    /// synthetic traces may use a larger virtual footprint than the simulated
    /// DRAM).
    pub fn decode(&self, addr: PhysAddr, geometry: &DramGeometry) -> DramLocation {
        let line = addr.0 / geometry.column_bytes as u64;
        let (channel, line) = self.interleave.split(line, geometry);
        match self.scheme {
            MappingScheme::Mop { burst_lines } => {
                assert!(burst_lines.is_power_of_two(), "MOP burst must be a power of two");
                let mut x = line;
                let col_low = (x % burst_lines as u64) as usize;
                x /= burst_lines as u64;
                let bank_group = (x % geometry.bank_groups as u64) as usize;
                x /= geometry.bank_groups as u64;
                let bank = (x % geometry.banks_per_group as u64) as usize;
                x /= geometry.banks_per_group as u64;
                let rank = (x % geometry.ranks as u64) as usize;
                x /= geometry.ranks as u64;
                let col_high_per_row = (geometry.columns_per_row / burst_lines).max(1) as u64;
                let col_high = (x % col_high_per_row) as usize;
                x /= col_high_per_row;
                let row = (x % geometry.rows_per_bank as u64) as usize;
                DramLocation {
                    channel,
                    bank: BankAddr { rank, bank_group, bank },
                    row,
                    column: col_high * burst_lines + col_low,
                }
            }
            MappingScheme::RoBaRaCoCh => {
                let mut x = line;
                let column = (x % geometry.columns_per_row as u64) as usize;
                x /= geometry.columns_per_row as u64;
                let rank = (x % geometry.ranks as u64) as usize;
                x /= geometry.ranks as u64;
                let bank = (x % geometry.banks_per_group as u64) as usize;
                x /= geometry.banks_per_group as u64;
                let bank_group = (x % geometry.bank_groups as u64) as usize;
                x /= geometry.bank_groups as u64;
                let row = (x % geometry.rows_per_bank as u64) as usize;
                DramLocation { channel, bank: BankAddr { rank, bank_group, bank }, row, column }
            }
        }
    }

    /// Builds a physical address that decodes to the given coordinates —
    /// the inverse of [`AddressMapping::decode`], used by trace generators to
    /// target specific channels, banks and rows (e.g. the RowHammer attacker).
    pub fn encode(&self, loc: &DramLocation, geometry: &DramGeometry) -> PhysAddr {
        let line: u64 = match self.scheme {
            MappingScheme::Mop { burst_lines } => {
                let burst = burst_lines as u64;
                let col_low = (loc.column % burst_lines) as u64;
                let col_high = (loc.column / burst_lines) as u64;
                let col_high_per_row = (geometry.columns_per_row / burst_lines).max(1) as u64;
                let mut x = loc.row as u64;
                x = x * col_high_per_row + col_high;
                x = x * geometry.ranks as u64 + loc.bank.rank as u64;
                x = x * geometry.banks_per_group as u64 + loc.bank.bank as u64;
                x = x * geometry.bank_groups as u64 + loc.bank.bank_group as u64;
                x * burst + col_low
            }
            MappingScheme::RoBaRaCoCh => {
                let mut x = loc.row as u64;
                x = x * geometry.bank_groups as u64 + loc.bank.bank_group as u64;
                x = x * geometry.banks_per_group as u64 + loc.bank.bank as u64;
                x = x * geometry.ranks as u64 + loc.bank.rank as u64;
                x * geometry.columns_per_row as u64 + loc.column as u64
            }
        };
        let line = self.interleave.join(loc.channel, line, geometry);
        PhysAddr(line * geometry.column_bytes as u64)
    }
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::paper_default()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;

    #[test]
    fn mop_stripes_consecutive_bursts_across_bank_groups() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::paper_default();
        let line_bytes = g.column_bytes as u64;
        let a = m.decode(PhysAddr(0), &g);
        let b = m.decode(PhysAddr(4 * line_bytes), &g);
        // After one MOP burst (4 lines) the next lines land in a different
        // bank group, same row index.
        assert_ne!(a.bank.bank_group, b.bank.bank_group);
        assert_eq!(a.row, b.row);
        // Lines within a burst share bank and row and are consecutive columns.
        let c = m.decode(PhysAddr(line_bytes), &g);
        assert_eq!(a.bank, c.bank);
        assert_eq!(a.row, c.row);
        assert_eq!(c.column, a.column + 1);
    }

    #[test]
    fn robaracoch_keeps_a_page_in_one_row() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::robaracoch();
        let base = 123 * g.row_bytes() as u64 * 64;
        for i in 0..16u64 {
            let loc = m.decode(PhysAddr(base + i * 64), &g);
            let first = m.decode(PhysAddr(base), &g);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
        }
    }

    #[test]
    fn encode_decode_roundtrip_mop() {
        let g = DramGeometry::tiny();
        let m = AddressMapping::mop(4);
        for rank in 0..g.ranks {
            for bg in 0..g.bank_groups {
                for bank in 0..g.banks_per_group {
                    for row in [0usize, 1, 63, 127] {
                        for column in [0usize, 3, 7, 15] {
                            let loc = DramLocation {
                                channel: 0,
                                bank: BankAddr { rank, bank_group: bg, bank },
                                row,
                                column,
                            };
                            let addr = m.encode(&loc, &g);
                            assert_eq!(m.decode(addr, &g), loc, "at {loc}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_robaracoch() {
        let g = DramGeometry::tiny();
        let m = AddressMapping::robaracoch();
        for row in [0usize, 5, 127] {
            for column in [0usize, 9] {
                let loc = DramLocation {
                    channel: 0,
                    bank: BankAddr { rank: 1, bank_group: 1, bank: 0 },
                    row,
                    column,
                };
                assert_eq!(m.decode(m.encode(&loc, &g), &g), loc);
            }
        }
    }

    #[test]
    fn distinct_lines_map_to_distinct_locations() {
        let g = DramGeometry::tiny();
        let m = AddressMapping::paper_default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let loc = m.decode(PhysAddr(i * 64), &g);
            assert!(seen.insert((loc.bank, loc.row, loc.column)), "collision at line {i}");
        }
    }

    #[test]
    fn addresses_inside_line_share_location() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::paper_default();
        assert_eq!(m.decode(PhysAddr(0x1000), &g), m.decode(PhysAddr(0x103f), &g));
    }

    #[test]
    fn single_channel_interleaves_are_all_the_identity() {
        let g = DramGeometry::tiny();
        let base = AddressMapping::paper_default();
        for interleave in
            [ChannelInterleave::CacheLine, ChannelInterleave::Row, ChannelInterleave::Pinned]
        {
            let m = base.with_interleave(interleave);
            for i in (0..4096u64).step_by(61) {
                let addr = PhysAddr(i * 64);
                assert_eq!(m.decode(addr, &g), base.decode(addr, &g), "{interleave:?}");
                assert_eq!(m.channel_of(addr, &g), 0);
            }
        }
    }

    #[test]
    fn cache_line_interleave_alternates_channels() {
        let g = DramGeometry::tiny().with_channels(4);
        let m = AddressMapping::paper_default();
        for i in 0..64u64 {
            let loc = m.decode(PhysAddr(i * 64), &g);
            assert_eq!(loc.channel, (i % 4) as usize);
            assert_eq!(m.channel_of(PhysAddr(i * 64), &g), loc.channel);
        }
    }

    #[test]
    fn row_interleave_keeps_a_row_in_one_channel() {
        let g = DramGeometry::tiny().with_channels(2);
        let m = AddressMapping::robaracoch().with_interleave(ChannelInterleave::Row);
        let lines_per_row = g.columns_per_row as u64;
        for row_index in 0..8u64 {
            let first = m.decode(PhysAddr(row_index * lines_per_row * 64), &g);
            for i in 0..lines_per_row {
                let loc = m.decode(PhysAddr((row_index * lines_per_row + i) * 64), &g);
                assert_eq!(loc.channel, first.channel, "row {row_index} line {i}");
                assert_eq!(loc.row, first.row, "row {row_index} line {i}");
            }
            assert_eq!(first.channel, (row_index % 2) as usize);
        }
    }

    #[test]
    fn row_interleave_under_mop_is_block_granular_not_row_granular() {
        // MOP scatters a row's lines over banks, so the Row policy pins
        // row-sized *address blocks* — not whole physical rows — to a channel
        // (documented on `ChannelInterleave::Row`): every block stays in one
        // channel, but the banks/rows a block touches follow MOP's striping.
        let g = DramGeometry::tiny().with_channels(2);
        let m = AddressMapping::mop(4).with_interleave(ChannelInterleave::Row);
        let lines_per_block = g.columns_per_row as u64;
        for block in 0..8u64 {
            let mut banks = std::collections::HashSet::new();
            for i in 0..lines_per_block {
                let loc = m.decode(PhysAddr((block * lines_per_block + i) * 64), &g);
                assert_eq!(loc.channel, (block % 2) as usize, "block {block} line {i}");
                banks.insert(loc.bank);
            }
            assert!(banks.len() > 1, "MOP stripes one address block over several banks");
        }
    }

    #[test]
    fn pinned_interleave_partitions_the_address_space() {
        let g = DramGeometry::tiny().with_channels(2);
        let m = AddressMapping::paper_default().with_interleave(ChannelInterleave::Pinned);
        let per_channel_bytes = g.channel_bytes();
        assert_eq!(m.channel_of(PhysAddr(0), &g), 0);
        assert_eq!(m.channel_of(PhysAddr(per_channel_bytes - 64), &g), 0);
        assert_eq!(m.channel_of(PhysAddr(per_channel_bytes), &g), 1);
        assert_eq!(m.channel_of(PhysAddr(2 * per_channel_bytes - 64), &g), 1);
        // Beyond the total capacity the channel wraps with the address.
        assert_eq!(m.channel_of(PhysAddr(2 * per_channel_bytes), &g), 0);
    }

    #[test]
    fn multichannel_roundtrip_all_interleaves() {
        for channels in [2usize, 3, 4] {
            let g = DramGeometry::tiny().with_channels(channels);
            for interleave in
                [ChannelInterleave::CacheLine, ChannelInterleave::Row, ChannelInterleave::Pinned]
            {
                for scheme in [AddressMapping::mop(4), AddressMapping::robaracoch()] {
                    let m = scheme.with_interleave(interleave);
                    for channel in 0..channels {
                        for rank in 0..g.ranks {
                            for row in [0usize, 7, 127] {
                                for column in [0usize, 5, 15] {
                                    let loc = DramLocation {
                                        channel,
                                        bank: BankAddr { rank, bank_group: 1, bank: 0 },
                                        row,
                                        column,
                                    };
                                    let addr = m.encode(&loc, &g);
                                    assert_eq!(
                                        m.decode(addr, &g),
                                        loc,
                                        "{interleave:?} x{channels} at {loc}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn multichannel_lines_cover_all_channels_without_collisions() {
        let g = DramGeometry::tiny().with_channels(2);
        let m = AddressMapping::paper_default();
        let mut seen = std::collections::HashSet::new();
        let mut per_channel = [0usize; 2];
        for i in 0..4096u64 {
            let loc = m.decode(PhysAddr(i * 64), &g);
            per_channel[loc.channel] += 1;
            assert!(
                seen.insert((loc.channel, loc.bank, loc.row, loc.column)),
                "collision at line {i}"
            );
        }
        assert_eq!(per_channel, [2048, 2048]);
    }
}
