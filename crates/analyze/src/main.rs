//! CLI entry point: `cargo run -p bh_analyze -- [--root PATH] [--deny]`.
//!
//! Prints every finding as `path:line: [RULE] message`. With `--deny` the
//! process exits nonzero when any finding exists — this is how CI gates on
//! the lint pass. Without `--deny` the findings are informational and the
//! exit code stays 0.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("bh_analyze: --root requires a path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bh_analyze [--root PATH] [--deny]");
                println!("  --root PATH  workspace root to analyze (default: .)");
                println!("  --deny       exit nonzero when any finding exists");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bh_analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run` the working directory is already the
    // workspace root; fall back to the manifest's grandparent so the tool
    // also works from inside the crate directory.
    if root.as_os_str() == "." && !root.join("Cargo.toml").exists() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let manifest = PathBuf::from(manifest);
            if let Some(ws) = manifest.ancestors().nth(2) {
                root = ws.to_path_buf();
            }
        }
    }

    let diagnostics = match bh_analyze::analyze_root(&root) {
        Ok(diagnostics) => diagnostics,
        Err(err) => {
            eprintln!("bh_analyze: failed to read workspace at {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for diagnostic in &diagnostics {
        println!("{diagnostic}");
    }
    if diagnostics.is_empty() {
        eprintln!("bh_analyze: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("bh_analyze: {} finding(s)", diagnostics.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
