//! Deterministic forward-progress watchdog.
//!
//! [`Watchdog`] is a pure state machine over *simulated* time: the kernels in
//! [`crate::System::run`] feed it one [`ProgressSample`] per epoch boundary
//! (a fixed DRAM-cycle grid), and it answers with a [`Verdict`] when the run
//! is provably stuck or over budget. No wall clock is involved anywhere —
//! the bh_analyze D2 rule (no `Instant`/`SystemTime` in sim crates) holds —
//! so the verdict is a deterministic function of the simulated schedule and
//! is bit-identical across kernels, stepping modes and front-ends.
//!
//! Two detectors run side by side:
//!
//! * **Zero progress** — [`WatchdogConfig::stall_epochs`] consecutive epochs
//!   in which the global progress tuple (instructions retired, demand reads
//!   served, writebacks served) did not change. Preventive actions are
//!   deliberately *excluded* from the tuple: a mitigation spinning on
//!   endless preventive ACT/PREs while demand traffic starves (the PARA
//!   livelock PR 1 patched by hand) is precisely the signature this detector
//!   must flag, not excuse.
//! * **State fixpoint** — the same number of consecutive epochs whose
//!   structural state digest (per-core retired/finished/hard-stalled lanes,
//!   per-channel queue depths, retry-deque lengths, pending preventive
//!   commands, mechanism block state, suspect set) is identical. This
//!   catches cyclic livelocks in which some counter still ticks (e.g. a
//!   retry deque endlessly re-serving the same rejected request) while the
//!   machine's shape never changes. Served-request counters are excluded
//!   from the digest for exactly that reason.
//!
//! Deterministic budgets (max epochs, max preventive actions) are checked at
//! the same boundaries and yield [`TerminationReason::BudgetExceeded`].

use crate::config::WatchdogConfig;
use crate::result::TerminationReason;
use bh_dram::Cycle;

/// Fallback epoch length when nothing better can be derived (cycles).
const BASE_EPOCH_CYCLES: u64 = 50_000;

/// 64-bit FNV-1a over a stream of `u64` words — the workspace's standard
/// deterministic digest, here used for the structural state fixpoint.
#[derive(Debug, Clone, Copy)]
pub struct StateDigest(u64);

impl StateDigest {
    /// Fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        StateDigest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word into the digest.
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds one machine-word count into the digest.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Folds one flag into the digest.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u64(u64::from(value));
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StateDigest {
    fn default() -> Self {
        StateDigest::new()
    }
}

/// One epoch boundary's view of global progress, assembled by the system
/// from step-invariant state only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressSample {
    /// Total instructions retired across all cores.
    pub instructions_retired: u64,
    /// Demand reads served across all channels.
    pub reads_served: u64,
    /// Writebacks served across all channels.
    pub writes_served: u64,
    /// Preventive actions taken across all channels.
    pub preventive_actions: u64,
    /// Structural state digest (see [`StateDigest`]); must exclude the
    /// served-request counters above.
    pub state_digest: u64,
}

/// The watchdog's answer at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// `Livelock` or `BudgetExceeded`.
    pub reason: TerminationReason,
    /// Consecutive zero-progress epochs at the verdict (0 when the fixpoint
    /// detector fired first, or on a budget verdict).
    pub zero_progress_epochs: u32,
    /// True when the state-digest fixpoint detector fired.
    pub fixpoint: bool,
}

/// The forward-progress watchdog state machine (see the module docs).
#[derive(Debug, Clone)]
pub struct Watchdog {
    enabled: bool,
    epoch_cycles: u64,
    stall_epochs: u32,
    max_epochs: u64,
    max_preventive: u64,
    next_boundary: Cycle,
    epochs: u64,
    zero_epochs: u32,
    fixpoint_epochs: u32,
    last_progress: Option<(u64, u64, u64)>,
    last_digest: Option<u64>,
}

impl Watchdog {
    /// Builds the watchdog for one run.
    ///
    /// `breakhammer_window` is the effective BreakHammer window length when
    /// BreakHammer is attached: the auto-derived epoch guarantees the
    /// no-progress horizon (`stall_epochs × epoch`) spans at least two full
    /// windows, so a quota-starved thread legitimately waiting out a window
    /// rotation for its quota refill is never misclassified as livelocked.
    pub fn new(config: &WatchdogConfig, breakhammer_window: Option<u64>) -> Self {
        let stall_epochs = config.stall_epochs.max(1);
        let epoch_cycles = if config.epoch_cycles > 0 {
            config.epoch_cycles
        } else {
            let floor = match breakhammer_window {
                Some(window) => (2 * window).div_ceil(u64::from(stall_epochs)),
                None => 0,
            };
            BASE_EPOCH_CYCLES.max(floor)
        };
        Watchdog {
            enabled: config.enabled,
            epoch_cycles,
            stall_epochs,
            max_epochs: config.max_epochs,
            max_preventive: config.max_preventive_actions,
            next_boundary: if config.enabled { epoch_cycles } else { Cycle::MAX },
            epochs: 0,
            zero_epochs: 0,
            fixpoint_epochs: 0,
            last_progress: None,
            last_digest: None,
        }
    }

    /// The epoch length in DRAM cycles actually in use (after auto
    /// derivation).
    pub fn epoch_cycles(&self) -> u64 {
        self.epoch_cycles
    }

    /// The next epoch boundary: event horizons must not jump past it
    /// (`Cycle::MAX` when the watchdog is disabled, i.e. no clamping).
    pub fn horizon_cap(&self) -> Cycle {
        self.next_boundary
    }

    /// True when `cycle` is an epoch boundary the watchdog must observe —
    /// one integer compare, cheap enough for the per-cycle kernel's loop.
    pub fn due(&self, cycle: Cycle) -> bool {
        cycle == self.next_boundary
    }

    /// Consumes the boundary sample and advances to the next epoch.
    /// `Some(verdict)` means the run must stop now.
    pub fn observe(&mut self, cycle: Cycle, sample: &ProgressSample) -> Option<Verdict> {
        if !self.enabled || cycle != self.next_boundary {
            return None;
        }
        self.next_boundary += self.epoch_cycles;
        self.epochs += 1;

        if self.max_epochs > 0 && self.epochs > self.max_epochs {
            return Some(Verdict {
                reason: TerminationReason::BudgetExceeded,
                zero_progress_epochs: 0,
                fixpoint: false,
            });
        }
        if self.max_preventive > 0 && sample.preventive_actions > self.max_preventive {
            return Some(Verdict {
                reason: TerminationReason::BudgetExceeded,
                zero_progress_epochs: 0,
                fixpoint: false,
            });
        }

        let progress = (sample.instructions_retired, sample.reads_served, sample.writes_served);
        if self.last_progress == Some(progress) {
            self.zero_epochs += 1;
        } else {
            self.zero_epochs = 0;
            self.last_progress = Some(progress);
        }
        if self.last_digest == Some(sample.state_digest) {
            self.fixpoint_epochs += 1;
        } else {
            self.fixpoint_epochs = 0;
            self.last_digest = Some(sample.state_digest);
        }

        if self.zero_epochs >= self.stall_epochs {
            return Some(Verdict {
                reason: TerminationReason::Livelock,
                zero_progress_epochs: self.zero_epochs,
                fixpoint: false,
            });
        }
        if self.fixpoint_epochs >= self.stall_epochs {
            return Some(Verdict {
                reason: TerminationReason::Livelock,
                zero_progress_epochs: self.zero_epochs,
                fixpoint: true,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instr: u64, reads: u64, digest: u64) -> ProgressSample {
        ProgressSample {
            instructions_retired: instr,
            reads_served: reads,
            writes_served: 0,
            preventive_actions: 0,
            state_digest: digest,
        }
    }

    fn watchdog(stall_epochs: u32) -> Watchdog {
        let config = WatchdogConfig {
            enabled: true,
            epoch_cycles: 100,
            stall_epochs,
            max_epochs: 0,
            max_preventive_actions: 0,
        };
        Watchdog::new(&config, None)
    }

    #[test]
    fn healthy_progress_never_fires() {
        let mut wd = watchdog(3);
        for epoch in 1..100u64 {
            let cycle = epoch * 100;
            assert!(wd.due(cycle));
            // Both the progress tuple and the digest change every epoch.
            assert_eq!(wd.observe(cycle, &sample(epoch, epoch, epoch)), None);
        }
    }

    #[test]
    fn zero_progress_for_k_epochs_is_livelock() {
        let mut wd = watchdog(3);
        assert_eq!(wd.observe(100, &sample(7, 7, 1)), None); // baseline
        assert_eq!(wd.observe(200, &sample(7, 7, 2)), None); // zero #1
        assert_eq!(wd.observe(300, &sample(7, 7, 3)), None); // zero #2
        let verdict = wd.observe(400, &sample(7, 7, 4)).expect("zero #3 fires");
        assert_eq!(verdict.reason, TerminationReason::Livelock);
        assert_eq!(verdict.zero_progress_epochs, 3);
        assert!(!verdict.fixpoint);
    }

    #[test]
    fn progress_resets_the_stall_counter() {
        let mut wd = watchdog(2);
        assert_eq!(wd.observe(100, &sample(7, 7, 1)), None);
        assert_eq!(wd.observe(200, &sample(7, 7, 2)), None); // zero #1
        assert_eq!(wd.observe(300, &sample(8, 7, 3)), None); // progress
        assert_eq!(wd.observe(400, &sample(8, 7, 4)), None); // zero #1 again
        assert!(wd.observe(500, &sample(8, 7, 5)).is_some());
    }

    #[test]
    fn recurring_state_digest_is_a_fixpoint_livelock() {
        let mut wd = watchdog(2);
        // Reads tick every epoch (so zero-progress never fires) but the
        // structural digest repeats: a cyclic livelock.
        assert_eq!(wd.observe(100, &sample(7, 1, 42)), None);
        assert_eq!(wd.observe(200, &sample(7, 2, 42)), None); // repeat #1
        let verdict = wd.observe(300, &sample(7, 3, 42)).expect("repeat #2 fires");
        assert_eq!(verdict.reason, TerminationReason::Livelock);
        assert!(verdict.fixpoint);
    }

    #[test]
    fn epoch_budget_cuts_the_run() {
        let mut wd = Watchdog::new(
            &WatchdogConfig {
                enabled: true,
                epoch_cycles: 100,
                stall_epochs: 8,
                max_epochs: 2,
                max_preventive_actions: 0,
            },
            None,
        );
        assert_eq!(wd.observe(100, &sample(1, 1, 1)), None);
        assert_eq!(wd.observe(200, &sample(2, 2, 2)), None);
        let verdict = wd.observe(300, &sample(3, 3, 3)).expect("third epoch over budget");
        assert_eq!(verdict.reason, TerminationReason::BudgetExceeded);
    }

    #[test]
    fn preventive_budget_cuts_the_run() {
        let mut wd = Watchdog::new(
            &WatchdogConfig {
                enabled: true,
                epoch_cycles: 100,
                stall_epochs: 8,
                max_epochs: 0,
                max_preventive_actions: 10,
            },
            None,
        );
        let mut s = sample(1, 1, 1);
        s.preventive_actions = 10;
        assert_eq!(wd.observe(100, &s), None, "at the budget is fine");
        let mut s = sample(2, 2, 2);
        s.preventive_actions = 11;
        let verdict = wd.observe(200, &s).expect("over the budget fires");
        assert_eq!(verdict.reason, TerminationReason::BudgetExceeded);
    }

    #[test]
    fn disabled_watchdog_never_clamps_or_fires() {
        let config = WatchdogConfig { enabled: false, ..WatchdogConfig::default() };
        let mut wd = Watchdog::new(&config, None);
        assert_eq!(wd.horizon_cap(), Cycle::MAX);
        assert!(!wd.due(50_000));
        assert_eq!(wd.observe(50_000, &sample(0, 0, 0)), None);
    }

    #[test]
    fn auto_epoch_spans_two_breakhammer_windows() {
        let config = WatchdogConfig::default(); // epoch_cycles = 0 → auto
        let wd = Watchdog::new(&config, Some(500_000));
        // stall_epochs × epoch ≥ 2 × window.
        assert!(u64::from(config.stall_epochs) * wd.epoch_cycles() >= 1_000_000);
        let small = Watchdog::new(&config, Some(1_000));
        assert_eq!(small.epoch_cycles(), BASE_EPOCH_CYCLES);
        let none = Watchdog::new(&config, None);
        assert_eq!(none.epoch_cycles(), BASE_EPOCH_CYCLES);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = StateDigest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateDigest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = StateDigest::new();
        c.write_usize(1);
        c.write_bool(false);
        let mut d = StateDigest::new();
        d.write_usize(1);
        d.write_bool(true);
        assert_ne!(c.finish(), d.finish());
    }
}
