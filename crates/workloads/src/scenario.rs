//! The campaign scenario catalog: named (pattern × placement) combinations
//! swept with BreakHammer on/off.
//!
//! Scenario names follow the `"<pattern>-<placement>"` convention of the
//! composed attacker's default tag (e.g. `fuzz-nbr` is the Blacksmith-style
//! fuzzed pattern over the mapping-aware neighbor placement). The catalog is
//! what `Campaign::run_matrix` enumerates and what the digest-snapshot
//! harness pins one golden per entry for.

use crate::attacker::AttackerKind;
use crate::compose::ComposedAttacker;
use crate::pattern::{ClassicPattern, DecoyPattern, FuzzedPattern, RowPressPattern};
use crate::placement::{NeighborPlacement, SpreadPlacement};
use std::fmt;

/// One named attack scenario from the catalog.
#[derive(Debug, Clone)]
pub struct AttackScenario {
    /// The scenario name (also the mix-name suffix), `"<pattern>-<placement>"`.
    pub name: &'static str,
    /// The composed attacker the scenario runs.
    pub attacker: ComposedAttacker,
    /// One-line description for tables and docs.
    pub description: &'static str,
}

/// Error returned by [`scenario_by_name`] for an unknown scenario name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenarioError {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let known: Vec<&str> = scenario_catalog().iter().map(|s| s.name).collect();
        write!(f, "unknown attack scenario '{}' (known: {})", self.name, known.join(", "))
    }
}

impl std::error::Error for UnknownScenarioError {}

/// The built-in scenario catalog: every new (pattern × placement)
/// combination the campaign sweeps, each tagged with its name.
pub fn scenario_catalog() -> Vec<AttackScenario> {
    vec![
        AttackScenario {
            name: "fuzz-nbr",
            attacker: ComposedAttacker::new(FuzzedPattern::new(2, 8), NeighborPlacement::new()),
            description: "Blacksmith-style fuzzed schedule over neighboring aggressors",
        },
        AttackScenario {
            name: "press-nbr",
            attacker: ComposedAttacker::new(
                RowPressPattern::new(2, 2, 16),
                NeighborPlacement::new(),
            ),
            description: "RowPress-style long-open-row dwell on neighboring aggressors",
        },
        AttackScenario {
            name: "decoy-nbr",
            attacker: ComposedAttacker::new(DecoyPattern::new(2, 2), NeighborPlacement::new()),
            description: "benign-mimicry hammering laced with cached decoy traffic",
        },
        AttackScenario {
            name: "classic-spr",
            attacker: ComposedAttacker::new(
                ClassicPattern::new(AttackerKind::MultiBank { banks: 4, aggressors: 2 }),
                SpreadPlacement::new(),
            ),
            description: "classic multi-bank hammering spread across banks and channels",
        },
        AttackScenario {
            name: "fuzz-spr",
            attacker: ComposedAttacker::new(FuzzedPattern::new(2, 4), SpreadPlacement::new()),
            description: "fuzzed schedule spread across banks and channels",
        },
    ]
}

/// Resolves a catalog scenario by name.
///
/// # Errors
/// Returns [`UnknownScenarioError`] (listing the known names) if `name` is
/// not in the catalog.
pub fn scenario_by_name(name: &str) -> Result<AttackScenario, UnknownScenarioError> {
    scenario_catalog()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| UnknownScenarioError { name: name.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_dram::DramGeometry;
    use bh_mem::AddressMapping;

    #[test]
    fn catalog_names_match_the_attacker_tags() {
        let catalog = scenario_catalog();
        assert!(catalog.len() >= 4, "campaign needs at least four new scenarios");
        for s in &catalog {
            assert_eq!(Some(s.name), s.attacker.tag(), "{}", s.name);
        }
    }

    #[test]
    fn every_scenario_produces_traces_and_victims_on_both_geometries() {
        let mapping = AddressMapping::paper_default();
        for geometry in [DramGeometry::paper_ddr5(), DramGeometry::tiny().with_channels(2)] {
            for s in scenario_catalog() {
                let t = s.attacker.trace(&geometry, mapping, 500, 1);
                assert_eq!(t.len(), 500, "{}", s.name);
                assert!(!s.attacker.victim_rows(&geometry).is_empty(), "{}", s.name);
            }
        }
    }

    #[test]
    fn lookup_by_name_round_trips_and_reports_unknowns() {
        assert_eq!(scenario_by_name("fuzz-nbr").unwrap().name, "fuzz-nbr");
        let err = scenario_by_name("nope").unwrap_err();
        assert!(err.to_string().contains("fuzz-nbr"), "{err}");
    }
}
