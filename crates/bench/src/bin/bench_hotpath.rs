//! Machine-readable hot-path benchmark runner.
//!
//! Runs the same measurements as the criterion hot-path benches
//! (`mechanism_overhead`, `breakhammer_hotpath`, `simulator_throughput`) and
//! writes them to `BENCH_hotpath.json` — median ns/iter per benchmark plus
//! the date and git revision — so the performance trajectory of the
//! activation hot path is tracked in-repo, PR over PR, instead of living in
//! scrollback.
//!
//! ```text
//! cargo run --release -p bh-bench --bin bench_hotpath [-- <output-path>]
//! cargo run --release -p bh-bench --bin bench_hotpath -- --check [baseline]
//! ```
//!
//! `--check` is the CI bench-regression smoke mode: it runs **only** the
//! `simulator_throughput/*` benches (the end-to-end hot path) and compares
//! each median against the committed `BENCH_hotpath.json` (or `[baseline]`),
//! exiting non-zero if any regresses by more than
//! [`CHECK_REGRESSION_TOLERANCE`]. Nothing is written in check mode.
//!
//! Environment knobs (shared with the criterion shim): `BH_BENCH_SAMPLES`
//! (default 10) and `BH_BENCH_TARGET_MS` (per-sample budget, default 50).

// Wall-clock reads are this binary's whole job (bh_bench is the one crate
// exempt from determinism rule D2).
#![allow(clippy::disallowed_methods)]

use bh_dram::{
    BankAddr, DramChannel, DramGeometry, RowAddr, RowHammerTracker, ThreadId, TimingParams,
};
use bh_mem::{AddressMapping, MemControllerConfig, MemRequest, MemoryController, MemorySystem};
use bh_mitigation::{ActionSink, ActivationEvent, MechanismKind, ScoreAttribution};
use bh_sim::{ChannelStepping, System, SystemConfig};
use bh_workloads::{MixBuilder, MixClass, TraceGenerator};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// `--check` fails when a `simulator_throughput/*` median exceeds its
/// committed baseline by more than this factor. 1.25 (a >25% regression)
/// is far above same-machine run-to-run noise for these multi-millisecond
/// medians, yet far below the step change a reintroduced per-request
/// dispatch layer or a de-memoized hot loop causes. The committed baselines
/// are measured on the maintainer machine; CI runners differ in absolute
/// speed, so the gate is only meaningful when the baseline was recorded on
/// comparable hardware — treat a CI failure here as "measure locally before
/// merging", not as ground truth.
const CHECK_REGRESSION_TOLERANCE: f64 = 1.25;

/// One measured benchmark.
struct BenchResult {
    name: String,
    median_ns_per_iter: f64,
    iters: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    bh_core::knobs::positive_usize(name, "the built-in default").unwrap_or(default)
}

/// Calibrates an iteration count filling the per-sample budget, then reports
/// the median ns/iter over the configured number of samples (the same scheme
/// as the vendored criterion shim, so numbers are comparable).
fn measure<F: FnMut(u64)>(name: &str, mut routine: F) -> BenchResult {
    let samples = env_usize("BH_BENCH_SAMPLES", 10);
    let target = Duration::from_millis(env_usize("BH_BENCH_TARGET_MS", 50) as u64);
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        routine(iters);
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 20 {
            break;
        }
        let grow = if elapsed.is_zero() {
            100
        } else {
            (target.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 100) as u64
        };
        iters = iters.saturating_mul(grow);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine(iters);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<52} median {median:>12.1} ns/iter ({iters} iters x {samples} samples)");
    BenchResult { name: name.to_string(), median_ns_per_iter: median, iters }
}

/// Per-mechanism `on_activation` cost at paper-scale table sizes; `stride`
/// and `row_space` select the access pattern (see the `mechanism_overhead`
/// bench for the two patterns' rationale).
fn mechanism_bench(
    group: &str,
    kind: MechanismKind,
    nrh: u64,
    stride: usize,
    row_space: usize,
) -> BenchResult {
    let geometry = DramGeometry::paper_ddr5();
    let timing = TimingParams::ddr5_4800();
    let mut mechanism = kind.build(&geometry, &timing, nrh, 7);
    let mut sink = ActionSink::default();
    let mut cycle = 0u64;
    let mut row = 0usize;
    measure(&format!("{group}/{kind}"), |iters| {
        for _ in 0..iters {
            cycle += 30;
            row = (row + stride) % row_space;
            let event = ActivationEvent {
                row: RowAddr { bank: BankAddr { rank: 0, bank_group: row % 8, bank: 0 }, row },
                thread: ThreadId(row % 4),
                cycle,
            };
            sink.clear();
            mechanism.on_activation(std::hint::black_box(&event), &mut sink);
            std::hint::black_box(sink.len());
        }
    })
}

fn breakhammer_benches(results: &mut Vec<BenchResult>) {
    use bh_core::{BreakHammer, BreakHammerConfig};
    let timing = TimingParams::ddr5_4800();

    let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
    let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
    let mut cycle = 0u64;
    results.push(measure("breakhammer_on_activation", |iters| {
        for _ in 0..iters {
            cycle += 30;
            bh.on_activation(std::hint::black_box(ThreadId((cycle % 4) as usize)), cycle);
        }
    }));

    let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
    let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
    let mut cycle = 0u64;
    results.push(measure("breakhammer_on_preventive_action", |iters| {
        for _ in 0..iters {
            cycle += 500;
            for t in 0..4usize {
                for _ in 0..(t + 1) {
                    bh.on_activation(ThreadId(t), cycle);
                }
            }
            bh.on_preventive_action(std::hint::black_box(cycle));
        }
    }));
}

fn tracker_bench(results: &mut Vec<BenchResult>) {
    let geometry = DramGeometry::paper_ddr5();
    let mut tracker = RowHammerTracker::new(geometry, 1 << 20, 1);
    let mut cycle = 0u64;
    let mut row = 0usize;
    results.push(measure("rowhammer_tracker_on_activate", |iters| {
        for _ in 0..iters {
            cycle += 30;
            row = (row + 17) % 4096;
            let addr = RowAddr { bank: BankAddr { rank: 0, bank_group: row % 8, bank: 0 }, row };
            tracker.on_activate(std::hint::black_box(addr), cycle);
            if cycle.is_multiple_of(1 << 16) {
                // Keep disturbance bounded so the bitflip log stays empty.
                tracker.on_periodic_refresh(0, 0, usize::MAX);
            }
        }
    }));
}

/// A/B of the per-request dispatch cost: a bare [`MemoryController`] versus
/// the 1-channel [`MemorySystem`] facade driving the identical request
/// stream. The two medians must stay equal (the facade's single-channel
/// fast path); `crates/mem/tests/dispatch_overhead.rs` asserts it, this
/// records the absolute numbers.
fn memory_dispatch_benches(results: &mut Vec<BenchResult>) {
    let config = || {
        let mut c = MemControllerConfig::paper_table1(4);
        c.read_queue_capacity = 32;
        c.write_queue_capacity = 32;
        c.write_drain_high = 24;
        c.write_drain_low = 8;
        c
    };
    let parts = || {
        let geometry = DramGeometry::tiny();
        let timing = TimingParams::fast_test();
        let mechanism = MechanismKind::Graphene.build(&geometry, &timing, 256, 7);
        let channel = DramChannel::with_rowhammer(geometry, timing, 256);
        (channel, mechanism)
    };

    let (channel, mechanism) = parts();
    let mut ctrl = MemoryController::new(config(), channel, mechanism);
    let mut cycle = 0u64;
    let mut id = 0u64;
    let mut buf = Vec::new();
    results.push(measure("memory_dispatch/controller_direct", |iters| {
        for _ in 0..iters {
            let addr = bh_dram::PhysAddr((id % 97) * 4096 + (id % 7) * 64);
            let _ =
                ctrl.try_enqueue(MemRequest::read(id, ThreadId((id % 4) as usize), addr, cycle));
            id += 1;
            for _ in 0..6 {
                ctrl.tick(cycle, None);
                cycle += 1;
            }
            ctrl.drain_responses_into(&mut buf);
            std::hint::black_box(buf.len());
        }
    }));

    let (channel, mechanism) = parts();
    let mut mem = MemorySystem::new(config(), vec![(channel, mechanism)], None);
    let mut cycle = 0u64;
    let mut id = 0u64;
    let mut buf = Vec::new();
    results.push(measure("memory_dispatch/memory_system_1ch", |iters| {
        for _ in 0..iters {
            let addr = bh_dram::PhysAddr((id % 97) * 4096 + (id % 7) * 64);
            let _ = mem.try_enqueue(MemRequest::read(id, ThreadId((id % 4) as usize), addr, cycle));
            id += 1;
            for _ in 0..6 {
                mem.retry_pending();
                mem.tick(cycle);
                cycle += 1;
            }
            mem.drain_responses_into(&mut buf);
            std::hint::black_box(buf.len());
        }
    }));
}

fn simulator_bench(results: &mut Vec<BenchResult>) {
    // Channels ∈ {1, 2, 4}: the single-channel bench keeps its historical
    // name (comparable PR over PR); the sharded variants measure the cost of
    // driving N per-channel controllers from one event-driven kernel. The
    // attacker interleaves its pattern over all channels so every channel's
    // tracker stays busy (the representative multi-channel load).
    for channels in [1usize, 2, 4] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 256, true).with_channels(channels);
        config.instructions_per_core = 8_000;
        let generator =
            TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default());
        let mut builder = MixBuilder::new(generator);
        builder.benign_entries = 2_000;
        builder.attacker_entries = 2_000;
        if channels > 1 {
            builder = builder.with_attacker(
                bh_workloads::AttackerProfile::paper_default().interleaved_channels(),
            );
        }
        let mix = builder.build(MixClass::attack_classes()[0], 0, 42);
        let name = if channels == 1 {
            "simulator_throughput/four_core_attack_8k_instructions".to_string()
        } else {
            format!("simulator_throughput/four_core_attack_8k_instructions_{channels}ch")
        };
        results.push(measure(&name, |iters| {
            for _ in 0..iters {
                // The compiled traces are shared into every run (refcount
                // bumps), as Campaign::run_matrix shares them across configs.
                let system = System::with_compiled(config.clone(), &mix.traces, vec![0, 1, 2]);
                std::hint::black_box(system.run());
            }
        }));

        // Epoch-parallel stepping variants of the multi-channel workloads at
        // 1 and 4 pool participants (`BH_EPOCH_WORKERS`). Worker count is a
        // pure throughput knob — results stay bit-identical — so these rows
        // track both the epoch-batching win (w1: no extra threads) and the
        // barrier/pool overhead or win at width 4.
        if channels == 1 {
            continue;
        }
        let mut parallel_config = config.clone();
        parallel_config.stepping = ChannelStepping::Parallel;
        for workers in [1usize, 4] {
            std::env::set_var("BH_EPOCH_WORKERS", workers.to_string());
            let name = format!(
                "simulator_throughput/four_core_attack_8k_instructions_{channels}ch_parallel_w{workers}"
            );
            results.push(measure(&name, |iters| {
                for _ in 0..iters {
                    let system =
                        System::with_compiled(parallel_config.clone(), &mix.traces, vec![0, 1, 2]);
                    std::hint::black_box(system.run());
                }
            }));
        }
        std::env::remove_var("BH_EPOCH_WORKERS");
    }
}

/// Days-since-epoch to civil `YYYY-MM-DD` (Howard Hinnant's algorithm), so
/// the stamp needs no external date crate.
fn utc_date() -> String {
    let days =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs() / 86_400).unwrap_or(0)
            as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Extracts `(name, median_ns_per_iter)` pairs from a `BENCH_hotpath.json`
/// written by this binary. Hand-rolled line parsing to match the hand-rolled
/// writer below (the workspace has no JSON dependency; the schema is one
/// bench record per line).
fn parse_baseline(contents: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in contents.lines() {
        let Some(name) = line.split("\"name\": \"").nth(1).and_then(|r| r.split('"').next()) else {
            continue;
        };
        let Some(median) = line
            .split("\"median_ns_per_iter\": ")
            .nth(1)
            .and_then(|r| r.split([',', '}']).next())
            .and_then(|v| v.trim().parse::<f64>().ok())
        else {
            continue;
        };
        out.push((name.to_string(), median));
    }
    out
}

/// The CI bench-regression smoke gate: re-measures the
/// `simulator_throughput/*` benches and fails (exit 1) if any median
/// regressed more than [`CHECK_REGRESSION_TOLERANCE`] versus the baseline
/// file. Benches missing from the baseline (e.g. a newly added channel
/// count) are reported but never fail the gate.
fn run_check(baseline_path: &str) -> ! {
    let contents = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&contents);
    let mut results = Vec::new();
    simulator_bench(&mut results);
    let mut failures = Vec::new();
    for r in &results {
        match baseline.iter().find(|(name, _)| *name == r.name) {
            None => println!("{}: no baseline entry (skipped)", r.name),
            Some((_, base)) => {
                let ratio = r.median_ns_per_iter / base;
                let verdict = if ratio > CHECK_REGRESSION_TOLERANCE { "REGRESSED" } else { "ok" };
                println!(
                    "{}: {:.1} ns/iter vs baseline {:.1} ({:.2}x, tolerance {:.2}x) {}",
                    r.name, r.median_ns_per_iter, base, ratio, CHECK_REGRESSION_TOLERANCE, verdict
                );
                if ratio > CHECK_REGRESSION_TOLERANCE {
                    failures.push(format!("{} at {:.2}x", r.name, ratio));
                }
            }
        }
    }
    if failures.is_empty() {
        println!("bench-regression check passed ({} benches)", results.len());
        std::process::exit(0);
    }
    eprintln!(
        "bench-regression check FAILED: {} (re-measure on the baseline machine and, if the \
         regression is intentional, refresh BENCH_hotpath.json)",
        failures.join(", ")
    );
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let baseline = args.get(1).cloned().unwrap_or_else(|| "BENCH_hotpath.json".to_string());
        run_check(&baseline);
    }
    let out_path = args.first().cloned().unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let mut results = Vec::new();
    for kind in [
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ] {
        results.push(mechanism_bench("mechanism_on_activation", kind, 1024, 17, 4096));
        results.push(mechanism_bench("mechanism_on_activation_churn", kind, 256, 6151, 65536));
    }
    breakhammer_benches(&mut results);
    tracker_bench(&mut results);
    memory_dispatch_benches(&mut results);
    simulator_bench(&mut results);

    // Flat structure, written by hand: the workspace has no JSON dependency
    // and the schema is trivial.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!("  \"date\": \"{}\",\n", utc_date()));
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    json.push_str(&format!("  \"samples\": {},\n", env_usize("BH_BENCH_SAMPLES", 10)));
    json.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns_per_iter\": {:.1}, \"iters\": {}}}{comma}\n",
            r.name, r.median_ns_per_iter, r.iters
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write benchmark results");
    println!("\nwrote {} results to {out_path}", results.len());
}
