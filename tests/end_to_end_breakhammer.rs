//! End-to-end integration tests for the paper's headline behavioural claims,
//! at test scale: BreakHammer identifies and throttles the attacker, improves
//! the benign applications' performance and energy, and stays neutral when
//! every application is benign.

use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{evaluate_under_configs, SystemConfig};
use breakhammer_suite::workloads::{MixBuilder, MixClass, TraceGenerator, WorkloadMix};

fn build_mix(config: &SystemConfig, attack: bool, seed: u64) -> WorkloadMix {
    let generator = TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default());
    let mut builder = MixBuilder::new(generator);
    builder.benign_entries = 3_000;
    builder.attacker_entries = 3_000;
    let class = if attack { MixClass::attack_classes()[0] } else { MixClass::benign_classes()[0] };
    builder.build(class, 0, seed)
}

fn paired_configs(mechanism: MechanismKind, nrh: u64) -> [SystemConfig; 2] {
    let mut without = SystemConfig::fast_test(mechanism, nrh, false);
    // Use the real DDR5 geometry (with shortened timings) so the benign
    // applications' footprints do not alias onto a handful of rows.
    without.geometry = breakhammer_suite::dram::DramGeometry::paper_ddr5();
    without.instructions_per_core = 10_000;
    let mut with = without.clone();
    with.breakhammer = true;
    let mut bh = with.effective_breakhammer_config();
    bh.threat_threshold = 8.0; // identify quickly at test scale
    with.breakhammer_config = Some(bh);
    [without, with]
}

#[test]
fn breakhammer_improves_performance_and_energy_under_attack() {
    let configs = paired_configs(MechanismKind::Graphene, 128);
    let mix = build_mix(&configs[0], true, 3);
    let evals = evaluate_under_configs(&mix, &configs);
    let (without, with) = (&evals[0], &evals[1]);

    assert!(
        with.weighted_speedup > without.weighted_speedup,
        "weighted speedup must improve ({:.3} -> {:.3})",
        without.weighted_speedup,
        with.weighted_speedup
    );
    assert!(with.preventive_actions() < without.preventive_actions());
    assert!(
        with.result.energy_nj < without.result.energy_nj * 1.05,
        "energy must not increase materially ({:.0} vs {:.0} nJ)",
        with.result.energy_nj,
        without.result.energy_nj
    );
    let attacker = mix.attacker_thread.expect("attack mix");
    assert!(with.result.ever_suspect[attacker]);
    assert!(mix.benign_threads().iter().all(|t| !with.result.ever_suspect[*t]));
}

#[test]
fn breakhammer_reduces_unfairness_under_attack() {
    let configs = paired_configs(MechanismKind::Rfm, 128);
    let mix = build_mix(&configs[0], true, 5);
    let evals = evaluate_under_configs(&mix, &configs);
    assert!(
        evals[1].max_slowdown <= evals[0].max_slowdown * 1.05,
        "unfairness must not get materially worse ({:.3} vs {:.3})",
        evals[1].max_slowdown,
        evals[0].max_slowdown
    );
}

#[test]
fn breakhammer_is_neutral_when_all_applications_are_benign() {
    let configs = paired_configs(MechanismKind::Graphene, 256);
    let mix = build_mix(&configs[0], false, 9);
    let evals = evaluate_under_configs(&mix, &configs);
    let ratio = evals[1].weighted_speedup / evals[0].weighted_speedup;
    assert!(
        ratio > 0.9,
        "all-benign weighted speedup must not drop by more than 10% (ratio {ratio:.3})"
    );
}

#[test]
fn breakhammer_helps_across_multiple_mechanisms() {
    // N_RH = 64: low enough that even PRAC's per-row back-off threshold
    // (N_RH / 2) is crossed many times within this reduced-scale run.
    for mechanism in [MechanismKind::Para, MechanismKind::Hydra, MechanismKind::Prac] {
        let mut configs = paired_configs(mechanism, 64);
        for config in &mut configs {
            // PRAC's back-off RFMs are much rarer than refresh-style actions
            // (one per N_RH/2 activations of a single row), so give the
            // attacker enough hammering time to accumulate a TH_threat worth
            // of attributable actions — and the benign outlier filter enough
            // actions to stabilise — before the benign cores finish.
            config.instructions_per_core = 40_000;
        }
        let mix = build_mix(&configs[0], true, 21);
        let evals = evaluate_under_configs(&mix, &configs);
        assert!(
            evals[1].weighted_speedup >= evals[0].weighted_speedup * 0.95,
            "{mechanism}: BreakHammer must not materially hurt attacked mixes ({:.3} vs {:.3})",
            evals[1].weighted_speedup,
            evals[0].weighted_speedup
        );
        // PARA triggers preventive refreshes probabilistically for *every*
        // thread's activations, so at this reduced scale the attacker does not
        // always deviate enough from the mean to be identified (the paper
        // makes the same observation about PARA at low N_RH in §8.1); require
        // identification only for the deterministic trackers.
        if mechanism != MechanismKind::Para {
            let attacker = mix.attacker_thread.expect("attack mix");
            assert!(
                evals[1].result.ever_suspect[attacker],
                "{mechanism}: the attacker must be identified"
            );
        }
    }
}
