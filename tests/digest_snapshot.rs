//! Golden-digest harness for [`SimulationResult`]s.
//!
//! Runs the canonical 40-configuration matrix (10 mechanisms × ±BreakHammer ×
//! both kernels, through the default data-oriented `CoreEngine` front-end)
//! on the standard attack workload and folds every field that existed in the
//! result as of the digest capture into a stable FNV-1a fingerprint. The digests are compared against `tests/digests.golden.txt`,
//! which pins the simulator's observable behaviour across refactors: any
//! change to scheduling, mitigation, throttling or accounting shows up as a
//! digest mismatch even if both kernels still agree with each other.
//!
//! To regenerate the golden file after an *intentional* behaviour change:
//!
//! ```text
//! BH_DIGEST_RECORD=1 cargo test --test digest_snapshot
//! ```
//!
//! and commit the updated `tests/digests.golden.txt` together with an
//! explanation of why the behaviour moved.

use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    ChannelStepping, FrontEndKind, SchedulerKind, SimulationResult, System, SystemConfig,
};

mod common;
use common::{attack_traces, attack_traces_composed};

/// FNV-1a, the digest accumulator. Stable across platforms and releases.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.byte(v as u8);
    }
}

/// Folds the pre-multichannel field set of a [`SimulationResult`] into one
/// digest. New fields added after the golden capture (per-channel breakdowns,
/// per-channel BreakHammer counters) are deliberately not digested here; they
/// are covered by the full-equality differential suite instead.
fn digest(result: &SimulationResult) -> u64 {
    let mut d = Digest::new();
    d.usize(result.cores.len());
    for core in &result.cores {
        d.usize(core.thread.index());
        d.u64(core.instructions);
        d.u64(core.cycles);
        d.f64(core.ipc);
        d.bool(core.finished);
    }
    d.u64(result.dram_cycles);

    let c = &result.controller;
    for v in [
        c.reads_served,
        c.writes_served,
        c.row_hits,
        c.row_misses,
        c.row_conflicts,
        c.demand_activations,
        c.enqueue_rejections,
        c.preventive_refresh_actions,
        c.victim_rows_refreshed,
        c.migrations,
        c.rfm_actions,
        c.table_accesses,
        c.periodic_refreshes,
    ] {
        d.u64(v);
    }

    let m = &result.dram;
    for v in [
        m.activates,
        m.precharges,
        m.precharge_alls,
        m.reads,
        m.writes,
        m.refreshes,
        m.refreshes_same_bank,
        m.rfm_commands,
        m.victim_refreshes,
    ] {
        d.u64(v);
    }

    let l = &result.cache;
    for v in
        [l.hits, l.misses, l.mshr_merges, l.mshr_full_rejections, l.quota_rejections, l.writebacks]
    {
        d.u64(v);
    }

    d.f64(result.energy_nj);
    d.u64(result.preventive_actions);
    d.usize(result.bitflips);
    for s in &result.ever_suspect {
        d.bool(*s);
    }
    match &result.breakhammer {
        None => d.bool(false),
        Some(bh) => {
            d.bool(true);
            d.u64(bh.actions_observed);
            d.u64(bh.suspect_identifications);
            d.u64(bh.quota_restorations);
            d.u64(bh.windows_completed);
        }
    }
    d.usize(result.latency.len());
    for h in &result.latency {
        d.u64(h.count());
        d.u64(h.max());
        d.f64(h.mean());
    }
    d.0
}

const MECHANISMS: [MechanismKind; 10] = [
    MechanismKind::None,
    MechanismKind::Para,
    MechanismKind::Graphene,
    MechanismKind::Hydra,
    MechanismKind::Twice,
    MechanismKind::Aqua,
    MechanismKind::Rega,
    MechanismKind::Rfm,
    MechanismKind::Prac,
    MechanismKind::BlockHammer,
];

fn config_for(mechanism: MechanismKind, breakhammer: bool, kernel: SchedulerKind) -> SystemConfig {
    let mut config = SystemConfig::fast_test(mechanism, 128, breakhammer);
    config.instructions_per_core = 6_000;
    config.scheduler = kernel;
    config
}

fn kernel_name(kernel: SchedulerKind) -> &'static str {
    match kernel {
        SchedulerKind::PerCycle => "per_cycle",
        SchedulerKind::EventDriven => "event_driven",
    }
}

fn run_matrix(stepping: ChannelStepping) -> Vec<(String, u64)> {
    let mut out = Vec::with_capacity(40);
    for mechanism in MECHANISMS {
        for breakhammer in [false, true] {
            for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
                let mut config = config_for(mechanism, breakhammer, kernel);
                config.stepping = stepping;
                let traces = attack_traces(&config, 2_000, 100);
                let result = System::new(config, &traces, vec![0, 1, 2]).run();
                let label = format!(
                    "{mechanism} {} {}",
                    if breakhammer { "bh" } else { "nobh" },
                    kernel_name(kernel)
                );
                out.push((label, digest(&result)));
            }
        }
    }
    out
}

/// The channels axis of the digest harness: per config and channel count,
/// both kernels must produce the same digest. (The golden file itself pins
/// channels = 1 — multi-channel goldens would churn with every intentional
/// routing change, while cross-kernel equality is the invariant that must
/// never move.)
#[test]
fn multichannel_digests_agree_across_kernels() {
    for channels in [1usize, 2, 4] {
        for (mechanism, breakhammer) in
            [(MechanismKind::Graphene, true), (MechanismKind::Hydra, false)]
        {
            let mut digests = Vec::new();
            for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
                let mut config = config_for(mechanism, breakhammer, kernel);
                config.geometry = config.geometry.with_channels(channels);
                let traces = attack_traces(&config, 2_000, 100);
                let result = System::new(config, &traces, vec![0, 1, 2]).run();
                digests.push(digest(&result));
            }
            assert_eq!(
                digests[0], digests[1],
                "kernel digests diverged for {mechanism} bh={breakhammer} x{channels}ch"
            );
        }
    }
}

/// The front-end axis of the digest harness: per config and scheduler
/// kernel, the data-oriented `CoreEngine` and the per-object legacy cores
/// must produce the same digest. (The golden file itself is produced with
/// the default front-end — the engine — so the golden test *is* the "goldens
/// run through `CoreEngine` unchanged" check; this test pins the legacy
/// reference model to the same behaviour.)
#[test]
fn front_end_digests_agree() {
    for (mechanism, breakhammer) in
        [(MechanismKind::Graphene, true), (MechanismKind::BlockHammer, false)]
    {
        for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
            let mut digests = Vec::new();
            for front_end in [FrontEndKind::Legacy, FrontEndKind::Engine] {
                let mut config = config_for(mechanism, breakhammer, kernel);
                config.front_end = front_end;
                let traces = attack_traces(&config, 2_000, 100);
                let result = System::new(config, &traces, vec![0, 1, 2]).run();
                digests.push(digest(&result));
            }
            assert_eq!(
                digests[0],
                digests[1],
                "front-end digests diverged for {mechanism} bh={breakhammer} {}",
                kernel_name(kernel)
            );
        }
    }
}

/// Extends [`digest`] with the per-victim disturbance reports — the field the
/// composable-attacker scenarios add to [`SimulationResult`]. Used only by
/// the scenario goldens, which were captured *with* victim tracking; the
/// classic 40-config goldens predate the field and keep the original fold.
fn digest_with_victims(result: &SimulationResult) -> u64 {
    let mut d = Digest::new();
    d.u64(digest(result));
    d.usize(result.victims.len());
    for v in &result.victims {
        d.usize(v.channel);
        d.usize(v.row.bank.rank);
        d.usize(v.row.bank.bank_group);
        d.usize(v.row.bank.bank);
        d.usize(v.row.row);
        d.u64(v.disturbance);
        d.usize(v.bitflips);
    }
    d.0
}

/// Runs every catalog scenario (pattern × placement) under Graphene ±BH on
/// both scheduler kernels, asserting cross-kernel digest equality and
/// returning the per-kernel digest rows for the scenario golden file.
fn run_scenario_matrix(stepping: ChannelStepping) -> Vec<(String, u64)> {
    use breakhammer_suite::workloads::scenario_catalog;
    let mut out = Vec::new();
    for scenario in scenario_catalog() {
        for breakhammer in [false, true] {
            let mut digests = Vec::new();
            for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
                let mut config = config_for(MechanismKind::Graphene, breakhammer, kernel);
                config.stepping = stepping;
                let traces = attack_traces_composed(&config, &scenario.attacker, 2_000, 100);
                let victims = scenario.attacker.victim_rows(&config.geometry);
                let result = System::new(config, &traces, vec![0, 1, 2])
                    .watch_victims(victims.iter().map(|v| (v.channel, v.row)))
                    .run();
                let label = format!(
                    "{} {} {}",
                    scenario.name,
                    if breakhammer { "bh" } else { "nobh" },
                    kernel_name(kernel)
                );
                digests.push((label, digest_with_victims(&result)));
            }
            assert_eq!(
                digests[0].1, digests[1].1,
                "kernel digests diverged for scenario {} bh={breakhammer}",
                scenario.name
            );
            out.extend(digests);
        }
    }
    out
}

/// Extends [`digest_with_victims`] with the fault-injection surface — the
/// [`AttackOutcome`](breakhammer_suite::sim::AttackOutcome) counters and the
/// per-channel machine-check counts. Used only by the fault-model goldens,
/// which pin the probabilistic flip model and the SEC-DED classification;
/// the classic and scenario goldens predate those fields and keep their
/// original folds.
fn digest_with_outcome(result: &SimulationResult) -> u64 {
    let mut d = Digest::new();
    d.u64(digest_with_victims(result));
    d.u64(result.outcome.flips_raw);
    d.u64(result.outcome.corrected);
    d.u64(result.outcome.detected);
    d.u64(result.outcome.silent);
    d.bool(result.outcome.attack_success);
    d.usize(result.per_channel.len());
    for ch in &result.per_channel {
        d.u64(ch.machine_checks);
    }
    d.0
}

/// Runs a mechanism subset ±BreakHammer on both kernels under the
/// probabilistic fault model with SEC-DED ECC, asserting cross-kernel digest
/// equality and returning the rows for the fault golden file. The fold
/// includes the raw/corrected/detected/silent flip counters, so this matrix
/// pins the *probabilistic* behaviour bit-exactly — across kernels, stepping
/// modes, and sessions.
fn run_fault_matrix(stepping: ChannelStepping) -> Vec<(String, u64)> {
    use breakhammer_suite::dram::{EccMode, FaultConfig, FaultModel};
    let mut out = Vec::new();
    for mechanism in [MechanismKind::None, MechanismKind::Para, MechanismKind::Graphene] {
        for breakhammer in [false, true] {
            if mechanism == MechanismKind::None && breakhammer {
                continue;
            }
            let mut digests = Vec::new();
            for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
                let mut config = SystemConfig::fast_test(mechanism, 64, breakhammer);
                config.instructions_per_core = 6_000;
                config.scheduler = kernel;
                config.stepping = stepping;
                config.fault = FaultConfig {
                    model: FaultModel::Probabilistic { flip_probability: 0.7, nrh_variation: 0.2 },
                    ecc: EccMode::SecDed,
                };
                let traces = attack_traces(&config, 2_000, 100);
                let result = System::new(config, &traces, vec![0, 1, 2]).run();
                if mechanism == MechanismKind::None {
                    assert!(
                        result.outcome.flips_raw > 0,
                        "undefended fault-matrix run produced no flips — coverage lost"
                    );
                }
                let label = format!(
                    "fault {mechanism} {} {}",
                    if breakhammer { "bh" } else { "nobh" },
                    kernel_name(kernel)
                );
                digests.push((label, digest_with_outcome(&result)));
            }
            assert_eq!(
                digests[0].1, digests[1].1,
                "kernel digests diverged for fault matrix {mechanism} bh={breakhammer}"
            );
            out.extend(digests);
        }
    }
    out
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/digests.golden.txt")
}

fn fault_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fault_digests.golden.txt")
}

fn scenario_golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/scenario_digests.golden.txt")
}

/// Compares `digests` to the golden file at `path`, recording instead when
/// `BH_DIGEST_RECORD` is set. Shared by the classic and scenario matrices.
fn check_golden(path: &std::path::Path, digests: &[(String, u64)]) {
    if std::env::var_os("BH_DIGEST_RECORD").is_some() {
        let mut contents = String::new();
        for (label, d) in digests {
            contents.push_str(&format!("{label} {d:016x}\n"));
        }
        std::fs::write(path, contents).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap_or_else(|_| {
        panic!("{} missing — run with BH_DIGEST_RECORD=1 to create it", path.display())
    });
    let mut mismatches = Vec::new();
    let mut lines = golden.lines();
    for (label, d) in digests {
        match lines.next() {
            None => mismatches.push(format!("{label}: missing from golden file")),
            Some(line) => {
                let expected = format!("{label} {d:016x}");
                if line != expected {
                    mismatches.push(format!("got `{expected}`, golden has `{line}`"));
                }
            }
        }
    }
    if let Some(extra) = lines.next() {
        mismatches.push(format!("golden file has extra line `{extra}`"));
    }
    assert!(
        mismatches.is_empty(),
        "simulation digests diverged from {} \
         (regenerate with BH_DIGEST_RECORD=1 if the change is intentional):\n{}",
        path.display(),
        mismatches.join("\n")
    );
}

/// Every (pattern × placement) catalog scenario ±BreakHammer must match the
/// committed scenario golden file on both kernels — and the kernels must
/// agree with each other (asserted inside [`run_scenario_matrix`]).
#[test]
fn scenario_digests_match_golden_file() {
    check_golden(&scenario_golden_path(), &run_scenario_matrix(ChannelStepping::Serial));
}

/// The 40-config digest matrix must match the committed golden file exactly.
#[test]
fn simulation_digests_match_golden_file() {
    check_golden(&golden_path(), &run_matrix(ChannelStepping::Serial));
}

/// The 40-config matrix with epoch-parallel stepping forced must match the
/// *same* golden file: parallel stepping is a pure scheduling change, byte-
/// identical on the digest-pinned behavioural surface. (Recording with
/// `BH_DIGEST_RECORD=1` is driven by the serial tests above; this test only
/// ever compares.)
#[test]
fn simulation_digests_match_golden_file_with_parallel_stepping() {
    if std::env::var_os("BH_DIGEST_RECORD").is_some() {
        return;
    }
    check_golden(&golden_path(), &run_matrix(ChannelStepping::Parallel));
}

/// The scenario matrix with epoch-parallel stepping forced must match the
/// same scenario golden file too.
#[test]
fn scenario_digests_match_golden_file_with_parallel_stepping() {
    if std::env::var_os("BH_DIGEST_RECORD").is_some() {
        return;
    }
    check_golden(&scenario_golden_path(), &run_scenario_matrix(ChannelStepping::Parallel));
}

/// The probabilistic fault-model matrix must match its committed golden file
/// on both kernels — pinning the flip draws and the SEC-DED classification
/// bit-exactly across sessions.
#[test]
fn fault_digests_match_golden_file() {
    check_golden(&fault_golden_path(), &run_fault_matrix(ChannelStepping::Serial));
}

/// The fault matrix with epoch-parallel stepping forced must match the same
/// golden file: the flip draws key on cumulative per-row crossing counts, not
/// on event order, so stepping cannot move them.
#[test]
fn fault_digests_match_golden_file_with_parallel_stepping() {
    if std::env::var_os("BH_DIGEST_RECORD").is_some() {
        return;
    }
    check_golden(&fault_golden_path(), &run_fault_matrix(ChannelStepping::Parallel));
}
