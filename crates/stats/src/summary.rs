//! Descriptive statistics: percentiles, quartiles/IQR (for the box-and-whisker
//! plot of Fig. 19), standard deviation and confidence intervals (the error
//! bars / bands of Figs. 2 and 10).

use serde::{Deserialize, Serialize};

/// Percentile of a sample set using linear interpolation between order
/// statistics (the same convention as common plotting libraries).
///
/// `p` is in `[0, 100]`.
///
/// # Panics
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
///
/// # Examples
/// ```
/// use bh_stats::percentile;
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile(&xs, 0.0), 10.0);
/// assert_eq!(percentile(&xs, 100.0), 40.0);
/// assert_eq!(percentile(&xs, 50.0), 25.0);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set is undefined");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    percentile_of_sorted(&sorted, p)
}

/// Percentile of an already-sorted sample set (ascending).
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set is undefined");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Five-number summary plus IQR whiskers, matching the paper's
/// box-and-whisker description (footnote 12): box is Q1..Q3, whiskers mark
/// the central 1.5·IQR range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Smallest sample.
    pub min: f64,
    /// Lower whisker (Q1 − 1.5·IQR, clamped to the data range).
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (Q3 + 1.5·IQR, clamped to the data range).
    pub whisker_hi: f64,
    /// Largest sample.
    pub max: f64,
}

impl BoxPlot {
    /// Computes the box-plot summary of `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "box plot of an empty sample set is undefined");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let q1 = percentile_of_sorted(&sorted, 25.0);
        let median = percentile_of_sorted(&sorted, 50.0);
        let q3 = percentile_of_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        let min = sorted[0];
        let max = *sorted.last().expect("non-empty");
        BoxPlot {
            min,
            whisker_lo: (q1 - 1.5 * iqr).max(min),
            q1,
            median,
            q3,
            whisker_hi: (q3 + 1.5 * iqr).min(max),
            max,
        }
    }

    /// The interquartile range (Q3 − Q1).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Mean, standard deviation and a confidence interval of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for a single sample).
    pub std_dev: f64,
    /// Half-width of the confidence interval around the mean.
    pub ci_half_width: f64,
}

impl Summary {
    /// Summarises `samples` with a normal-approximation confidence interval at
    /// the given z-score (1.96 ≈ 95%, 2.576 ≈ 99%).
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn with_z(samples: &[f64], z: f64) -> Self {
        assert!(!samples.is_empty(), "summary of an empty sample set is undefined");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        let ci_half_width = z * std_dev / (n as f64).sqrt();
        Summary { n, mean, std_dev, ci_half_width }
    }

    /// 95%-confidence summary.
    pub fn ci95(samples: &[f64]) -> Self {
        Summary::with_z(samples, 1.96)
    }

    /// Lower edge of the confidence interval.
    pub fn ci_low(&self) -> f64 {
        self.mean - self.ci_half_width
    }

    /// Upper edge of the confidence interval.
    pub fn ci_high(&self) -> f64 {
        self.mean + self.ci_half_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_endpoints_and_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert!((percentile(&xs, 90.0) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for p in [0.0, 10.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&a, p), percentile(&b, p));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn box_plot_matches_quartiles() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let b = BoxPlot::from_samples(&xs);
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        // Whiskers clamp to the observed range.
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 9.0);
    }

    #[test]
    fn box_plot_whiskers_exclude_outliers() {
        let mut xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        xs.push(1000.0);
        let b = BoxPlot::from_samples(&xs);
        assert!(b.whisker_hi < 1000.0);
        assert_eq!(b.max, 1000.0);
    }

    #[test]
    fn summary_of_constant_samples_has_zero_spread() {
        let s = Summary::ci95(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci_half_width, 0.0);
        assert_eq!(s.ci_low(), 3.0);
        assert_eq!(s.ci_high(), 3.0);
    }

    #[test]
    fn summary_interval_shrinks_with_more_samples() {
        let few = vec![1.0, 2.0, 3.0, 4.0];
        let many: Vec<f64> = few.iter().cycle().take(64).copied().collect();
        let s_few = Summary::ci95(&few);
        let s_many = Summary::ci95(&many);
        assert!((s_few.mean - s_many.mean).abs() < 1e-9);
        assert!(s_many.ci_half_width < s_few.ci_half_width);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::ci95(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }
}
