//! Resume equivalence: an interrupted sweep plus a resume must produce the
//! same result set as one uninterrupted sweep.
//!
//! Interruption is simulated deterministically with the engine's
//! `cell_limit` budget (a real SIGKILL leaves the same store state minus any
//! line that was mid-write, which the resume parser already skips). Because
//! the simulator is deterministic, equivalence is checked at full strength:
//! the two stores hold byte-identical lines, modulo ordering.

use bh_bench::campaign::{report_table, CampaignSpec, ResultStore};
use bh_bench::Scale;
use bh_mitigation::MechanismKind;
use std::collections::HashSet;
use std::path::PathBuf;

fn tiny_spec() -> CampaignSpec {
    let mut scale = Scale::quick();
    scale.instructions_per_core = 4_000;
    scale.benign_entries = 600;
    scale.attacker_entries = 600;
    scale.mixes_per_class = 1;
    scale.worker_threads = 2;
    let mut spec = CampaignSpec::from_scale(scale, vec![MechanismKind::Graphene], true);
    spec.nrh_values = vec![64];
    spec.breakhammer_options = vec![true];
    spec.seeds = vec![42, 43];
    spec
}

fn test_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bh-campaign-resume-{tag}-{}.jsonl", std::process::id()))
}

fn sorted_lines(path: &PathBuf) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .expect("store is readable")
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn interrupted_sweep_resumes_to_the_uninterrupted_result_set() {
    let spec = tiny_spec();
    let full_path = test_path("full");
    let chunked_path = test_path("chunked");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&chunked_path);

    // One uninterrupted sweep over the whole grid.
    let full_store = ResultStore::create(&full_path).expect("fresh store");
    let full = spec.run(&full_store, &HashSet::new(), None);
    assert!(full.complete(), "{full:?}");
    assert_eq!(full.evaluated_cells, full.total_cells);
    assert_eq!(full.skipped_cells + full.deferred_cells, 0);
    // 1 config × 6 attack mixes × 2 seeds.
    assert_eq!(full.total_cells, 12);

    // The same sweep "interrupted" after 5 cells (mid-way through the first
    // seed's grid)…
    let chunked_store = ResultStore::create(&chunked_path).expect("fresh store");
    let interrupted = spec.run(&chunked_store, &HashSet::new(), Some(5));
    drop(chunked_store);
    assert_eq!(interrupted.evaluated_cells, 5, "{interrupted:?}");
    assert_eq!(interrupted.deferred_cells, 7);
    assert!(!interrupted.complete());

    // …then resumed: the completed cells are loaded from the store and
    // skipped, the deferred ones run now.
    let completed = ResultStore::completed_cells(&chunked_path).expect("store parses");
    assert_eq!(completed.len(), 5);
    let resumed_store = ResultStore::append_to(&chunked_path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &completed, None);
    assert_eq!(resumed.skipped_cells, 5, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 7);
    assert!(resumed.complete());

    // The interrupted-then-resumed store equals the uninterrupted one,
    // byte for byte, modulo line order.
    assert_eq!(sorted_lines(&full_path), sorted_lines(&chunked_path));

    // And a second resume finds nothing left to do.
    let completed = ResultStore::completed_cells(&chunked_path).expect("store parses");
    let noop_store = ResultStore::append_to(&chunked_path).expect("store reopens");
    let noop = spec.run(&noop_store, &completed, None);
    assert_eq!(noop.evaluated_cells, 0, "{noop:?}");
    assert_eq!(noop.skipped_cells, noop.total_cells);

    // The store feeds the report aggregation.
    let records = ResultStore::load(&chunked_path).expect("store loads");
    assert_eq!(records.len(), 12);
    assert!(records.iter().all(|r| r.mechanism == "Graphene" && r.nrh == 64 && r.breakhammer));
    let seeds: HashSet<u64> = records.iter().map(|r| r.seed).collect();
    assert_eq!(seeds, HashSet::from([42, 43]));
    let table = report_table(&records);
    assert_eq!(table.len(), 1, "one configuration group");

    std::fs::remove_file(&full_path).expect("cleanup");
    std::fs::remove_file(&chunked_path).expect("cleanup");
}
