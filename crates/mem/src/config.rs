//! Memory-controller configuration (Table 1 of the paper).

use crate::mapping::AddressMapping;
use serde::{Deserialize, Serialize};

/// Configuration of the memory request scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemControllerConfig {
    /// Read request queue capacity (64 in Table 1).
    pub read_queue_capacity: usize,
    /// Write request queue capacity (64 in Table 1).
    pub write_queue_capacity: usize,
    /// FR-FCFS column-over-row reordering cap (4 in Table 1): after this many
    /// consecutive row-buffer hits are served from a bank while older requests
    /// wait, the oldest request is prioritised.
    pub frfcfs_cap: u32,
    /// Write-queue occupancy at which the controller switches to draining
    /// writes.
    pub write_drain_high: usize,
    /// Write-queue occupancy at which the controller switches back to reads.
    pub write_drain_low: usize,
    /// Address-mapping scheme (MOP in Table 1).
    pub mapping: AddressMapping,
    /// Number of hardware threads (for per-thread statistics).
    pub num_threads: usize,
}

impl MemControllerConfig {
    /// The paper's Table 1 configuration for `num_threads` hardware threads.
    pub fn paper_table1(num_threads: usize) -> Self {
        MemControllerConfig {
            read_queue_capacity: 64,
            write_queue_capacity: 64,
            frfcfs_cap: 4,
            write_drain_high: 48,
            write_drain_low: 16,
            mapping: AddressMapping::paper_default(),
            num_threads,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.read_queue_capacity == 0 || self.write_queue_capacity == 0 {
            return Err("request queues must be non-empty".to_string());
        }
        if self.write_drain_low >= self.write_drain_high {
            return Err("write drain low watermark must be below the high watermark".to_string());
        }
        if self.write_drain_high > self.write_queue_capacity {
            return Err("write drain high watermark exceeds the write queue capacity".to_string());
        }
        if self.num_threads == 0 {
            return Err("need at least one hardware thread".to_string());
        }
        if self.frfcfs_cap == 0 {
            return Err("the FR-FCFS cap must be at least 1".to_string());
        }
        Ok(())
    }
}

impl Default for MemControllerConfig {
    fn default() -> Self {
        MemControllerConfig::paper_table1(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = MemControllerConfig::paper_table1(4);
        assert_eq!(c.read_queue_capacity, 64);
        assert_eq!(c.write_queue_capacity, 64);
        assert_eq!(c.frfcfs_cap, 4);
        assert_eq!(c.mapping, AddressMapping::mop(4));
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(MemControllerConfig::default(), c);
    }

    #[test]
    fn validation_rejects_inconsistent_watermarks() {
        let mut c = MemControllerConfig::paper_table1(4);
        c.write_drain_low = 50;
        c.write_drain_high = 40;
        assert!(c.validate().is_err());

        let mut c = MemControllerConfig::paper_table1(4);
        c.write_drain_high = 1000;
        assert!(c.validate().is_err());

        let mut c = MemControllerConfig::paper_table1(4);
        c.read_queue_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = MemControllerConfig::paper_table1(4);
        c.num_threads = 0;
        assert!(c.validate().is_err());

        let mut c = MemControllerConfig::paper_table1(4);
        c.frfcfs_cap = 0;
        assert!(c.validate().is_err());
    }
}
