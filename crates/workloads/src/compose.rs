//! Composition of the three attacker axes into one trace-producing unit.
//!
//! A [`ComposedAttacker`] glues an [`AccessPattern`] (the hammerer), an
//! [`AggressorPlacement`] (the allocator) and a [`VictimLayout`] (the data
//! at risk) into the object `MixBuilder` consumes: the pattern asks the
//! placement for an [`AggressorGrid`](crate::placement::AggressorGrid),
//! generates its schedule over it, and the victim layout declares which rows
//! the simulator should watch.

use crate::pattern::AccessPattern;
use crate::placement::AggressorPlacement;
use crate::victim::{SandwichedVictims, VictimLayout, VictimRow};
use bh_cpu::Trace;
use bh_dram::{BankAddr, DramGeometry};
use bh_mem::AddressMapping;
use std::sync::Arc;

/// One attacker: pattern × placement × victims.
///
/// Cloning is cheap (the axes are shared behind [`Arc`]s), so a campaign can
/// stamp one composed attacker into many mixes.
///
/// # Example
///
/// ```
/// use bh_dram::DramGeometry;
/// use bh_mem::AddressMapping;
/// use bh_workloads::{ComposedAttacker, RowPressPattern, SpreadPlacement};
///
/// let attacker = ComposedAttacker::new(RowPressPattern::new(2, 2, 16), SpreadPlacement::new());
/// assert_eq!(attacker.tag(), Some("press-spr"));
/// let geometry = DramGeometry::paper_ddr5();
/// let trace = attacker.trace(&geometry, AddressMapping::paper_default(), 2_000, 42);
/// assert_eq!(trace.len(), 2_000);
/// assert!(!attacker.victim_rows(&geometry).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ComposedAttacker {
    pattern: Arc<dyn AccessPattern>,
    placement: Arc<dyn AggressorPlacement>,
    victims: Arc<dyn VictimLayout>,
    tag: Option<String>,
}

impl ComposedAttacker {
    /// Composes a pattern with a placement, watching the sandwiched
    /// neighbors of every aggressor by default. The scenario tag defaults to
    /// `"<pattern>-<placement>"`.
    pub fn new(
        pattern: impl AccessPattern + 'static,
        placement: impl AggressorPlacement + 'static,
    ) -> Self {
        let tag = format!("{}-{}", pattern.label(), placement.label());
        ComposedAttacker {
            pattern: Arc::new(pattern),
            placement: Arc::new(placement),
            victims: Arc::new(SandwichedVictims::new()),
            tag: Some(tag),
        }
    }

    /// Replaces the victim layout.
    pub fn with_victims(mut self, victims: impl VictimLayout + 'static) -> Self {
        self.victims = Arc::new(victims);
        self
    }

    /// Overrides the scenario tag (used as the mix-name suffix).
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// Drops the scenario tag. Mixes built from an untagged attacker keep
    /// their plain names — the compat facade uses this so pre-redesign mix
    /// names (and thus golden digests) stay unchanged.
    pub fn untagged(mut self) -> Self {
        self.tag = None;
        self
    }

    /// The scenario tag, if any.
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }

    /// The placed aggressor grid for this attacker on `geometry`.
    pub fn grid(&self, geometry: &DramGeometry) -> crate::placement::AggressorGrid {
        self.placement.place(&self.pattern.request(), geometry)
    }

    /// Generates the attacker's access trace.
    ///
    /// # Panics
    /// Panics if `entries` is zero or the pattern's parameters are
    /// degenerate for the geometry.
    pub fn trace(
        &self,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        assert!(entries > 0, "a trace needs at least one record");
        let grid = self.grid(geometry);
        self.pattern.generate(&grid, geometry, mapping, entries, seed)
    }

    /// The rows holding victim data for this attacker on `geometry`.
    pub fn victim_rows(&self, geometry: &DramGeometry) -> Vec<VictimRow> {
        let grid = self.grid(geometry);
        self.victims.victim_rows(&grid, geometry)
    }

    /// What counts as a successful attack on this attacker's victim layout.
    pub fn success_criterion(&self) -> bh_dram::SuccessCriterion {
        self.victims.success_criterion()
    }

    /// The aggressor rows this attacker hammers, bank-major.
    pub fn aggressor_rows(&self, geometry: &DramGeometry) -> Vec<(BankAddr, usize)> {
        self.grid(geometry).aggressor_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::AttackerKind;
    use crate::pattern::{ClassicPattern, DecoyPattern, FuzzedPattern};
    use crate::placement::{NeighborPlacement, SpreadPlacement};
    use crate::victim::KeyTableVictims;

    #[test]
    fn composition_tags_follow_the_axis_labels() {
        let a = ComposedAttacker::new(FuzzedPattern::new(2, 4), NeighborPlacement::new());
        assert_eq!(a.tag(), Some("fuzz-nbr"));
        let b = a.clone().with_tag("custom");
        assert_eq!(b.tag(), Some("custom"));
        assert_eq!(b.untagged().tag(), None);
    }

    #[test]
    fn traces_are_deterministic_and_victims_nonempty() {
        let geometry = DramGeometry::paper_ddr5();
        let mapping = AddressMapping::paper_default();
        let a = ComposedAttacker::new(DecoyPattern::new(2, 2), SpreadPlacement::new())
            .with_victims(KeyTableVictims::new(2));
        let t1 = a.trace(&geometry, mapping, 1_000, 7);
        let t2 = a.trace(&geometry, mapping, 1_000, 7);
        assert_eq!(t1, t2);
        assert!(!a.victim_rows(&geometry).is_empty());
        assert!(!a.aggressor_rows(&geometry).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_traces_are_rejected_before_pattern_checks() {
        let geometry = DramGeometry::paper_ddr5();
        let a = ComposedAttacker::new(
            ClassicPattern::new(AttackerKind::DoubleSided),
            NeighborPlacement::new(),
        );
        let _ = a.trace(&geometry, AddressMapping::paper_default(), 0, 1);
    }
}
