//! Figure 12: DRAM energy of the eight mitigation mechanisms with and without
//! BreakHammer, with an attacker present, as N_RH decreases — normalized to a
//! baseline with no RowHammer mitigation.

use bh_bench::{maybe_print_config, mean_of, paper_config, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let baseline_cfg = paper_config(MechanismKind::None, scale.nrh_values[0], false, &scale);
    let baseline = campaign.run(&baseline_cfg, true);
    let baseline_energy = mean_of(&baseline.iter().collect::<Vec<_>>(), |r| r.energy_nj);

    let mechanisms = MechanismKind::paper_mechanisms();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[false, true], /*attack=*/ true);

    let mut table = Table::new(["nrh", "config", "energy_uj", "normalized_energy"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            for bh in [false, true] {
                let sel = select(&records, mech, nrh, bh);
                if sel.is_empty() {
                    continue;
                }
                let energy = mean_of(&sel, |r| r.energy_nj);
                let label = if bh { format!("{mech}+BH") } else { mech.to_string() };
                table.push_row([
                    nrh.to_string(),
                    label,
                    format!("{:.1}", energy / 1000.0),
                    fmt3(energy / baseline_energy),
                ]);
            }
        }
    }
    print_results(
        "Figure 12: DRAM energy with an attacker present (normalized to no mitigation)",
        &table,
    );
}
