//! DRAM organization: channels, ranks, bank groups, banks, rows and columns.
//!
//! The paper's simulated system (Table 1) is a single DDR5 channel with two
//! ranks, eight bank groups of two banks each (32 banks total) and 64 Ki rows
//! per bank. [`DramGeometry`] captures that organization and provides the
//! flattening/indexing helpers used throughout the memory subsystem.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinates of one DRAM bank inside a channel.
///
/// # Examples
/// ```
/// use bh_dram::{BankAddr, DramGeometry};
/// let geom = DramGeometry::paper_ddr5();
/// let bank = BankAddr { rank: 1, bank_group: 3, bank: 1 };
/// let flat = geom.flat_bank(bank);
/// assert_eq!(geom.bank_from_flat(flat), bank);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankAddr {
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank-group index within the rank.
    pub bank_group: usize,
    /// Bank index within the bank group.
    pub bank: usize,
}

impl fmt::Display for BankAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}g{}b{}", self.rank, self.bank_group, self.bank)
    }
}

/// A fully-resolved DRAM row: a bank plus a row index within that bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowAddr {
    /// The bank containing the row.
    pub bank: BankAddr,
    /// Row index within the bank.
    pub row: usize,
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:row{}", self.bank, self.row)
    }
}

/// A fully-decoded DRAM location (bank, row and column), the output of the
/// memory controller's address-mapping stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Channel index (0 on the paper's single-channel system; the
    /// channel-interleave policy of the address mapping decides it on
    /// multi-channel systems).
    pub channel: usize,
    /// The bank coordinates.
    pub bank: BankAddr,
    /// Row index within the bank.
    pub row: usize,
    /// Column (cache-line sized) index within the row.
    pub column: usize,
}

impl DramLocation {
    /// The row address (bank + row) of this location.
    pub fn row_addr(&self) -> RowAddr {
        RowAddr { bank: self.bank, row: self.row }
    }
}

impl fmt::Display for DramLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{} {} row{} col{}", self.channel, self.bank, self.row, self.column)
    }
}

/// Static description of the DRAM devices behind one channel.
///
/// All counts are per channel. The default used across the reproduction is
/// [`DramGeometry::paper_ddr5`], matching Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of channels in the system (the paper uses 1).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
    /// Cache-line-sized columns per row.
    pub columns_per_row: usize,
    /// Bytes per column access (one cache line).
    pub column_bytes: usize,
}

impl DramGeometry {
    /// Geometry of the paper's simulated main memory (Table 1): DDR5, one
    /// channel, 2 ranks, 8 bank groups × 2 banks, 64 Ki rows per bank, 8 KiB
    /// rows served as 128 × 64 B columns.
    pub fn paper_ddr5() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 2,
            bank_groups: 8,
            banks_per_group: 2,
            rows_per_bank: 64 * 1024,
            columns_per_row: 128,
            column_bytes: 64,
        }
    }

    /// A DDR4-like geometry (1 channel, 2 ranks, 4 bank groups × 4 banks).
    pub fn ddr4() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            rows_per_bank: 64 * 1024,
            columns_per_row: 128,
            column_bytes: 64,
        }
    }

    /// A deliberately tiny geometry used by unit tests so exhaustive checks
    /// stay fast (2 ranks × 2 bank groups × 2 banks × 128 rows).
    pub fn tiny() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 2,
            bank_groups: 2,
            banks_per_group: 2,
            rows_per_bank: 128,
            columns_per_row: 16,
            column_bytes: 64,
        }
    }

    /// The same geometry with a different channel count (all other
    /// dimensions are per channel and stay unchanged).
    pub fn with_channels(mut self, channels: usize) -> Self {
        assert!(channels >= 1, "a memory system needs at least one channel");
        self.channels = channels;
        self
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Total number of banks in one channel.
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.banks_per_rank()
    }

    /// Total number of rows in one channel.
    pub fn rows_per_channel(&self) -> usize {
        self.banks_per_channel() * self.rows_per_bank
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> usize {
        self.columns_per_row * self.column_bytes
    }

    /// Total capacity of one channel in bytes.
    pub fn channel_bytes(&self) -> u64 {
        self.rows_per_channel() as u64 * self.row_bytes() as u64
    }

    /// Total capacity of the whole memory system in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.channel_bytes() * self.channels as u64
    }

    /// Flattens a [`BankAddr`] to a dense index in `0..banks_per_channel()`.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range for this geometry.
    pub fn flat_bank(&self, bank: BankAddr) -> usize {
        assert!(bank.rank < self.ranks, "rank {} out of range", bank.rank);
        assert!(bank.bank_group < self.bank_groups, "bank group {} out of range", bank.bank_group);
        assert!(bank.bank < self.banks_per_group, "bank {} out of range", bank.bank);
        (bank.rank * self.bank_groups + bank.bank_group) * self.banks_per_group + bank.bank
    }

    /// Inverse of [`DramGeometry::flat_bank`].
    ///
    /// # Panics
    /// Panics if `flat` is not a valid dense bank index.
    pub fn bank_from_flat(&self, flat: usize) -> BankAddr {
        assert!(flat < self.banks_per_channel(), "flat bank index {flat} out of range");
        let bank = flat % self.banks_per_group;
        let rest = flat / self.banks_per_group;
        let bank_group = rest % self.bank_groups;
        let rank = rest / self.bank_groups;
        BankAddr { rank, bank_group, bank }
    }

    /// Flattens a row (bank + row index) to a dense index in
    /// `0..rows_per_channel()`, useful as a key for per-row tracking tables.
    pub fn flat_row(&self, row: RowAddr) -> usize {
        assert!(row.row < self.rows_per_bank, "row {} out of range", row.row);
        self.flat_bank(row.bank) * self.rows_per_bank + row.row
    }

    /// Inverse of [`DramGeometry::flat_row`].
    pub fn row_from_flat(&self, flat: usize) -> RowAddr {
        assert!(flat < self.rows_per_channel(), "flat row index {flat} out of range");
        let bank = self.bank_from_flat(flat / self.rows_per_bank);
        RowAddr { bank, row: flat % self.rows_per_bank }
    }

    /// Iterates over every bank address of one channel in flat order.
    pub fn iter_banks(&self) -> impl Iterator<Item = BankAddr> + '_ {
        (0..self.banks_per_channel()).map(|i| self.bank_from_flat(i))
    }

    /// The contiguous range of flat bank indices belonging to `rank` (flat
    /// order is rank-major, so a rank's banks are adjacent).
    pub fn rank_flat_range(&self, rank: usize) -> std::ops::Range<usize> {
        assert!(rank < self.ranks, "rank {rank} out of range");
        let banks = self.banks_per_rank();
        rank * banks..(rank + 1) * banks
    }

    /// Returns the physical neighbours of `row` within the same bank at
    /// distance up to `blast_radius` (the rows a RowHammer aggressor disturbs).
    ///
    /// Allocates; the per-activation hot paths use the allocation-free
    /// [`DramGeometry::neighbors`] iterator instead.
    pub fn neighbor_rows(&self, row: RowAddr, blast_radius: usize) -> Vec<RowAddr> {
        self.neighbors(row, blast_radius).collect()
    }

    /// Iterates over the physical neighbours of `row` (same order as
    /// [`DramGeometry::neighbor_rows`]: distance 1 below, 1 above, 2 below,
    /// 2 above, …) without allocating. The iterator owns the few scalars it
    /// needs, so it does not borrow the geometry.
    pub fn neighbors(&self, row: RowAddr, blast_radius: usize) -> NeighborRows {
        NeighborRows {
            bank: row.bank,
            row: row.row,
            rows_per_bank: self.rows_per_bank,
            radius: blast_radius,
            distance: 1,
            below_next: true,
        }
    }
}

/// Allocation-free iterator over a row's physical neighbours; see
/// [`DramGeometry::neighbors`].
#[derive(Debug, Clone)]
pub struct NeighborRows {
    bank: BankAddr,
    row: usize,
    rows_per_bank: usize,
    radius: usize,
    distance: usize,
    below_next: bool,
}

impl Iterator for NeighborRows {
    type Item = RowAddr;

    fn next(&mut self) -> Option<RowAddr> {
        while self.distance <= self.radius {
            if self.below_next {
                self.below_next = false;
                if self.row >= self.distance {
                    return Some(RowAddr { bank: self.bank, row: self.row - self.distance });
                }
            } else {
                self.below_next = true;
                let above = self.row + self.distance;
                self.distance += 1;
                if above < self.rows_per_bank {
                    return Some(RowAddr { bank: self.bank, row: above });
                }
            }
        }
        None
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry::paper_ddr5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table1() {
        let g = DramGeometry::paper_ddr5();
        assert_eq!(g.banks_per_channel(), 32);
        assert_eq!(g.banks_per_rank(), 16);
        assert_eq!(g.rows_per_bank, 65536);
        assert_eq!(g.row_bytes(), 8192);
        // 32 banks * 64K rows * 8KiB = 16 GiB per channel
        assert_eq!(g.channel_bytes(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn flat_bank_roundtrip_exhaustive() {
        let g = DramGeometry::tiny();
        for flat in 0..g.banks_per_channel() {
            let addr = g.bank_from_flat(flat);
            assert_eq!(g.flat_bank(addr), flat);
        }
    }

    #[test]
    fn flat_bank_is_dense_and_unique() {
        let g = DramGeometry::paper_ddr5();
        let mut seen = vec![false; g.banks_per_channel()];
        for r in 0..g.ranks {
            for bg in 0..g.bank_groups {
                for b in 0..g.banks_per_group {
                    let flat = g.flat_bank(BankAddr { rank: r, bank_group: bg, bank: b });
                    assert!(!seen[flat], "duplicate flat index {flat}");
                    seen[flat] = true;
                }
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn flat_row_roundtrip() {
        let g = DramGeometry::tiny();
        for flat in (0..g.rows_per_channel()).step_by(7) {
            let row = g.row_from_flat(flat);
            assert_eq!(g.flat_row(row), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_bank_panics_on_bad_rank() {
        let g = DramGeometry::tiny();
        g.flat_bank(BankAddr { rank: 9, bank_group: 0, bank: 0 });
    }

    #[test]
    fn neighbor_rows_respect_bank_edges() {
        let g = DramGeometry::tiny();
        let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let first = g.neighbor_rows(RowAddr { bank, row: 0 }, 2);
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|r| r.row == 1 || r.row == 2));

        let last = g.neighbor_rows(RowAddr { bank, row: g.rows_per_bank - 1 }, 2);
        assert_eq!(last.len(), 2);

        let mid = g.neighbor_rows(RowAddr { bank, row: 64 }, 1);
        assert_eq!(mid.len(), 2);
        assert!(mid.iter().any(|r| r.row == 63));
        assert!(mid.iter().any(|r| r.row == 65));
    }

    #[test]
    fn iter_banks_covers_all() {
        let g = DramGeometry::tiny();
        assert_eq!(g.iter_banks().count(), g.banks_per_channel());
    }

    #[test]
    fn display_formats() {
        let bank = BankAddr { rank: 1, bank_group: 2, bank: 0 };
        assert_eq!(bank.to_string(), "r1g2b0");
        let row = RowAddr { bank, row: 42 };
        assert_eq!(row.to_string(), "r1g2b0:row42");
        let loc = DramLocation { channel: 0, bank, row: 42, column: 3 };
        assert_eq!(loc.to_string(), "ch0 r1g2b0 row42 col3");
        assert_eq!(loc.row_addr(), row);
    }
}
