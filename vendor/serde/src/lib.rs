//! Offline stand-in for the `serde` facade.
//!
//! The build environment for this repository has no access to a cargo
//! registry, so the workspace vendors a minimal API-compatible subset of the
//! crates it depends on (see `vendor/README.md`). The simulation code only
//! uses serde as *markers* — `#[derive(Serialize, Deserialize)]` on config
//! and result types so downstream tooling can serialise them — and never
//! invokes a serialiser in-tree. This shim therefore provides the two traits
//! as blanket-implemented markers plus no-op derive macros that accept (and
//! ignore) `#[serde(...)]` helper attributes.
//!
//! Swapping this shim for the real `serde` is a one-line change in the root
//! `Cargo.toml` (`[workspace.dependencies]`) once a registry is reachable;
//! no source file needs to change.

#![warn(missing_docs)]

/// Marker form of `serde::Serialize`.
///
/// Blanket-implemented for every type so that `T: Serialize` bounds and
/// `#[derive(Serialize)]` compile unchanged against this shim.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker form of `serde::Deserialize`.
///
/// Blanket-implemented for every type so that `T: Deserialize<'de>` bounds
/// and `#[derive(Deserialize)]` compile unchanged against this shim.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker form of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough for `DeserializeOwned` imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for `Serialize` imports.
pub mod ser {
    pub use crate::Serialize;
}
