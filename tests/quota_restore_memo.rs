//! Regression tests for the LLC rejection-memo vs. BreakHammer quota
//! restores (the PR-3 memo-stamp path).
//!
//! A core stalled on an exhausted BreakHammer quota memoizes its rejected
//! access and replays the rejection every cycle without re-walking the cache,
//! as long as the LLC attests (via [`LastLevelCache::reject_memo_valid`])
//! that nothing relevant changed. When a window edge restores the thread's
//! quota, the propagation into the LLC bumps the thread's event stamp — and
//! the stalled core must re-dispatch on that same cycle, not one event
//! later. The scheduler-differential quota-starved-tail matrix caught this
//! class of bug once already; these tests pin the memo-invalidation contract
//! directly.

use breakhammer_suite::cpu::{
    CacheConfig, Core, CoreConfig, CoreProgress, LastLevelCache, RejectReason, Trace, TraceEntry,
};
use breakhammer_suite::dram::{PhysAddr, ThreadId};

/// A load-only trace over distinct lines: with a zero quota the very first
/// dispatch is rejected with `QuotaExceeded` and the core spins on the memo.
fn load_trace() -> Trace {
    Trace::new((0..64).map(|i| TraceEntry::load(0, PhysAddr(i * 0x10000))).collect())
}

fn quota_starved() -> (Core, LastLevelCache) {
    let mut llc = LastLevelCache::new(CacheConfig::tiny_test(), 2);
    llc.set_quota(ThreadId(0), 0);
    let core = Core::new(ThreadId(0), CoreConfig::paper_table1(), load_trace(), 1_000);
    (core, llc)
}

/// The memo itself must stop validating the moment the quota changes — that
/// is the stamp the stalled core's fast path trusts.
#[test]
fn quota_change_invalidates_the_rejection_memo_stamp() {
    let (_, mut llc) = quota_starved();
    let addr = PhysAddr(0);
    let reason = RejectReason::QuotaExceeded;
    let stamp = llc.reject_stamp(ThreadId(0), reason);
    assert!(
        llc.reject_memo_valid(ThreadId(0), addr, reason, stamp),
        "while nothing changed, the memoized rejection must keep holding"
    );
    // The quota restore (what the system propagates right after a BreakHammer
    // window rotation) bumps the thread's event stamp.
    llc.set_quota(ThreadId(0), 4);
    assert!(
        !llc.reject_memo_valid(ThreadId(0), addr, reason, stamp),
        "a quota restore must invalidate the memoized QuotaExceeded rejection immediately"
    );
    // Setting the same quota again is not an event — the memo taken after the
    // restore stays valid (no spurious re-walks).
    let stamp = llc.reject_stamp(ThreadId(0), reason);
    llc.set_quota(ThreadId(0), 4);
    assert!(llc.reject_memo_valid(ThreadId(0), addr, reason, stamp));
}

/// End-to-end through the core: a quota-stalled, memo-spinning core must be
/// re-dispatched by the very next tick after the quota restore reaches the
/// LLC — the progress classification (which the event-driven kernel uses to
/// decide whether the core can be skipped) must flip to `Active` on the same
/// cycle, not one event later.
#[test]
fn quota_stalled_core_redispatches_the_cycle_the_quota_returns() {
    let (mut core, mut llc) = quota_starved();
    // Spin long enough that the rejection is memoized and replayed.
    for cycle in 0..10u64 {
        core.tick(cycle, &mut llc);
    }
    assert_eq!(core.stats().loads, 0, "no load can dispatch with a zero quota");
    assert!(llc.stats().quota_rejections >= 10, "every spin cycle must count a rejection");
    match core.progress(&llc, 10) {
        CoreProgress::Stalled(stall) => {
            assert_eq!(stall.reject, Some(RejectReason::QuotaExceeded));
            assert_eq!(stall.wake_at, None, "only an external event can wake the core");
        }
        other => panic!("expected a quota stall, got {other:?}"),
    }

    // The window-edge restore: the system propagates the new quota into the
    // LLC. The very next progress query must report Active — if it still
    // reported Stalled, the event-driven kernel would skip the core past the
    // restore cycle and it would wake a whole event (up to a window) late.
    llc.set_quota(ThreadId(0), 4);
    assert_eq!(
        core.progress(&llc, 10),
        CoreProgress::Active,
        "the stalled core must be re-dispatchable on the restore cycle itself"
    );
    let loads_before = core.stats().loads;
    core.tick(10, &mut llc);
    assert!(
        core.stats().loads > loads_before,
        "the first tick after the restore must dispatch the memoized access"
    );
}
