//! D1 positive: HashMap/HashSet in a digest-pinned crate's non-test code.
use std::collections::{HashMap, HashSet};

pub fn build() -> (HashMap<u32, u32>, HashSet<u32>) {
    (HashMap::new(), HashSet::new())
}
