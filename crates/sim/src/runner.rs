//! Experiment runner: evaluates workload mixes, computes the paper's metrics
//! (weighted speedup of benign applications, maximum slowdown, DRAM energy)
//! and caches the single-core "alone" runs needed for the speedup baselines.

use crate::config::SystemConfig;
use crate::result::SimulationResult;
use crate::system::System;
use bh_cpu::{CompiledTrace, Trace};
use bh_mitigation::MechanismKind;
use bh_stats::AppPerf;
use bh_workloads::WorkloadMix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The evaluation of one workload mix under one system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixEvaluation {
    /// Mix name (e.g. `"HHHA-03"`).
    pub mix_name: String,
    /// The configuration summary used for the run.
    pub config_summary: String,
    /// Weighted speedup over the benign applications.
    pub weighted_speedup: f64,
    /// Maximum slowdown experienced by any benign application (unfairness).
    pub max_slowdown: f64,
    /// Per-benign-application performance samples.
    pub benign_perfs: Vec<AppPerf>,
    /// The raw simulation result.
    pub result: SimulationResult,
}

impl MixEvaluation {
    /// DRAM energy of the run in nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.result.energy_nj
    }

    /// Preventive actions performed during the run.
    pub fn preventive_actions(&self) -> u64 {
        self.result.preventive_actions
    }
}

/// Evaluates workload mixes under a given system configuration, caching the
/// single-core "alone" IPCs used as weighted-speedup baselines.
///
/// Alone IPCs are measured on an unprotected single-core system (no mitigation
/// mechanism, no BreakHammer, no co-runners). Using one common baseline for
/// every configuration keeps the normalised comparisons between configurations
/// exact (the baseline cancels) while avoiding a quadratic number of runs.
#[derive(Debug)]
pub struct Evaluator {
    config: SystemConfig,
    alone_cache: BTreeMap<String, f64>,
}

impl Evaluator {
    /// Creates an evaluator for the given configuration.
    pub fn new(config: SystemConfig) -> Self {
        Evaluator { config, alone_cache: BTreeMap::new() }
    }

    /// The configuration being evaluated.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Switches the evaluator to a different configuration, keeping the
    /// alone-IPC cache: alone baselines are measured on the unprotected
    /// system (no mechanism, no BreakHammer), so every configuration of a
    /// sweep shares them — the same invariant that lets campaigns seed many
    /// evaluators from one warmed cache. Lets a sweep worker reuse one
    /// evaluator across cells instead of rebuilding it per cell.
    pub fn set_config(&mut self, config: SystemConfig) {
        self.config = config;
    }

    /// Pre-seeds the alone-IPC cache (useful to share a cache across
    /// evaluators for different mechanisms).
    pub fn with_alone_cache(mut self, cache: BTreeMap<String, f64>) -> Self {
        self.alone_cache = cache;
        self
    }

    /// Returns the current alone-IPC cache.
    pub fn alone_cache(&self) -> &BTreeMap<String, f64> {
        &self.alone_cache
    }

    /// Single-core configuration used for alone runs.
    fn alone_config(&self) -> SystemConfig {
        let mut cfg = self.config.clone();
        cfg.mechanism = MechanismKind::None;
        cfg.breakhammer = false;
        cfg
    }

    /// Pre-computes the alone-IPC baselines for every benign application of
    /// `mix` without running the shared simulation (useful to warm a cache
    /// that is then shared across parallel evaluations).
    pub fn warm_alone_cache(&mut self, mix: &WorkloadMix) {
        for &t in &mix.benign_threads() {
            let _ = self.alone_ipc(&mix.app_names[t], &mix.traces[t]);
        }
    }

    /// IPC of `trace` when running alone on the unprotected system, cached by
    /// application name. The compiled trace is shared with the run, not
    /// copied.
    pub fn alone_ipc(&mut self, app_name: &str, trace: &CompiledTrace) -> f64 {
        if let Some(ipc) = self.alone_cache.get(app_name) {
            return *ipc;
        }
        let cfg = self.alone_config();
        let cores = cfg.cores;
        // Idle co-runners: a minimal compute-only trace that touches one line.
        let idle = Trace::new(vec![bh_cpu::TraceEntry::load(200, bh_dram::PhysAddr(0))]).compile();
        let mut traces = vec![idle; cores];
        traces[0] = trace.clone();
        let result = System::with_compiled(cfg, &traces, vec![0]).run();
        let ipc = result.cores[0].ipc.max(1e-6);
        self.alone_cache.insert(app_name.to_string(), ipc);
        ipc
    }

    /// Runs `mix` on the configured system and computes the paper's metrics.
    pub fn evaluate(&mut self, mix: &WorkloadMix) -> MixEvaluation {
        assert_eq!(
            mix.cores(),
            self.config.cores,
            "mix has {} cores but the system is configured for {}",
            mix.cores(),
            self.config.cores
        );
        let benign_threads = mix.benign_threads();
        // Alone baselines (cached by application name).
        let mut alone: Vec<f64> = Vec::with_capacity(benign_threads.len());
        for &t in &benign_threads {
            alone.push(self.alone_ipc(&mix.app_names[t], &mix.traces[t]));
        }

        // The mix's compiled traces are shared into the run (a refcount bump
        // per core): every configuration of a campaign matrix replays the
        // same compiled records instead of regenerating or deep-copying them.
        let result =
            System::with_compiled(self.config.clone(), &mix.traces, benign_threads.clone())
                .watch_victims(mix.victim_rows.iter().map(|v| (v.channel, v.row)))
                .with_success_criterion(mix.success_criterion)
                .run();

        let benign_perfs: Vec<AppPerf> = benign_threads
            .iter()
            .zip(alone.iter())
            .map(|(&t, &ipc_alone)| AppPerf::new(ipc_alone, result.cores[t].ipc.max(1e-6)))
            .collect();
        let weighted_speedup = bh_stats::weighted_speedup(&benign_perfs);
        let max_slowdown = bh_stats::max_slowdown(&benign_perfs);
        MixEvaluation {
            mix_name: mix.name.clone(),
            config_summary: self.config.summary(),
            weighted_speedup,
            max_slowdown,
            benign_perfs,
            result,
        }
    }
}

/// Convenience wrapper: evaluates the same mix under a family of
/// configurations, sharing the alone-IPC cache between them. Returns one
/// evaluation per configuration, in order.
pub fn evaluate_under_configs(mix: &WorkloadMix, configs: &[SystemConfig]) -> Vec<MixEvaluation> {
    let mut shared_cache: BTreeMap<String, f64> = BTreeMap::new();
    let mut out = Vec::with_capacity(configs.len());
    for cfg in configs {
        let mut evaluator = Evaluator::new(cfg.clone()).with_alone_cache(shared_cache.clone());
        let eval = evaluator.evaluate(mix);
        shared_cache = evaluator.alone_cache().clone();
        out.push(eval);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_mem::AddressMapping;
    use bh_workloads::{MixBuilder, MixClass, TraceGenerator};

    /// The runner tests use the real DDR5 geometry (with shortened test
    /// timings) so the benign generators' footprints do not alias onto a
    /// handful of rows of the tiny test geometry.
    fn test_config(mechanism: MechanismKind, nrh: u64, breakhammer: bool) -> SystemConfig {
        let mut cfg = SystemConfig::fast_test(mechanism, nrh, breakhammer);
        cfg.geometry = bh_dram::DramGeometry::paper_ddr5();
        cfg.instructions_per_core = 25_000;
        cfg
    }

    fn test_mix(with_attacker: bool) -> WorkloadMix {
        let cfg = test_config(MechanismKind::None, 1024, false);
        let generator = TraceGenerator::new(cfg.geometry.clone(), AddressMapping::paper_default());
        let mut builder = MixBuilder::new(generator);
        builder.benign_entries = 3_000;
        builder.attacker_entries = 3_000;
        let class = if with_attacker {
            MixClass::attack_classes()[3] // HLLA
        } else {
            MixClass::benign_classes()[3] // HHLL
        };
        builder.build(class, 0, 77)
    }

    #[test]
    fn benign_mix_evaluation_produces_sane_metrics() {
        let config = test_config(MechanismKind::None, 1024, false);
        let mix = test_mix(false);
        let mut evaluator = Evaluator::new(config);
        let eval = evaluator.evaluate(&mix);
        assert!(
            eval.weighted_speedup > 0.5 && eval.weighted_speedup <= 4.2,
            "weighted speedup {}",
            eval.weighted_speedup
        );
        assert!(
            eval.max_slowdown >= 1.0 || eval.max_slowdown > 0.8,
            "max slowdown {}",
            eval.max_slowdown
        );
        assert_eq!(eval.benign_perfs.len(), 4);
        assert!(eval.energy_nj() > 0.0);
        // The alone cache is reused across evaluations.
        assert!(!evaluator.alone_cache().is_empty());
        let cached = evaluator.alone_cache().len();
        let _ = evaluator.evaluate(&mix);
        assert_eq!(evaluator.alone_cache().len(), cached);
    }

    #[test]
    fn breakhammer_improves_attacked_mix_and_reduces_actions() {
        let without_cfg = test_config(MechanismKind::Graphene, 128, false);
        let mut with_cfg = without_cfg.clone();
        with_cfg.breakhammer = true;

        let mix = test_mix(true);
        let evals = evaluate_under_configs(&mix, &[without_cfg, with_cfg]);
        let without = &evals[0];
        let with = &evals[1];
        assert!(
            with.weighted_speedup > without.weighted_speedup,
            "BreakHammer must improve benign weighted speedup ({:.3} vs {:.3})",
            with.weighted_speedup,
            without.weighted_speedup
        );
        assert!(with.preventive_actions() < without.preventive_actions());
        assert!(with.result.ever_suspect[3]);
        assert_eq!(with.result.bitflips, 0);
        assert_eq!(without.result.bitflips, 0);
        // Both runs used the same alone baselines, so normalised comparisons
        // are exact.
        assert_eq!(with.benign_perfs.len(), without.benign_perfs.len());
    }

    #[test]
    #[should_panic(expected = "mix has")]
    fn core_count_mismatch_is_rejected() {
        let mut config = test_config(MechanismKind::None, 1024, false);
        config.cores = 2;
        config.memctrl.num_threads = 2;
        let mix = test_mix(false);
        let mut evaluator = Evaluator::new(config);
        let _ = evaluator.evaluate(&mix);
    }
}
