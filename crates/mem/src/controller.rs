//! The memory controller: request queues, FR-FCFS+Cap scheduling, refresh
//! management, RowHammer-mitigation integration and preventive-action
//! execution, and BreakHammer hooks.
//!
//! The controller is ticked once per DRAM command-clock cycle by the system
//! simulator and issues at most one DRAM command per tick (one command bus).
//! Scheduling priority within a tick is
//!
//! 1. periodic refresh that has become due,
//! 2. pending RowHammer-preventive work requested by the mitigation
//!    mechanism (victim refreshes, AQUA migrations, RFM commands, Hydra
//!    table accesses),
//! 3. demand requests, scheduled FR-FCFS with a cap of `frfcfs_cap` on
//!    column-over-row reordering (Table 1), with write draining driven by
//!    queue watermarks.
//!
//! Every *demand* row activation is reported to the attached mitigation
//! mechanism (whose trigger algorithm may request preventive actions) and to
//! BreakHammer (which attributes activations to hardware threads and observes
//! the preventive actions).

use crate::config::MemControllerConfig;
use crate::latency::LatencyHistogram;
use crate::request::{MemRequest, MemResponse};
use bh_core::BreakHammer;
use bh_dram::{
    AccessKind, BankAddr, CommandKind, Cycle, DramChannel, DramCommand, DramLocation, ThreadId,
};
use bh_mitigation::{ActionSink, ActionView, ActivationEvent, TriggerMechanism};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters describing the controller's activity.
// bh-exhaustive: `accumulate` destructures every field; bh_analyze rule X1
// rejects any `..` at a `ControllerStats { .. }` use site.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Demand reads completed.
    pub reads_served: u64,
    /// Writebacks completed.
    pub writes_served: u64,
    /// Demand requests that hit an open row.
    pub row_hits: u64,
    /// Demand requests that found their bank closed.
    pub row_misses: u64,
    /// Demand requests that had to close another row first.
    pub row_conflicts: u64,
    /// Row activations performed for demand requests.
    pub demand_activations: u64,
    /// Requests rejected because a queue was full.
    pub enqueue_rejections: u64,
    /// Preventive victim-refresh actions performed (PARA/Graphene/Hydra/TWiCe).
    pub preventive_refresh_actions: u64,
    /// Individual victim rows refreshed.
    pub victim_rows_refreshed: u64,
    /// AQUA row migrations performed.
    pub migrations: u64,
    /// RFM commands requested (RFM and PRAC mechanisms).
    pub rfm_actions: u64,
    /// Hydra tracking-table accesses performed.
    pub table_accesses: u64,
    /// Periodic all-bank refreshes issued.
    pub periodic_refreshes: u64,
}

impl ControllerStats {
    /// Total RowHammer-preventive actions performed (the quantity plotted in
    /// Fig. 10). Periodic refreshes are not preventive actions.
    pub fn preventive_actions_total(&self) -> u64 {
        self.preventive_refresh_actions + self.migrations + self.rfm_actions + self.table_accesses
    }

    /// Adds another controller's counters into this one (used by
    /// multi-channel systems to aggregate per-channel statistics).
    pub fn accumulate(&mut self, other: &ControllerStats) {
        // Exhaustive destructuring (no `..`): adding a stat field without
        // aggregating it here is a compile error, not a silent zero in
        // multi-channel results.
        let ControllerStats {
            reads_served,
            writes_served,
            row_hits,
            row_misses,
            row_conflicts,
            demand_activations,
            enqueue_rejections,
            preventive_refresh_actions,
            victim_rows_refreshed,
            migrations,
            rfm_actions,
            table_accesses,
            periodic_refreshes,
        } = other;
        self.reads_served += reads_served;
        self.writes_served += writes_served;
        self.row_hits += row_hits;
        self.row_misses += row_misses;
        self.row_conflicts += row_conflicts;
        self.demand_activations += demand_activations;
        self.enqueue_rejections += enqueue_rejections;
        self.preventive_refresh_actions += preventive_refresh_actions;
        self.victim_rows_refreshed += victim_rows_refreshed;
        self.migrations += migrations;
        self.rfm_actions += rfm_actions;
        self.table_accesses += table_accesses;
        self.periodic_refreshes += periodic_refreshes;
    }
}

/// One BreakHammer-observable event of a controller tick, recorded by
/// [`BhSink::Record`] for deferred replay. The channel is implicit: each
/// channel records into its own buffer, and the multi-channel merge replays
/// buffers in (cycle, channel-index) order — the order the serial schedule
/// reports the same events in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BhEvent {
    /// DRAM cycle at which the event occurred.
    pub cycle: Cycle,
    /// What happened.
    pub kind: BhEventKind,
}

/// The kind of a recorded [`BhEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BhEventKind {
    /// A demand row activation by `ThreadId` (BreakHammer's per-thread
    /// activation attribution, §5 of the paper).
    Activation(ThreadId),
    /// A preventive action requested by this channel's mitigation mechanism
    /// (BreakHammer's score attribution input).
    PreventiveAction,
}

/// Destination for the BreakHammer-observable events of one controller tick.
///
/// Serial stepping passes the live shared observer ([`BhSink::Live`]);
/// epoch-parallel stepping runs each channel on its own thread where the
/// shared observer cannot be borrowed, so events are recorded per channel
/// ([`BhSink::Record`]) and replayed into the observer at the epoch merge.
/// The recorded stream preserves the exact per-tick event order (the
/// activation, then its preventive actions in sink order), so replay is
/// bit-identical to live observation.
#[derive(Debug)]
pub enum BhSink<'a> {
    /// BreakHammer is disabled; events are dropped.
    None,
    /// The live system-wide observer (serial stepping).
    Live(&'a mut BreakHammer),
    /// Record events for deferred replay (epoch-parallel stepping).
    Record(&'a mut Vec<BhEvent>),
}

impl BhSink<'_> {
    /// Reborrows the sink for a callee without consuming it.
    fn reborrow(&mut self) -> BhSink<'_> {
        match self {
            BhSink::None => BhSink::None,
            BhSink::Live(bh) => BhSink::Live(bh),
            BhSink::Record(buf) => BhSink::Record(buf),
        }
    }
}

/// Maximum consecutive ticks the head of the preventive queue may be
/// deferred in favour of pending demand row-hits — enough for several column
/// accesses (tCCD apart) to drain, small enough that a sustained hit stream
/// delays each preventive command by a bounded, security-irrelevant amount.
const PREVENTIVE_DEFER_TICKS: u32 = 32;

/// A queued demand request with its decoded DRAM coordinates.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    req: MemRequest,
    loc: DramLocation,
    /// Flat bank index of `loc.bank`, cached at enqueue time so the
    /// scheduler's per-tick scans do not re-derive it per entry.
    flat: usize,
    /// Bank-group index of `loc.bank`, cached alongside `flat`.
    group: usize,
    /// Whether the row hit/miss/conflict classification was already recorded.
    classified: bool,
}

/// The scan-relevant coordinates of a queue entry packed into one `u64`
/// (`row | flat << 32 | group << 40 | rank << 48`). The per-tick FR-FCFS
/// scan walks these dense keys (8 bytes/entry) instead of the ~80-byte
/// [`QueueEntry`] records — the full entry is only touched once a candidate
/// is selected. Kept in lockstep with its queue (same index order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScanKey(u64);

impl ScanKey {
    fn new(entry: &QueueEntry) -> ScanKey {
        debug_assert!(entry.loc.row < (1 << 32));
        debug_assert!(entry.flat < (1 << 8));
        debug_assert!(entry.group < (1 << 8));
        debug_assert!(entry.loc.bank.rank < (1 << 8));
        ScanKey(
            entry.loc.row as u64
                | (entry.flat as u64) << 32
                | (entry.group as u64) << 40
                | (entry.loc.bank.rank as u64) << 48,
        )
    }

    #[inline]
    fn row(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    #[inline]
    fn flat(self) -> usize {
        (self.0 >> 32 & 0xFF) as usize
    }

    #[inline]
    fn group(self) -> usize {
        (self.0 >> 40 & 0xFF) as usize
    }

    #[inline]
    fn rank(self) -> usize {
        (self.0 >> 48 & 0xFF) as usize
    }
}

/// What the scheduler decided to issue for a chosen demand request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServiceStep {
    /// The row is open: issue the column command and complete the request.
    Column,
    /// The bank is closed: activate the target row.
    Activate,
    /// Another row is open: precharge first.
    Precharge,
}

/// Per-tick cached *shared* (group/rank/column-bus) earliest-issue
/// components for one (bank group, rank) pair, by command kind. Every bank
/// of the pair shares these, and a bank's full ready cycle is this shared
/// component maxed with one bank-local load
/// ([`DramChannel::demand_ready_bank_component`]) — so the FR-FCFS scan
/// derives the scattered group/rank/bus maxes at most once per (pair, kind)
/// per tick, not once per bank. Slots are stamped and filled *lazily*, only
/// for the command kind an entry actually needs. The open row itself is
/// read straight off the bank state — it is a single array load, cheaper
/// than any cache in front of it.
#[derive(Debug, Clone, Copy, Default)]
struct SharedScanEntry {
    /// Tick stamps the corresponding `ready` slot is valid for, indexed by
    /// [`ReadyKind`].
    ready_stamp: [u64; 4],
    /// Shared earliest-issue components, indexed by [`ReadyKind`].
    ready: [Cycle; 4],
}

/// Index into [`SharedScanEntry::ready`]: the four demand command kinds the
/// scheduler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadyKind {
    Read = 0,
    Write = 1,
    Activate = 2,
    Precharge = 3,
}

impl ReadyKind {
    fn command(self) -> CommandKind {
        match self {
            ReadyKind::Read => CommandKind::Read,
            ReadyKind::Write => CommandKind::Write,
            ReadyKind::Activate => CommandKind::Activate,
            ReadyKind::Precharge => CommandKind::Precharge,
        }
    }
}

/// The earliest issue cycle of `kind` on bank `flat`: the tick-stamped
/// shared (group/rank/bus) component — derived lazily on the first entry of
/// the tick that needs this (group, kind) pair — maxed with the bank-local
/// load. A free function over the individual fields so the FR-FCFS scan can
/// fill the cache while it holds the key deque.
#[inline]
fn bank_ready_in(
    shared_scan: &mut [SharedScanEntry],
    channel: &DramChannel,
    stamp: u64,
    flat: usize,
    group: usize,
    rank: usize,
    kind: ReadyKind,
) -> Cycle {
    let slot = kind as usize;
    let entry = &mut shared_scan[group];
    if entry.ready_stamp[slot] != stamp {
        entry.ready_stamp[slot] = stamp;
        entry.ready[slot] = channel.demand_ready_shared_component(group, rank, kind.command());
    }
    entry.ready[slot].max(channel.demand_ready_bank_component(flat, kind.command()))
}

/// Result of one scheduling stage within a tick: either a command was issued,
/// or the stage reports the earliest future cycle at which it could act
/// ([`Cycle::MAX`] if never, absent external changes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TickOutcome {
    /// A DRAM command was issued; scheduling state changed.
    Issued,
    /// Nothing was issued; the stage cannot act before this cycle.
    Horizon(Cycle),
}

/// The memory controller for one channel.
///
/// BreakHammer is *not* owned by the controller: it is a memory-system-wide
/// observer shared by every channel's controller (see
/// [`MemorySystem`](crate::MemorySystem)), so the caller passes it into
/// [`MemoryController::tick`] by mutable reference.
pub struct MemoryController {
    config: MemControllerConfig,
    channel: DramChannel,
    mechanism: Box<dyn TriggerMechanism>,
    /// Index of this controller's channel in the memory system (0 on
    /// single-channel systems); reported to BreakHammer with every preventive
    /// action.
    channel_index: usize,
    read_queue: VecDeque<QueueEntry>,
    write_queue: VecDeque<QueueEntry>,
    /// Packed scan keys, index-aligned with `read_queue` / `write_queue`.
    read_keys: VecDeque<ScanKey>,
    write_keys: VecDeque<ScanKey>,
    responses: Vec<MemResponse>,
    preventive_queue: VecDeque<DramCommand>,
    next_refresh: Vec<Cycle>,
    /// Cached minimum of `next_refresh`: while `cycle` is below it, no rank
    /// is due and the refresh stage reduces to a single compare.
    next_refresh_min: Cycle,
    write_drain_mode: bool,
    /// Consecutive ticks the preventive-queue head has been deferred in
    /// favour of pending demand row-hits (bounded by
    /// [`PREVENTIVE_DEFER_TICKS`]).
    preventive_deferred_ticks: u32,
    /// Memoized [`MemoryController::next_event`] horizon: until this cycle,
    /// `tick` is known to be a pure no-op and early-returns instead of
    /// re-deriving scheduling state. Reset to 0 whenever the queues or the
    /// DRAM timing state change (enqueue or command issue).
    idle_until: Cycle,
    /// Cached [`TriggerMechanism::may_block`]: lets the scheduler skip the
    /// per-request blacklist query for the mechanisms that never block.
    mechanism_may_block: bool,
    /// Reusable scratch sink the mechanism pushes preventive actions into on
    /// every demand activation (cleared and drained by
    /// [`MemoryController::on_demand_activation`]; never allocates in the
    /// steady state).
    sink: ActionSink,
    /// Per-(bank group, rank) shared scheduling view for the current tick
    /// (see [`SharedScanEntry`]; `scan_stamp` is bumped once per
    /// [`MemoryController::tick`], and no command issues between the two
    /// queue scans of a tick, so the cache stays coherent for the whole
    /// tick). Indexed by the global group index `rank * bank_groups +
    /// bank_group` (the same index [`ScanKey::group`] carries).
    shared_scan: Vec<SharedScanEntry>,
    scan_stamp: u64,
    hit_streak: Vec<u32>,
    stats: ControllerStats,
    per_thread_latency: Vec<LatencyHistogram>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("mechanism", &self.mechanism.name())
            .field("read_queue", &self.read_queue.len())
            .field("write_queue", &self.write_queue.len())
            .field("preventive_queue", &self.preventive_queue.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemoryController {
    /// Creates a controller driving `channel`, protected by `mechanism`.
    ///
    /// To attach BreakHammer, pass it to [`MemoryController::tick`] (it is
    /// shared across channels and therefore owned by the caller).
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(
        config: MemControllerConfig,
        channel: DramChannel,
        mechanism: Box<dyn TriggerMechanism>,
    ) -> Self {
        config.validate().expect("invalid memory controller configuration");
        // The packed 8-byte scan keys give flat-bank/group/rank 8 bits each
        // and the row 32; reject out-of-range geometries up front instead of
        // silently truncating in release builds.
        let geometry = channel.geometry();
        assert!(
            geometry.banks_per_channel() <= 1 << 8,
            "scan keys support at most 256 banks per channel"
        );
        assert!(geometry.rows_per_bank <= 1 << 32, "scan keys support at most 2^32 rows per bank");
        let ranks = channel.geometry().ranks;
        let banks = channel.geometry().banks_per_channel();
        let groups_total = ranks * channel.geometry().bank_groups;
        let t_refi = channel.timing().t_refi;
        let num_threads = config.num_threads;
        let mechanism_may_block = mechanism.may_block();
        MemoryController {
            config,
            channel,
            mechanism,
            channel_index: 0,
            read_queue: VecDeque::new(),
            write_queue: VecDeque::new(),
            read_keys: VecDeque::new(),
            write_keys: VecDeque::new(),
            responses: Vec::new(),
            preventive_queue: VecDeque::new(),
            next_refresh: (0..ranks)
                .map(|r| t_refi + r as u64 * (t_refi / ranks.max(1) as u64))
                .collect(),
            next_refresh_min: t_refi,
            write_drain_mode: false,
            preventive_deferred_ticks: 0,
            idle_until: 0,
            mechanism_may_block,
            sink: ActionSink::default(),
            shared_scan: vec![SharedScanEntry::default(); groups_total],
            scan_stamp: 0,
            hit_streak: vec![0; banks],
            stats: ControllerStats::default(),
            per_thread_latency: (0..num_threads).map(|_| LatencyHistogram::new()).collect(),
        }
    }

    /// The same controller tagged with its channel index in a multi-channel
    /// memory system (reported to BreakHammer with every preventive action).
    pub fn with_channel_index(mut self, channel_index: usize) -> Self {
        self.channel_index = channel_index;
        self
    }

    /// This controller's channel index in the memory system.
    pub fn channel_index(&self) -> usize {
        self.channel_index
    }

    /// The controller configuration.
    pub fn config(&self) -> &MemControllerConfig {
        &self.config
    }

    /// The DRAM channel driven by this controller.
    pub fn channel(&self) -> &DramChannel {
        &self.channel
    }

    /// The attached mitigation mechanism.
    pub fn mechanism(&self) -> &dyn TriggerMechanism {
        self.mechanism.as_ref()
    }

    /// Controller statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Per-thread read-latency histogram.
    pub fn latency_of(&self, thread: ThreadId) -> &LatencyHistogram {
        &self.per_thread_latency[thread.index()]
    }

    /// Number of demand requests currently queued (reads + writes).
    pub fn queued_requests(&self) -> usize {
        self.read_queue.len() + self.write_queue.len()
    }

    /// Number of pending preventive DRAM commands.
    pub fn pending_preventive_commands(&self) -> usize {
        self.preventive_queue.len()
    }

    /// True if a request of the given kind can currently be accepted.
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read_queue.len() < self.config.read_queue_capacity,
            AccessKind::Write => self.write_queue.len() < self.config.write_queue_capacity,
        }
    }

    /// Enqueues a demand request.
    ///
    /// # Errors
    /// Returns the request back if the corresponding queue is full.
    pub fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        if !self.can_accept(req.kind) {
            self.stats.enqueue_rejections += 1;
            return Err(req);
        }
        let geometry = self.channel.geometry();
        let loc = self.config.mapping.decode(req.addr, geometry);
        let flat = geometry.flat_bank(loc.bank);
        let group = loc.bank.rank * geometry.bank_groups + loc.bank.bank_group;
        let entry = QueueEntry { req, loc, flat, group, classified: false };
        // A new request can only move the memoized no-op horizon *earlier*:
        // lower it to this entry's earliest issuable cycle (ignoring
        // scheduling masks, which can only delay further — undershooting the
        // horizon merely wastes a tick, overshooting would skip work).
        // Known nuance (pre-dating the memo's introduction in the
        // event-driven-kernel PR): if this entry is a row hit on the bank the
        // preventive head is waiting for, the ticks skipped until `ready_at`
        // do not advance the bounded-deferral counter, so the head can be
        // deferred up to that many wall-cycles beyond
        // `PREVENTIVE_DEFER_TICKS`. Both kernels share the memo, so they stay
        // bit-identical; the deferral remains bounded (ticking resumes at the
        // hit's ready cycle) and is security-neutral while the row is open.
        if self.idle_until > 0 {
            let kind = match self.channel.open_row_flat(flat) {
                Some(row) if row == loc.row => match req.kind {
                    AccessKind::Read => CommandKind::Read,
                    AccessKind::Write => CommandKind::Write,
                },
                Some(_) => CommandKind::Precharge,
                None => CommandKind::Activate,
            };
            self.idle_until = self.idle_until.min(self.channel.demand_ready_at_cached(
                flat,
                group,
                loc.bank.rank,
                kind,
            ));
        }
        match req.kind {
            AccessKind::Read => {
                debug_assert!(self.read_queue.back().is_none_or(|e| e.req.arrival <= req.arrival));
                self.read_queue.push_back(entry);
                self.read_keys.push_back(ScanKey::new(&entry));
            }
            AccessKind::Write => {
                debug_assert!(self.write_queue.back().is_none_or(|e| e.req.arrival <= req.arrival));
                self.write_queue.push_back(entry);
                self.write_keys.push_back(ScanKey::new(&entry));
            }
        }
        Ok(())
    }

    /// True if at least one response is waiting to be drained.
    pub fn has_responses(&self) -> bool {
        !self.responses.is_empty()
    }

    /// Removes and returns all responses generated so far.
    pub fn drain_responses(&mut self) -> Vec<MemResponse> {
        std::mem::take(&mut self.responses)
    }

    /// Moves all responses generated so far into `buf` (cleared first),
    /// recycling `buf`'s allocation as the controller's next response buffer
    /// — the allocation-free variant of [`MemoryController::drain_responses`]
    /// for callers that drain every cycle.
    pub fn drain_responses_into(&mut self, buf: &mut Vec<MemResponse>) {
        buf.clear();
        std::mem::swap(&mut self.responses, buf);
    }

    /// Appends all responses generated so far to `buf` (without clearing it),
    /// leaving this controller's response buffer empty but warm — used by the
    /// multi-channel [`MemorySystem`](crate::MemorySystem) to drain every
    /// channel into one merged buffer each step.
    pub fn append_responses_into(&mut self, buf: &mut Vec<MemResponse>) {
        buf.append(&mut self.responses);
    }

    /// Earliest cycle strictly after `now` at which [`MemoryController::tick`]
    /// could do anything beyond a pure no-op — issue a refresh, preventive or
    /// demand command, or advance the bounded preventive-deferral counter.
    ///
    /// The horizon is computed as a by-product of the most recent
    /// non-issuing [`MemoryController::tick`] (whose scheduling scan already
    /// derives, for every queued command, the earliest cycle its timing
    /// constraints are met), so this query is O(1). Immediately after a tick
    /// that issued a command — or an enqueue that could beat the memoized
    /// horizon — the horizon is unknown and `now + 1` is returned: the next
    /// tick re-derives it. Horizons may undershoot (waking early is only
    /// wasted work) but never overshoot: between `now` and the returned
    /// cycle, `tick` is guaranteed to leave all controller, DRAM and
    /// mitigation state untouched (BreakHammer's window rotations are driven
    /// separately by the simulation kernel).
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if self.idle_until > now {
            self.idle_until
        } else {
            now + 1
        }
    }

    /// Records `n` enqueue attempts rejected while their queue stayed full.
    ///
    /// The per-cycle kernel retries a rejected request once per cycle, and
    /// every failed retry counts as an enqueue rejection; the event-driven
    /// kernel skips those dead cycles and replays the counter here.
    pub fn absorb_enqueue_rejections(&mut self, n: u64) {
        self.stats.enqueue_rejections += n;
    }

    /// Advances the controller by one DRAM cycle, issuing at most one command.
    ///
    /// `breakhammer` is the shared memory-system-wide observer (or `None`
    /// when BreakHammer is disabled): demand activations and preventive
    /// actions performed during this tick are reported to it.
    pub fn tick(&mut self, cycle: Cycle, breakhammer: Option<&mut BreakHammer>) {
        match breakhammer {
            Some(bh) => self.tick_sink(cycle, BhSink::Live(bh)),
            None => self.tick_sink(cycle, BhSink::None),
        }
    }

    /// [`MemoryController::tick`] with an explicit BreakHammer event sink:
    /// epoch-parallel stepping passes [`BhSink::Record`] so a channel can
    /// advance without borrowing the shared observer (the recorded events
    /// replay at the epoch merge, in the order serial stepping would have
    /// reported them).
    pub fn tick_sink(&mut self, cycle: Cycle, mut bh_sink: BhSink<'_>) {
        if let BhSink::Live(bh) = &mut bh_sink {
            bh.advance_to(cycle);
        }
        // Fast path: a previous tick proved nothing can happen before
        // `idle_until` and nothing has changed since, so this tick is a pure
        // no-op (the write-drain mode and all scheduling decisions depend
        // only on state that invalidates the memo when it changes).
        if cycle < self.idle_until {
            return;
        }
        self.scan_stamp += 1;
        let mut horizon = Cycle::MAX;
        self.update_write_drain_mode();
        match self.try_refresh(cycle) {
            TickOutcome::Issued => {
                self.idle_until = 0;
                return;
            }
            TickOutcome::Horizon(h) => horizon = horizon.min(h),
        }
        match self.try_preventive(cycle) {
            TickOutcome::Issued => {
                self.idle_until = 0;
                return;
            }
            TickOutcome::Horizon(h) => horizon = horizon.min(h),
        }
        let refresh_pending = self.refresh_pending_ranks(cycle);
        let preventive_bank =
            self.preventive_queue.front().map(|c| self.channel.geometry().flat_bank(c.bank));
        let first_writes = self.write_drain_mode && !self.write_queue.is_empty();
        let order = if first_writes { [true, false] } else { [false, true] };
        for use_writes in order {
            // An empty queue contributes neither a candidate nor a horizon.
            if if use_writes { self.write_keys.is_empty() } else { self.read_keys.is_empty() } {
                continue;
            }
            let (candidate, queue_horizon) =
                self.scan_queue(use_writes, cycle, refresh_pending, preventive_bank);
            if let Some((idx, step)) = candidate {
                self.service(use_writes, idx, step, cycle, bh_sink.reborrow());
                // A command was issued: timing and queue state changed, so
                // the next tick must re-derive its decisions from scratch.
                self.idle_until = 0;
                return;
            }
            horizon = horizon.min(queue_horizon);
        }
        // Nothing could issue: memoize the horizon until which every tick is
        // a pure no-op.
        self.idle_until = horizon.max(cycle + 1);
    }

    fn update_write_drain_mode(&mut self) {
        if self.write_drain_mode {
            if self.write_queue.len() <= self.config.write_drain_low {
                self.write_drain_mode = false;
            }
        } else if self.write_queue.len() >= self.config.write_drain_high
            || (self.read_queue.is_empty() && !self.write_queue.is_empty())
        {
            self.write_drain_mode = true;
        }
    }

    /// Bitmask of ranks whose periodic refresh is overdue.
    fn refresh_pending_ranks(&self, cycle: Cycle) -> u64 {
        if cycle < self.next_refresh_min {
            // No rank is due (the common tick): skip the per-rank walk.
            return 0;
        }
        let mut mask = 0u64;
        for (rank, deadline) in self.next_refresh.iter().enumerate() {
            if cycle >= *deadline {
                mask |= 1 << rank;
            }
        }
        mask
    }

    /// Tries to make progress on a due periodic refresh; otherwise reports
    /// the earliest cycle the refresh machinery could next act (for a rank
    /// that is not yet due, its deadline).
    fn try_refresh(&mut self, cycle: Cycle) -> TickOutcome {
        if cycle < self.next_refresh_min {
            // No rank is due (the common tick): the machinery next acts at
            // the earliest deadline, exactly what the per-rank walk below
            // would report.
            return TickOutcome::Horizon(self.next_refresh_min);
        }
        let ranks = self.channel.geometry().ranks;
        let mut horizon = Cycle::MAX;
        for rank in 0..ranks {
            let deadline = self.next_refresh[rank];
            if cycle < deadline {
                horizon = horizon.min(deadline);
                continue;
            }
            if self.channel.all_banks_closed(rank) {
                let cmd = DramCommand::refresh(rank);
                if self.channel.can_issue(&cmd, cycle) {
                    self.channel.issue_prechecked(&cmd, cycle);
                    self.next_refresh[rank] += self.channel.timing().t_refi;
                    self.next_refresh_min = self.next_refresh.iter().copied().min().unwrap_or(0);
                    self.stats.periodic_refreshes += 1;
                    return TickOutcome::Issued;
                }
                horizon = horizon.min(self.channel.earliest_issue(&cmd));
            } else {
                for flat in self.channel.geometry().rank_flat_range(rank) {
                    if self.channel.open_row_flat(flat).is_some() {
                        let bank = self.channel.geometry().bank_from_flat(flat);
                        let pre = DramCommand::precharge(bank);
                        if self.channel.can_issue(&pre, cycle) {
                            self.channel.issue_prechecked(&pre, cycle);
                            return TickOutcome::Issued;
                        }
                        horizon = horizon.min(self.channel.earliest_issue(&pre));
                    }
                }
            }
        }
        TickOutcome::Horizon(horizon)
    }

    /// Tries to issue the next pending preventive command (or a command that
    /// prepares the bank for it); otherwise reports when it could next act.
    fn try_preventive(&mut self, cycle: Cycle) -> TickOutcome {
        let Some(head) = self.preventive_queue.front().copied() else {
            return TickOutcome::Horizon(Cycle::MAX);
        };
        let open = self.channel.open_row(head.bank);
        let cmd = match head.kind {
            CommandKind::VictimRefresh | CommandKind::RefreshManagement => match open {
                Some(_) => DramCommand::precharge(head.bank),
                None => head,
            },
            CommandKind::Read | CommandKind::Write => match open {
                Some(row) if row == head.row => head,
                Some(_) => DramCommand::precharge(head.bank),
                None => DramCommand::activate(head.bank, head.row),
            },
            _ => head,
        };
        // Forward-progress rule: don't close a row that still has a pending
        // demand row-hit. Without it, a mechanism that triggers a same-bank
        // preventive refresh on (almost) every activation — PARA's p
        // saturates to 1 at very low N_RH — precharges the row a demand
        // request just opened, re-activating it forever without ever serving
        // the column access (a livelock, not the paper's slowdown). Letting
        // column accesses drain first is security-neutral while it lasts
        // (disturbance only accrues on activations, and none can occur in
        // this bank while its row stays open), but the deferral must be
        // *bounded*: the preventive queue is channel-wide, so a sustained
        // hit stream to one open row would otherwise also starve every
        // other bank's queued refreshes behind the head.
        if cmd.kind == CommandKind::Precharge {
            if let Some(row) = open {
                if self.demand_hit_pending(head.bank, row)
                    && self.preventive_deferred_ticks < PREVENTIVE_DEFER_TICKS
                {
                    self.preventive_deferred_ticks += 1;
                    // The deferral counter advances every tick: no cycle may
                    // be skipped while deferring.
                    return TickOutcome::Horizon(cycle + 1);
                }
            }
        }
        if !self.channel.can_issue(&cmd, cycle) {
            return TickOutcome::Horizon(self.channel.earliest_issue(&cmd));
        }
        self.preventive_deferred_ticks = 0;
        self.channel.issue_prechecked(&cmd, cycle);
        if cmd == head {
            self.preventive_queue.pop_front();
        }
        TickOutcome::Issued
    }

    /// True if some queued demand request is a row hit on `bank`'s open
    /// `row` (and could therefore be lost by precharging the bank now).
    fn demand_hit_pending(&self, bank: BankAddr, row: usize) -> bool {
        let flat = self.channel.geometry().flat_bank(bank);
        self.read_keys
            .iter()
            .chain(self.write_keys.iter())
            .any(|k| k.flat() == flat && k.row() == row)
    }

    /// One scan over the chosen queue: finds the next request to service —
    /// the oldest row-buffer hit whose bank is still under the FR-FCFS
    /// reordering cap, falling back to the oldest schedulable request (FCFS)
    /// — and, as a by-product, the earliest future cycle at which any entry
    /// of this queue could become issuable (the demand contribution to the
    /// controller's no-op horizon).
    ///
    /// The queue is arrival-ordered (enqueue cycles are monotone and removal
    /// preserves order; `try_enqueue` debug-asserts this), which turns the
    /// oldest-first selection into a prefix scan with two early exits:
    ///
    /// * the first schedulable capped row hit is *the* FR-FCFS winner — no
    ///   later entry can be older, and hits pre-empt everything else — so the
    ///   scan stops there (the common case under a row-hit stream costs one
    ///   entry, not the whole queue);
    /// * once a fallback candidate is known, only capped row hits can still
    ///   change the outcome, so other entries skip their timing checks — and
    ///   the horizon is no longer tracked, because the caller discards it
    ///   whenever a command issues.
    ///
    /// Entries are pre-filtered by rank-refresh masking, the preventive-head
    /// bank reservation and BlockHammer blacklists; filtered entries
    /// contribute no horizon of their own because the event that unblocks
    /// them (refresh issued, preventive head popped, an activation elsewhere)
    /// invalidates the memoized horizon anyway.
    fn scan_queue(
        &mut self,
        use_writes: bool,
        cycle: Cycle,
        refresh_pending: u64,
        preventive_bank: Option<usize>,
    ) -> (Option<(usize, ServiceStep)>, Cycle) {
        // Disjoint field borrows: the key walk holds the key deque while the
        // bank-view cache is filled lazily — destructuring lets the borrow
        // checker see they are different fields (and the chained-slice
        // iterator below replaces per-index `VecDeque` wrap arithmetic).
        let Self {
            read_keys,
            write_keys,
            read_queue,
            write_queue,
            shared_scan,
            channel,
            hit_streak,
            config,
            next_refresh,
            mechanism,
            mechanism_may_block,
            scan_stamp,
            ..
        } = self;
        let keys = if use_writes { write_keys } else { read_keys };
        let stamp = *scan_stamp;
        let cap = config.frfcfs_cap;
        // Sentinel form of the preventive-head bank reservation: `usize::MAX`
        // never equals a flat bank index, so the per-entry check is one
        // compare instead of an `Option` match.
        let preventive_flat = preventive_bank.unwrap_or(usize::MAX);
        // The oldest schedulable request of any kind (the FCFS fallback).
        let mut best_any: Option<(usize, ServiceStep)> = None;
        let mut horizon = Cycle::MAX;
        let refresh_any = refresh_pending != 0;
        let ready_col = if use_writes { ReadyKind::Write } else { ReadyKind::Read };
        let mut tail_from = keys.len();
        // Duplicate-coordinate skip: a queue entry with the *same packed key*
        // (same bank, row, group, rank) as one already classified
        // not-schedulable this tick reaches the identical decision — same
        // step, same ready cycle, same filters, same horizon contribution —
        // so it is skipped outright. Two slots cover the common pattern (an
        // attacker alternating between two aggressor rows fills the queue
        // with duplicates of two keys).
        let mut dup_memo = [ScanKey(u64::MAX), ScanKey(u64::MAX)];
        let mut dup_next = 0usize;
        // Phase 1 — until the FCFS fallback candidate is known: classify
        // every entry, derive its ready cycle, accumulate the horizon, and
        // early-exit on the first schedulable capped row hit.
        for (idx, &key) in keys.iter().enumerate() {
            if key == dup_memo[0] || key == dup_memo[1] {
                continue;
            }
            let flat = key.flat();
            if refresh_any && refresh_pending & (1 << key.rank()) != 0 {
                continue;
            }
            let step = match channel.open_row_flat(flat) {
                None => ServiceStep::Activate,
                Some(row) if row == key.row() => ServiceStep::Column,
                Some(_) => ServiceStep::Precharge,
            };
            // A bank the preventive head is waiting on accepts no new row
            // cycles, but pending hits on its open row may still drain (the
            // counterpart of the forward-progress rule in `try_preventive`).
            if preventive_flat == flat && step != ServiceStep::Column {
                continue;
            }
            let capped_hit = step == ServiceStep::Column && hit_streak[flat] < cap;
            // Queue entries are decoded from in-range addresses and their
            // step matches the bank state by construction, so only the
            // timing constraints (and BlockHammer blacklists) gate issue.
            let ready_kind = match step {
                ServiceStep::Column => ready_col,
                ServiceStep::Activate => ReadyKind::Activate,
                ServiceStep::Precharge => ReadyKind::Precharge,
            };
            let mut ready_at = bank_ready_in(
                shared_scan,
                channel,
                stamp,
                flat,
                key.group(),
                key.rank(),
                ready_kind,
            );
            if step == ServiceStep::Activate && *mechanism_may_block {
                // BlockHammer: rows whose activation is blocked cannot be
                // opened before their delay expires. (Rare enough that
                // touching the full entry for its row address is fine.)
                let queue = if use_writes { &write_queue } else { &read_queue };
                ready_at = ready_at.max(mechanism.blocked_until(queue[idx].loc.row_addr(), cycle));
            }
            if cycle < ready_at {
                // Not issuable yet: contributes to the horizon unless the
                // rank's refresh will interpose first (the refresh horizon
                // covers that case). Later same-key entries skip via the
                // duplicate memo (their horizon contribution would be the
                // same value, so the minimum is unaffected).
                if ready_at < next_refresh[key.rank()] {
                    horizon = horizon.min(ready_at);
                }
                dup_memo[dup_next] = key;
                dup_next ^= 1;
                continue;
            }
            if capped_hit {
                // Oldest capped row hit: nothing later can pre-empt it.
                return (Some((idx, ServiceStep::Column)), horizon);
            }
            best_any = Some((idx, step));
            tail_from = idx + 1;
            break;
        }
        // Phase 2 — a fallback candidate exists: only an older capped row
        // hit can still change the outcome, so the remaining entries reduce
        // to a row compare against their bank's open row (no horizon
        // bookkeeping, no ready derivation for non-hits; the preventive-head
        // reservation never filters hits, and the caller discards the
        // horizon whenever a command issues).
        for (off, &key) in keys.iter().skip(tail_from).enumerate() {
            if key == dup_memo[0] || key == dup_memo[1] {
                // Same full coordinates as an entry already classified
                // not-schedulable this tick (possibly in phase 1).
                continue;
            }
            let flat = key.flat();
            if refresh_any && refresh_pending & (1 << key.rank()) != 0 {
                continue;
            }
            if channel.open_row_flat(flat) != Some(key.row()) || hit_streak[flat] >= cap {
                continue;
            }
            let ready_at = bank_ready_in(
                shared_scan,
                channel,
                stamp,
                flat,
                key.group(),
                key.rank(),
                ready_col,
            );
            if cycle >= ready_at {
                // Oldest capped row hit: nothing later can pre-empt it.
                return (Some((tail_from + off, ServiceStep::Column)), horizon);
            }
            dup_memo[dup_next] = key;
            dup_next ^= 1;
        }
        (best_any, horizon)
    }

    fn command_for(&self, entry: &QueueEntry, step: ServiceStep, use_writes: bool) -> DramCommand {
        match step {
            ServiceStep::Column => {
                if use_writes {
                    DramCommand::write(entry.loc)
                } else {
                    DramCommand::read(entry.loc)
                }
            }
            ServiceStep::Activate => DramCommand::activate(entry.loc.bank, entry.loc.row),
            ServiceStep::Precharge => DramCommand::precharge(entry.loc.bank),
        }
    }

    /// Issues the chosen command and updates queues, statistics and the
    /// mitigation/BreakHammer hooks.
    fn service(
        &mut self,
        use_writes: bool,
        idx: usize,
        step: ServiceStep,
        cycle: Cycle,
        bh_sink: BhSink<'_>,
    ) {
        let entry = if use_writes { self.write_queue[idx] } else { self.read_queue[idx] };
        let flat = entry.flat;
        let cmd = self.command_for(&entry, step, use_writes);
        let outcome = self.channel.issue_prechecked(&cmd, cycle);

        match step {
            ServiceStep::Column => {
                self.hit_streak[flat] = self.hit_streak[flat].saturating_add(1);
                if !entry.classified {
                    self.stats.row_hits += 1;
                }
                let completed_at = outcome.data_ready_at.unwrap_or(cycle);
                let latency = completed_at.saturating_sub(entry.req.arrival);
                if entry.req.kind == AccessKind::Read {
                    self.stats.reads_served += 1;
                    let t = entry.req.thread.index();
                    if t < self.per_thread_latency.len() {
                        self.per_thread_latency[t].record(latency);
                    }
                } else {
                    self.stats.writes_served += 1;
                }
                self.responses.push(MemResponse {
                    id: entry.req.id,
                    thread: entry.req.thread,
                    kind: entry.req.kind,
                    completed_at,
                    latency,
                });
                if use_writes {
                    self.write_queue.remove(idx);
                    self.write_keys.remove(idx);
                } else {
                    // `remove` shifts the shorter side; the serviced entry is
                    // almost always at or near the front (oldest-first), so
                    // this is O(1)-ish in practice.
                    self.read_queue.remove(idx);
                    self.read_keys.remove(idx);
                }
            }
            ServiceStep::Precharge => {
                self.hit_streak[flat] = 0;
                if !self.mark_classified(use_writes, idx) {
                    self.stats.row_conflicts += 1;
                }
            }
            ServiceStep::Activate => {
                self.hit_streak[flat] = 0;
                if !self.mark_classified(use_writes, idx) {
                    self.stats.row_misses += 1;
                }
                self.on_demand_activation(entry.loc, entry.req.thread, cycle, bh_sink);
            }
        }
    }

    /// Marks the queue entry as classified, returning the previous flag.
    fn mark_classified(&mut self, use_writes: bool, idx: usize) -> bool {
        let entry = if use_writes { &mut self.write_queue[idx] } else { &mut self.read_queue[idx] };
        let was = entry.classified;
        entry.classified = true;
        was
    }

    /// Reports a demand activation to the mitigation mechanism and
    /// BreakHammer, and queues any requested preventive actions.
    ///
    /// This is the simulator's per-activation hot path: the mechanism pushes
    /// its actions into the controller-owned scratch [`ActionSink`], which is
    /// cleared and drained here — no allocation occurs once the sink and the
    /// preventive queue are warm.
    fn on_demand_activation(
        &mut self,
        loc: DramLocation,
        thread: ThreadId,
        cycle: Cycle,
        mut bh_sink: BhSink<'_>,
    ) {
        self.stats.demand_activations += 1;
        match &mut bh_sink {
            BhSink::Live(bh) => bh.on_activation(thread, cycle),
            BhSink::Record(buf) => {
                buf.push(BhEvent { cycle, kind: BhEventKind::Activation(thread) })
            }
            BhSink::None => {}
        }
        let event = ActivationEvent { row: loc.row_addr(), thread, cycle };
        // Move the sink out so its borrow does not alias `self` while the
        // drained actions are expanded (`take` leaves an empty, non-allocated
        // sink behind and the buffers come right back).
        let mut sink = std::mem::take(&mut self.sink);
        sink.clear();
        self.mechanism.on_activation(&event, &mut sink);
        for action in sink.iter() {
            self.expand_action(action);
            match &mut bh_sink {
                BhSink::Live(bh) => bh.on_preventive_action_from(self.channel_index, cycle),
                BhSink::Record(buf) => {
                    buf.push(BhEvent { cycle, kind: BhEventKind::PreventiveAction });
                }
                BhSink::None => {}
            }
        }
        self.sink = sink;
    }

    /// Converts a preventive action into the DRAM command sequence that
    /// performs it and appends it to the preventive queue.
    fn expand_action(&mut self, action: ActionView<'_>) {
        match action {
            ActionView::RefreshRows(rows) => {
                self.stats.preventive_refresh_actions += 1;
                for row in rows {
                    self.stats.victim_rows_refreshed += 1;
                    self.preventive_queue.push_back(DramCommand::victim_refresh(*row));
                }
            }
            ActionView::MigrateRow { source, dest } => {
                self.stats.migrations += 1;
                let columns = self.channel.geometry().columns_per_row;
                // Moving the aggressor away ends its disturbance relationship
                // with the neighbouring victims; model that by restoring the
                // neighbours as part of the migration sequence (a negligible
                // 2-4 extra row cycles on top of the ~2x128 column transfers).
                for victim in self.channel.geometry().neighbors(source, 2) {
                    self.preventive_queue.push_back(DramCommand::victim_refresh(victim));
                }
                for column in 0..columns {
                    self.preventive_queue.push_back(DramCommand::read(DramLocation {
                        channel: 0,
                        bank: source.bank,
                        row: source.row,
                        column,
                    }));
                }
                for column in 0..columns {
                    self.preventive_queue.push_back(DramCommand::write(DramLocation {
                        channel: 0,
                        bank: dest.bank,
                        row: dest.row,
                        column,
                    }));
                }
            }
            ActionView::IssueRfm { bank } => {
                self.stats.rfm_actions += 1;
                self.preventive_queue.push_back(DramCommand::rfm(bank));
            }
            ActionView::TableAccess { row, write_back } => {
                self.stats.table_accesses += 1;
                self.preventive_queue.push_back(DramCommand::read(DramLocation {
                    channel: 0,
                    bank: row.bank,
                    row: row.row,
                    column: 0,
                }));
                if write_back {
                    self.preventive_queue.push_back(DramCommand::write(DramLocation {
                        channel: 0,
                        bank: row.bank,
                        row: row.row,
                        column: 0,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use bh_core::BreakHammerConfig;
    use bh_dram::{DramGeometry, PhysAddr, TimingParams};
    use bh_mitigation::MechanismKind;

    fn small_config() -> MemControllerConfig {
        let mut c = MemControllerConfig::paper_table1(4);
        c.read_queue_capacity = 16;
        c.write_queue_capacity = 16;
        c.write_drain_high = 12;
        c.write_drain_low = 4;
        c
    }

    fn controller(kind: MechanismKind, nrh: u64) -> MemoryController {
        let geometry = DramGeometry::tiny();
        let timing = TimingParams::fast_test();
        let mechanism = kind.build(&geometry, &timing, nrh, 1);
        let channel = DramChannel::with_rowhammer(geometry, timing, nrh);
        MemoryController::new(small_config(), channel, mechanism)
    }

    /// A controller plus the caller-owned BreakHammer instance that must be
    /// passed into every `tick` (BreakHammer is shared across channels, so
    /// the controller only borrows it).
    fn controller_with_bh(kind: MechanismKind, nrh: u64) -> (MemoryController, BreakHammer) {
        let geometry = DramGeometry::tiny();
        let timing = TimingParams::fast_test();
        let mechanism = kind.build(&geometry, &timing, nrh, 1);
        let attribution = mechanism.attribution();
        let channel = DramChannel::with_rowhammer(geometry, timing, nrh);
        let mut bh_cfg = BreakHammerConfig::fast_test(4, 16);
        bh_cfg.window_cycles = 200_000;
        let bh = BreakHammer::new(bh_cfg, attribution);
        (MemoryController::new(small_config(), channel, mechanism), bh)
    }

    /// Physical address of (bank 0, `row`, `column`) under the default MOP
    /// mapping of the tiny geometry.
    fn addr_of(ctrl: &MemoryController, row: usize, column: usize) -> PhysAddr {
        let loc = DramLocation {
            channel: 0,
            bank: bh_dram::BankAddr { rank: 0, bank_group: 0, bank: 0 },
            row,
            column,
        };
        AddressMapping::paper_default().encode(&loc, ctrl.channel().geometry())
    }

    fn run_until_responses(
        ctrl: &mut MemoryController,
        start: Cycle,
        expected: usize,
        max_cycles: u64,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut responses = Vec::new();
        let mut cycle = start;
        while responses.len() < expected && cycle < start + max_cycles {
            ctrl.tick(cycle, None);
            responses.extend(ctrl.drain_responses());
            cycle += 1;
        }
        (responses, cycle)
    }

    #[test]
    fn single_read_completes_with_reasonable_latency() {
        let mut ctrl = controller(MechanismKind::None, 1024);
        let addr = addr_of(&ctrl, 5, 0);
        ctrl.try_enqueue(MemRequest::read(1, ThreadId(0), addr, 0)).unwrap();
        let (responses, _) = run_until_responses(&mut ctrl, 0, 1, 10_000);
        assert_eq!(responses.len(), 1);
        let t = ctrl.channel().timing().clone();
        let min = t.t_rcd + t.read_latency();
        assert!(responses[0].latency >= min, "latency {} < {min}", responses[0].latency);
        assert_eq!(ctrl.stats().reads_served, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
        assert_eq!(ctrl.stats().demand_activations, 1);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let mut ctrl = controller(MechanismKind::None, 1024);
        // Read 1 opens row 5 (a row miss).
        ctrl.try_enqueue(MemRequest::read(1, ThreadId(0), addr_of(&ctrl, 5, 0), 0)).unwrap();
        let (_, end) = run_until_responses(&mut ctrl, 0, 1, 10_000);

        // Read 2 to another column of row 5: a row hit.
        ctrl.try_enqueue(MemRequest::read(2, ThreadId(0), addr_of(&ctrl, 5, 1), end)).unwrap();
        let (hit, end) = run_until_responses(&mut ctrl, end, 1, 10_000);
        assert_eq!(ctrl.stats().row_hits, 1);

        // Read 3 to a different row of the same bank: a row conflict.
        ctrl.try_enqueue(MemRequest::read(3, ThreadId(0), addr_of(&ctrl, 9, 0), end)).unwrap();
        let (conflict, _) = run_until_responses(&mut ctrl, end, 1, 10_000);
        assert_eq!(ctrl.stats().row_conflicts, 1);

        let hit_latency = hit[0].latency;
        let conflict_latency = conflict[0].latency;
        assert!(
            conflict_latency > hit_latency,
            "conflict {conflict_latency} should exceed hit {hit_latency}"
        );
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut ctrl = controller(MechanismKind::None, 1024);
        for i in 0..16u64 {
            ctrl.try_enqueue(MemRequest::read(i, ThreadId(0), PhysAddr(i * 64), 0)).unwrap();
        }
        assert!(!ctrl.can_accept(AccessKind::Read));
        let rejected = ctrl.try_enqueue(MemRequest::read(99, ThreadId(0), PhysAddr(0), 0));
        assert!(rejected.is_err());
        assert_eq!(ctrl.stats().enqueue_rejections, 1);
        assert!(ctrl.can_accept(AccessKind::Write));
    }

    #[test]
    fn periodic_refresh_is_issued() {
        let mut ctrl = controller(MechanismKind::None, 1024);
        let t_refi = ctrl.channel().timing().t_refi;
        for cycle in 0..(t_refi * 4) {
            ctrl.tick(cycle, None);
        }
        // Both ranks refresh roughly every tREFI.
        assert!(ctrl.stats().periodic_refreshes >= 4, "{}", ctrl.stats().periodic_refreshes);
    }

    #[test]
    fn writes_are_drained_and_complete() {
        let mut ctrl = controller(MechanismKind::None, 1024);
        for i in 0..14u64 {
            ctrl.try_enqueue(MemRequest::write(i, ThreadId(0), PhysAddr(i * 4096), 0)).unwrap();
        }
        let (responses, _) = run_until_responses(&mut ctrl, 0, 14, 100_000);
        assert_eq!(responses.len(), 14);
        assert_eq!(ctrl.stats().writes_served, 14);
    }

    /// Drives a classic double-sided hammering pattern (alternating reads to
    /// rows 50 and 52 of bank 0) for `rounds` iterations and returns the
    /// controller together with the cycle at which the run finished.
    fn double_sided_hammer(
        kind: MechanismKind,
        nrh: u64,
        rounds: u64,
    ) -> (MemoryController, Cycle) {
        let mut ctrl = controller(kind, nrh);
        let mut cycle = 0u64;
        let mut id = 0u64;
        for round in 0..rounds {
            for row in [50usize, 52] {
                let addr = addr_of(&ctrl, row, (round % 4) as usize);
                let req = MemRequest::read(id, ThreadId(0), addr, cycle);
                id += 1;
                // Retry enqueue until accepted.
                let mut r = ctrl.try_enqueue(req);
                while r.is_err() {
                    ctrl.tick(cycle, None);
                    cycle += 1;
                    let _ = ctrl.drain_responses();
                    r = ctrl.try_enqueue(req);
                }
            }
            for _ in 0..8 {
                ctrl.tick(cycle, None);
                cycle += 1;
            }
            let _ = ctrl.drain_responses();
        }
        // Drain everything left.
        while ctrl.queued_requests() > 0 || ctrl.pending_preventive_commands() > 0 {
            ctrl.tick(cycle, None);
            cycle += 1;
            let _ = ctrl.drain_responses();
            if cycle > 10_000_000 {
                panic!("hammer run did not drain");
            }
        }
        (ctrl, cycle)
    }

    #[test]
    fn graphene_hammering_causes_victim_refreshes_and_prevents_bitflips() {
        let nrh = 128;
        let (ctrl, _) = double_sided_hammer(MechanismKind::Graphene, nrh, 600);
        assert!(ctrl.stats().preventive_refresh_actions > 0, "Graphene must have triggered");
        assert!(ctrl.stats().victim_rows_refreshed > 0);
        // The security invariant: no row ever accumulated N_RH disturbance.
        let tracker = ctrl.channel().rowhammer().expect("tracker attached");
        assert_eq!(tracker.bitflip_count(), 0, "bitflips despite Graphene");
        assert!(tracker.max_disturbance() < nrh);
    }

    #[test]
    fn unprotected_hammering_does_cause_bitflips() {
        let (ctrl, _) = double_sided_hammer(MechanismKind::None, 128, 400);
        let tracker = ctrl.channel().rowhammer().expect("tracker attached");
        assert!(tracker.bitflip_count() > 0, "row 51 should have flipped without protection");
    }

    #[test]
    fn blockhammer_prevents_bitflips_by_slowing_the_hammering_pattern() {
        let nrh = 64;
        let (unprotected, baseline_cycles) = double_sided_hammer(MechanismKind::None, nrh, 300);
        assert!(unprotected.channel().rowhammer().unwrap().bitflip_count() > 0);

        let (protected, protected_cycles) =
            double_sided_hammer(MechanismKind::BlockHammer, nrh, 300);
        let tracker = protected.channel().rowhammer().unwrap();
        assert_eq!(tracker.bitflip_count(), 0, "BlockHammer must prevent bitflips");
        // BlockHammer prevents bitflips by delaying blacklisted rows, so the
        // same access pattern takes substantially longer to execute.
        assert!(
            protected_cycles > 2 * baseline_cycles,
            "BlockHammer run ({protected_cycles}) should be much slower than \
             the unprotected run ({baseline_cycles})"
        );
        // And it never issued extra DRAM commands to do so.
        assert_eq!(protected.stats().preventive_actions_total(), 0);
    }

    #[test]
    fn rfm_mechanism_issues_rfm_commands() {
        let mut ctrl = controller(MechanismKind::Rfm, 256);
        let mut cycle = 0u64;
        for i in 0..400u64 {
            // Row conflicts across many rows of the same bank force many
            // activations, which accumulate in the bank's RAA counter.
            let addr = addr_of(&ctrl, (i % 40) as usize, 0);
            let req = MemRequest::read(i, ThreadId(0), addr, cycle);
            let mut r = ctrl.try_enqueue(req);
            while r.is_err() {
                ctrl.tick(cycle, None);
                cycle += 1;
                let _ = ctrl.drain_responses();
                r = ctrl.try_enqueue(req);
            }
            for _ in 0..4 {
                ctrl.tick(cycle, None);
                cycle += 1;
            }
            let _ = ctrl.drain_responses();
        }
        for _ in 0..20_000 {
            ctrl.tick(cycle, None);
            cycle += 1;
        }
        assert!(ctrl.stats().rfm_actions > 0);
        assert!(ctrl.channel().stats().rfm_commands > 0);
    }

    /// PARA at `N_RH = 64` triggers a same-bank victim refresh on every
    /// activation (`p = 1`). A demand request must still complete (the
    /// forward-progress rule defers the refresh's precharge past the pending
    /// row-hit), and the deferral must be bounded: even under a sustained
    /// stream of row-hits to the open row, the queued preventive refreshes
    /// drain instead of being starved behind the head forever.
    #[test]
    fn preventive_work_neither_livelocks_demand_nor_starves_forever() {
        let mut ctrl = controller(MechanismKind::Para, 64);

        // One activation of row 50: PARA (p = 1) queues a neighbour refresh
        // in the same bank. The read must complete regardless.
        ctrl.try_enqueue(MemRequest::read(1, ThreadId(0), addr_of(&ctrl, 50, 0), 0)).unwrap();
        let (responses, mut cycle) = run_until_responses(&mut ctrl, 0, 1, 10_000);
        assert_eq!(responses.len(), 1, "the triggering read must not livelock");
        assert_eq!(ctrl.stats().demand_activations, 1, "no ACT/PRE churn");

        // Keep a row-hit pending at every single cycle while the refresh is
        // still queued; the bounded deferral must let the refresh drain
        // anyway (within the defer bound plus a couple of row cycles).
        let mut served = 0;
        for _ in 0..2_000 {
            if ctrl.pending_preventive_commands() == 0 {
                break;
            }
            // `cycle` is strictly increasing, so it doubles as a unique id.
            let _ = ctrl.try_enqueue(MemRequest::read(
                1_000 + cycle,
                ThreadId(0),
                addr_of(&ctrl, 50, served % 4),
                cycle,
            ));
            ctrl.tick(cycle, None);
            served += ctrl.drain_responses().len();
            cycle += 1;
        }
        assert_eq!(
            ctrl.pending_preventive_commands(),
            0,
            "queued preventive refreshes must not be starved by a sustained hit stream"
        );
        assert!(served > 0, "demand hits kept flowing while the refresh drained");
        assert_eq!(ctrl.stats().victim_rows_refreshed, 1);
    }

    #[test]
    fn breakhammer_throttles_the_hammering_thread() {
        let (mut ctrl, mut bh) = controller_with_bh(MechanismKind::Graphene, 64);
        let full_quota = bh.quota(ThreadId(0));
        let mut cycle = 0u64;
        let mut id = 0u64;
        // Thread 0 hammers; thread 1 does a light scan of distinct rows.
        for round in 0..1500u64 {
            let hammer_addr = addr_of(&ctrl, if round % 2 == 0 { 50 } else { 52 }, 0);
            let req = MemRequest::read(id, ThreadId(0), hammer_addr, cycle);
            id += 1;
            let mut r = ctrl.try_enqueue(req);
            while r.is_err() {
                ctrl.tick(cycle, Some(&mut bh));
                cycle += 1;
                let _ = ctrl.drain_responses();
                r = ctrl.try_enqueue(req);
            }
            if round % 10 == 0 {
                let benign = MemRequest::read(
                    id,
                    ThreadId(1),
                    addr_of(&ctrl, (round % 30) as usize, 1),
                    cycle,
                );
                id += 1;
                let _ = ctrl.try_enqueue(benign);
            }
            for _ in 0..6 {
                ctrl.tick(cycle, Some(&mut bh));
                cycle += 1;
            }
            let _ = ctrl.drain_responses();
        }
        assert!(bh.is_suspect(ThreadId(0)), "the hammering thread must be a suspect");
        assert!(bh.quota(ThreadId(0)) < full_quota);
        assert_eq!(bh.quota(ThreadId(1)), full_quota);
        assert!(bh.score(ThreadId(0)) > bh.score(ThreadId(1)));
    }

    #[test]
    fn aqua_migrations_are_expensive_but_execute() {
        let mut ctrl = controller(MechanismKind::Aqua, 64);
        let mut cycle = 0u64;
        for round in 0..200u64 {
            let row = if round % 2 == 0 { 50 } else { 52 };
            let req = MemRequest::read(round, ThreadId(0), addr_of(&ctrl, row, 0), cycle);
            let mut r = ctrl.try_enqueue(req);
            while r.is_err() {
                ctrl.tick(cycle, None);
                cycle += 1;
                let _ = ctrl.drain_responses();
                r = ctrl.try_enqueue(req);
            }
            for _ in 0..6 {
                ctrl.tick(cycle, None);
                cycle += 1;
            }
            let _ = ctrl.drain_responses();
        }
        for _ in 0..100_000 {
            ctrl.tick(cycle, None);
            cycle += 1;
        }
        assert!(ctrl.stats().migrations > 0);
        // Each migration transfers the whole row: reads and writes well beyond
        // the demand traffic alone.
        let expected_extra =
            ctrl.stats().migrations * ctrl.channel().geometry().columns_per_row as u64;
        assert!(ctrl.channel().stats().writes >= expected_extra);
        assert_eq!(ctrl.pending_preventive_commands(), 0, "preventive queue must drain");
    }

    #[test]
    fn hydra_table_accesses_generate_dram_traffic() {
        let mut ctrl = controller(MechanismKind::Hydra, 64);
        let mut cycle = 0u64;
        for round in 0..400u64 {
            let row = 50 + (round % 2) as usize * 2;
            let req = MemRequest::read(round, ThreadId(0), addr_of(&ctrl, row, 0), cycle);
            let mut r = ctrl.try_enqueue(req);
            while r.is_err() {
                ctrl.tick(cycle, None);
                cycle += 1;
                let _ = ctrl.drain_responses();
                r = ctrl.try_enqueue(req);
            }
            for _ in 0..6 {
                ctrl.tick(cycle, None);
                cycle += 1;
            }
            let _ = ctrl.drain_responses();
        }
        for _ in 0..20_000 {
            ctrl.tick(cycle, None);
            cycle += 1;
        }
        assert!(ctrl.stats().table_accesses > 0);
        assert!(ctrl.stats().preventive_actions_total() > 0);
    }

    #[test]
    fn latency_histogram_is_tracked_per_thread() {
        let mut ctrl = controller(MechanismKind::None, 1024);
        ctrl.try_enqueue(MemRequest::read(0, ThreadId(2), addr_of(&ctrl, 3, 0), 0)).unwrap();
        let _ = run_until_responses(&mut ctrl, 0, 1, 10_000);
        assert_eq!(ctrl.latency_of(ThreadId(2)).count(), 1);
        assert_eq!(ctrl.latency_of(ThreadId(0)).count(), 0);
    }
}
