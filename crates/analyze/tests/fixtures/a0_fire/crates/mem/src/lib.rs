//! A0 positive: malformed bh-analyze comments are findings themselves.
use std::collections::BTreeMap;

// bh-analyze: allow(D1)
pub fn missing_reason() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

// bh-analyze: allow(Z9) -- no such rule
pub fn unknown_rule() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

// bh-analyze: allow() -- empty list
pub fn empty_list() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
