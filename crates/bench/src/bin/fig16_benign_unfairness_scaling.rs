//! Figure 16: BreakHammer's impact on unfairness for all-benign workloads as
//! N_RH decreases — normalized to the same mechanism without BreakHammer.
//! Also reports the fraction of simulations in which a benign application was
//! identified as a suspect (§8.2 reports 18.7% across all N_RH values).

use bh_bench::{maybe_print_config, mean_of, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, fmt_pct, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms = MechanismKind::paper_mechanisms();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[false, true], /*attack=*/ false);

    let mut table = Table::new(["nrh", "mechanism", "normalized_unfairness"]);
    let mut misidentified = 0usize;
    let mut with_bh_runs = 0usize;
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            let with = select(&records, mech, nrh, true);
            let without = select(&records, mech, nrh, false);
            if with.is_empty() || without.is_empty() {
                continue;
            }
            misidentified += with.iter().filter(|r| r.benign_misidentified).count();
            with_bh_runs += with.len();
            table.push_row([
                nrh.to_string(),
                format!("{mech}+BH"),
                fmt3(mean_of(&with, |r| r.max_slowdown) / mean_of(&without, |r| r.max_slowdown)),
            ]);
        }
    }
    print_results("Figure 16: normalized unfairness on all-benign workloads vs. N_RH", &table);
    println!(
        "benign application identified as suspect in {} of the simulations (paper: 18.7% across all N_RH)",
        fmt_pct(misidentified as f64 / with_bh_runs.max(1) as f64)
    );
}
