//! Per-bank, per-bank-group and per-rank device state used by the timing
//! engine in [`crate::device`].
//!
//! Each structure keeps the earliest cycle at which the next command of a
//! given class may legally be issued to that scope. The device updates these
//! "next allowed" horizons as commands are issued; checking a candidate
//! command then reduces to taking the maximum over the relevant scopes.

use crate::command::CommandKind;
use crate::types::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowState {
    /// All rows are closed (the bank is precharged).
    Closed,
    /// `row` is open in the row buffer.
    Open {
        /// The currently open row.
        row: usize,
        /// Cycle at which the row was activated (used for row-open residency
        /// statistics and RowPress-style analyses).
        since: Cycle,
    },
}

impl RowState {
    /// The open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        match self {
            RowState::Open { row, .. } => Some(*row),
            RowState::Closed => None,
        }
    }
}

/// Timing and row-buffer state of a single DRAM bank.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankState {
    /// Current row-buffer state.
    pub row: RowState,
    /// Earliest cycle an ACT may be issued to this bank.
    pub next_act: Cycle,
    /// Earliest cycle a PRE may be issued to this bank.
    pub next_pre: Cycle,
    /// Earliest cycle a RD may be issued to this bank.
    pub next_rd: Cycle,
    /// Earliest cycle a WR may be issued to this bank.
    pub next_wr: Cycle,
    /// Number of activations this bank has seen (lifetime).
    pub activation_count: u64,
}

impl BankState {
    /// A freshly powered-up, precharged bank.
    pub fn new() -> Self {
        BankState {
            row: RowState::Closed,
            next_act: 0,
            next_pre: 0,
            next_rd: 0,
            next_wr: 0,
            activation_count: 0,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        self.row.open_row()
    }

    /// True if the bank is precharged (no open row).
    pub fn is_closed(&self) -> bool {
        matches!(self.row, RowState::Closed)
    }

    /// Earliest cycle at which this bank's *local* constraints allow a
    /// command of `kind` (rank/bank-group constraints are layered on top by
    /// the device). This is the per-bank "ready horizon" the event-driven
    /// scheduler uses to jump the clock instead of polling `can_issue` at
    /// every cycle.
    pub fn earliest(&self, kind: CommandKind) -> Cycle {
        match kind {
            CommandKind::Activate | CommandKind::VictimRefresh => self.next_act,
            CommandKind::Precharge | CommandKind::PrechargeAll => self.next_pre,
            CommandKind::Read => self.next_rd,
            CommandKind::Write => self.next_wr,
            // Refresh-class commands require the bank to be ACT-quiet.
            CommandKind::Refresh
            | CommandKind::RefreshSameBank
            | CommandKind::RefreshManagement => self.next_act,
        }
    }
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

/// Timing state shared by the banks of one bank group.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BankGroupState {
    /// Earliest ACT to any bank of this group (tRRD_L).
    pub next_act: Cycle,
    /// Earliest RD to any bank of this group (tCCD_L / tWTR_L).
    pub next_rd: Cycle,
    /// Earliest WR to any bank of this group (tCCD_L).
    pub next_wr: Cycle,
}

/// Timing state shared by all banks of one rank.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankState {
    /// Earliest ACT to any bank of this rank (tRRD_S, tFAW, tRFC, tRFM).
    pub next_act: Cycle,
    /// Earliest RD to any bank of this rank (tCCD_S / tWTR_S).
    pub next_rd: Cycle,
    /// Earliest WR to any bank of this rank (tCCD_S).
    pub next_wr: Cycle,
    /// Earliest REF/RFM to this rank.
    pub next_ref: Cycle,
    /// Issue cycles of the most recent activations (bounded by the FAW depth).
    pub act_times: VecDeque<Cycle>,
    /// Lifetime activation count for this rank.
    pub activation_count: u64,
    /// Cursor of the rolling per-rank periodic-refresh sweep (which row block
    /// the next REF will refresh).
    pub refresh_cursor: usize,
}

impl RankState {
    /// Records an activation for the four-activation-window (tFAW) check.
    pub fn record_activation(&mut self, cycle: Cycle, faw_depth: usize) {
        self.act_times.push_back(cycle);
        while self.act_times.len() > faw_depth {
            self.act_times.pop_front();
        }
        self.activation_count += 1;
    }

    /// Earliest cycle at which a new ACT satisfies the tFAW constraint.
    pub fn faw_earliest(&self, faw_depth: usize, t_faw: Cycle) -> Cycle {
        if self.act_times.len() < faw_depth {
            0
        } else {
            // The oldest of the last `faw_depth` activations bounds the next one.
            self.act_times[self.act_times.len() - faw_depth] + t_faw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_bank_is_closed_and_ready() {
        let b = BankState::new();
        assert!(b.is_closed());
        assert_eq!(b.open_row(), None);
        assert_eq!(b.next_act, 0);
        assert_eq!(b.activation_count, 0);
        assert_eq!(BankState::default().next_pre, 0);
    }

    #[test]
    fn row_state_open_row() {
        let open = RowState::Open { row: 12, since: 100 };
        assert_eq!(open.open_row(), Some(12));
        assert_eq!(RowState::Closed.open_row(), None);
    }

    #[test]
    fn faw_window_tracks_last_four_activations() {
        let mut r = RankState::default();
        assert_eq!(r.faw_earliest(4, 32), 0);
        for (i, c) in [10u64, 20, 30, 40].iter().enumerate() {
            r.record_activation(*c, 4);
            assert_eq!(r.activation_count, i as u64 + 1);
        }
        // With four ACTs recorded the next one must wait tFAW after the oldest.
        assert_eq!(r.faw_earliest(4, 32), 10 + 32);
        r.record_activation(50, 4);
        assert_eq!(r.act_times.len(), 4);
        assert_eq!(r.faw_earliest(4, 32), 20 + 32);
    }

    #[test]
    fn faw_with_fewer_activations_is_unconstrained() {
        let mut r = RankState::default();
        r.record_activation(5, 4);
        r.record_activation(6, 4);
        assert_eq!(r.faw_earliest(4, 32), 0);
    }
}
