//! Shared workload recipe for the cross-checking integration suites.
//!
//! The scheduler-differential, digest-snapshot and multichannel suites all
//! exercise *the same* canonical workload: four benign streaming-dominated
//! cores shrunk onto the test geometry, with the paper-default attacker on
//! core 3. Keeping the recipe in one place guarantees "the same workload"
//! stays the same across the suites — a divergence here would otherwise be
//! hunted in the simulator instead of the test setup.

#![allow(dead_code)] // each test binary uses the subset it needs

use breakhammer_suite::cpu::Trace;
use breakhammer_suite::sim::SystemConfig;
use breakhammer_suite::workloads::{
    AttackerProfile, BenignProfile, ComposedAttacker, TraceGenerator,
};

/// The canonical benign quartet: streaming-dominated profiles that rarely
/// trigger preventive actions at moderate N_RH (the paper's premise in
/// §8.1), with footprints shrunk to the test geometry. Traces are generated
/// for the configuration's geometry and address mapping, so multi-channel
/// configs spread them over every channel.
pub fn benign_traces(config: &SystemConfig, entries: usize, seed: u64) -> Vec<Trace> {
    let generator = TraceGenerator::new(config.geometry.clone(), config.memctrl.mapping);
    let profiles = ["libquantum", "fotonik3d", "xalancbmk", "povray"];
    profiles
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut p = BenignProfile::resolve(name).unwrap_or_else(|e| panic!("{e}"));
            p.footprint_rows = p.footprint_rows.min(2_000);
            p.hot_rows = p.hot_rows.min(16).max(if p.hot_row_fraction > 0.0 { 1 } else { 0 });
            generator.benign(&p, entries, seed + i as u64)
        })
        .collect()
}

/// The benign quartet with `attacker` replacing core 3.
pub fn attack_traces_with(
    config: &SystemConfig,
    attacker: AttackerProfile,
    entries: usize,
    seed: u64,
) -> Vec<Trace> {
    let mut traces = benign_traces(config, entries, seed);
    traces[3] = attacker.trace(&config.geometry, config.memctrl.mapping, entries, seed + 900);
    traces
}

/// The benign quartet with the paper-default attacker on core 3.
pub fn attack_traces(config: &SystemConfig, entries: usize, seed: u64) -> Vec<Trace> {
    attack_traces_with(config, AttackerProfile::paper_default(), entries, seed)
}

/// The benign quartet with a composable (pattern × placement) attacker
/// replacing core 3 — same seeds as [`attack_traces_with`] so a composed
/// attacker that lowers the classic pattern reproduces `attack_traces`
/// byte for byte.
pub fn attack_traces_composed(
    config: &SystemConfig,
    attacker: &ComposedAttacker,
    entries: usize,
    seed: u64,
) -> Vec<Trace> {
    let mut traces = benign_traces(config, entries, seed);
    traces[3] = attacker.trace(&config.geometry, config.memctrl.mapping, entries, seed + 900);
    traces
}
