//! RowHammer / memory-performance-attack trace generators — the legacy
//! profile API, kept as a thin compat facade over the composable framework.
//!
//! The paper's attacker is "a malicious application that mounts a memory
//! performance attack by triggering many RowHammer-preventive actions"
//! (§8.1). [`AttackerProfile`] describes the canonical attack loops —
//! uncached (`clflush`-style) reads that repeatedly activate a small set of
//! aggressor rows, double-sided or many-sided in one bank, or spread over
//! several banks — and lowers onto the pattern × placement traits via
//! [`AttackerProfile::compose`]: the profile's [`AttackerKind`] becomes a
//! [`ClassicPattern`] and its
//! [`ChannelTarget`] a
//! [`NeighborPlacement`]. Trace
//! generation through the facade is bit-identical to the pre-framework
//! generator (pinned by the golden digests and a byte-identity proptest).

use crate::compose::ComposedAttacker;
use crate::pattern::ClassicPattern;
use crate::placement::{AggressorPlacement, NeighborPlacement};
use bh_cpu::Trace;
use bh_dram::{BankAddr, DramGeometry};
use bh_mem::AddressMapping;
use serde::{Deserialize, Serialize};

/// The shape of the hammering pattern.
///
/// Marked `#[non_exhaustive]`: new kinds may appear without a semver break,
/// so match with a wildcard arm and construct through the ctor fns
/// ([`AttackerKind::double_sided`], [`AttackerKind::many_sided`],
/// [`AttackerKind::multi_bank`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackerKind {
    /// Classic double-sided hammering: alternate between the two aggressor
    /// rows sandwiching a victim, in a single bank.
    DoubleSided,
    /// Many-sided ("TRRespass-style") hammering over `aggressors` rows of a
    /// single bank.
    ManySided {
        /// Number of aggressor rows cycled through.
        aggressors: usize,
    },
    /// Hammering `aggressors` rows in each of `banks` banks, maximising the
    /// number of banks whose mitigation is kept busy.
    MultiBank {
        /// Number of banks attacked in parallel.
        banks: usize,
        /// Aggressor rows per bank.
        aggressors: usize,
    },
}

impl AttackerKind {
    /// Classic double-sided hammering.
    pub fn double_sided() -> Self {
        AttackerKind::DoubleSided
    }

    /// Many-sided hammering over `aggressors` rows of one bank.
    pub fn many_sided(aggressors: usize) -> Self {
        AttackerKind::ManySided { aggressors }
    }

    /// Hammering `aggressors` rows in each of `banks` banks.
    pub fn multi_bank(banks: usize, aggressors: usize) -> Self {
        AttackerKind::MultiBank { banks, aggressors }
    }
}

/// Which memory channels an attacker hammers (irrelevant on single-channel
/// systems, where every variant degenerates to channel 0).
///
/// Marked `#[non_exhaustive]`: construct through [`ChannelTarget::pinned`] /
/// [`ChannelTarget::interleave`] and match with a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ChannelTarget {
    /// All hammering traffic concentrates on one channel — the adversarial
    /// placement against per-channel trackers (one channel's mitigation does
    /// all the work while the others see nothing).
    Pinned(
        /// The targeted channel (taken modulo the geometry's channel count).
        usize,
    ),
    /// The hammering pattern is replicated over every channel in turn,
    /// keeping all per-channel trackers busy simultaneously.
    Interleave,
}

impl ChannelTarget {
    /// All traffic pinned to one channel (taken modulo the channel count).
    pub fn pinned(channel: usize) -> Self {
        ChannelTarget::Pinned(channel)
    }

    /// The pattern replicated over every channel in turn.
    pub fn interleave() -> Self {
        ChannelTarget::Interleave
    }
}

impl Default for ChannelTarget {
    fn default() -> Self {
        ChannelTarget::Pinned(0)
    }
}

/// An attacker configuration (legacy API).
///
/// New code should compose an
/// [`AccessPattern`](crate::pattern::AccessPattern) with an
/// [`AggressorPlacement`] directly; this profile covers the classic shapes
/// and lowers onto those traits via [`AttackerProfile::compose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackerProfile {
    /// The hammering pattern.
    pub kind: AttackerKind,
    /// Non-memory instructions between consecutive hammering accesses (a
    /// tight attack loop has very few).
    pub bubbles: u32,
    /// Which memory channels the pattern targets.
    pub channels: ChannelTarget,
}

impl AttackerProfile {
    /// The paper's default attacker: a tight uncached hammering loop that
    /// concentrates on a few aggressor rows in a handful of banks, crafted to trigger
    /// as many RowHammer-preventive actions as possible per unit time (the
    /// memory performance attack of §8.1). Concentrating the activations on
    /// few rows reaches the mitigations' per-row thresholds quickly even in
    /// short simulations; use [`AttackerKind::MultiBank`] with more banks and
    /// aggressors for longer runs.
    pub fn paper_default() -> Self {
        AttackerProfile {
            kind: AttackerKind::MultiBank { banks: 4, aggressors: 2 },
            bubbles: 0,
            channels: ChannelTarget::default(),
        }
    }

    /// A double-sided attacker.
    pub fn double_sided() -> Self {
        AttackerProfile {
            kind: AttackerKind::DoubleSided,
            bubbles: 1,
            channels: ChannelTarget::default(),
        }
    }

    /// The same attacker with all hammering pinned to one memory channel.
    pub fn pinned_to_channel(mut self, channel: usize) -> Self {
        self.channels = ChannelTarget::pinned(channel);
        self
    }

    /// The same attacker replicating its pattern over every memory channel.
    pub fn interleaved_channels(mut self) -> Self {
        self.channels = ChannelTarget::interleave();
        self
    }

    /// Lowers the profile onto the composable framework: a
    /// [`ClassicPattern`] over a [`NeighborPlacement`] honouring the
    /// profile's [`ChannelTarget`]. The result is untagged so mixes built
    /// from it keep their pre-framework names (and golden digests).
    pub fn compose(&self) -> ComposedAttacker {
        ComposedAttacker::new(
            ClassicPattern::new(self.kind).with_bubbles(self.bubbles),
            NeighborPlacement::with_channels(self.channels),
        )
        .untagged()
    }

    /// Generates the attack trace.
    ///
    /// # Panics
    /// Panics if `entries` is zero or the profile parameters are degenerate
    /// (zero aggressor rows or banks).
    pub fn trace(
        &self,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        self.compose().trace(geometry, mapping, entries, seed)
    }

    /// The aggressor rows this profile hammers (useful for analyses/tests).
    pub fn aggressor_rows(&self, geometry: &DramGeometry) -> Vec<(BankAddr, usize)> {
        // The legacy method never asserted on degenerate parameters, so
        // bypass the pattern's checked request.
        let request = ClassicPattern::request_unchecked(self.kind);
        NeighborPlacement::with_channels(self.channels).place(&request, geometry).aggressor_rows()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn geometry() -> DramGeometry {
        DramGeometry::paper_ddr5()
    }

    #[test]
    fn attack_trace_is_uncached_and_memory_intense() {
        let p = AttackerProfile::paper_default();
        let t = p.trace(&geometry(), AddressMapping::paper_default(), 2_000, 1);
        assert!(t.entries().iter().all(|e| e.uncached && !e.is_write));
        // Nearly every instruction is a memory access.
        assert!(t.accesses_per_kilo_instruction() > 300.0);
    }

    #[test]
    fn double_sided_attack_targets_two_rows_of_one_bank() {
        let p = AttackerProfile::double_sided();
        let g = geometry();
        let mapping = AddressMapping::paper_default();
        let t = p.trace(&g, mapping, 1_000, 2);
        let rows: HashSet<(BankAddr, usize)> = t
            .entries()
            .iter()
            .map(|e| {
                let loc = mapping.decode(e.addr, &g);
                (loc.bank, loc.row)
            })
            .collect();
        assert_eq!(rows.len(), 2);
        let rows: Vec<usize> = rows.iter().map(|(_, r)| *r).collect();
        assert_eq!((rows[0] as i64 - rows[1] as i64).abs(), 2, "aggressors sandwich a victim");
        let banks: HashSet<BankAddr> = rows_banks(&t, &g, mapping);
        assert_eq!(banks.len(), 1);
    }

    fn rows_banks(t: &Trace, g: &DramGeometry, m: AddressMapping) -> HashSet<BankAddr> {
        t.entries().iter().map(|e| m.decode(e.addr, g).bank).collect()
    }

    #[test]
    fn many_sided_attack_cycles_the_requested_number_of_aggressors() {
        let p = AttackerProfile {
            kind: AttackerKind::many_sided(16),
            bubbles: 0,
            channels: ChannelTarget::default(),
        };
        let g = geometry();
        let mapping = AddressMapping::paper_default();
        let t = p.trace(&g, mapping, 3_200, 3);
        let rows: HashSet<usize> =
            t.entries().iter().map(|e| mapping.decode(e.addr, &g).row).collect();
        assert_eq!(rows.len(), 16);
        assert_eq!(p.aggressor_rows(&g).len(), 16);
    }

    #[test]
    fn multi_bank_attack_spreads_over_banks() {
        let p = AttackerProfile {
            kind: AttackerKind::multi_bank(8, 4),
            bubbles: 0,
            channels: ChannelTarget::default(),
        };
        let g = geometry();
        let mapping = AddressMapping::paper_default();
        let t = p.trace(&g, mapping, 4_000, 4);
        let banks = rows_banks(&t, &g, mapping);
        assert_eq!(banks.len(), 8);
        assert_eq!(p.aggressor_rows(&g).len(), 32);
    }

    #[test]
    fn consecutive_accesses_force_row_conflicts() {
        // Within a bank, consecutive attack accesses never target the same
        // row, so every access forces a row activation.
        let p = AttackerProfile::paper_default();
        let g = geometry();
        let mapping = AddressMapping::paper_default();
        let t = p.trace(&g, mapping, 1_000, 5);
        let locs: Vec<_> = t.entries().iter().map(|e| mapping.decode(e.addr, &g)).collect();
        for pair in locs.windows(2) {
            if pair[0].bank == pair[1].bank {
                assert_ne!(pair[0].row, pair[1].row, "same-row consecutive accesses");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = AttackerProfile::paper_default();
        let g = geometry();
        let m = AddressMapping::paper_default();
        assert_eq!(p.trace(&g, m, 100, 9), p.trace(&g, m, 100, 9));
    }

    #[test]
    fn channel_targets_are_identity_on_single_channel_systems() {
        let g = geometry();
        let m = AddressMapping::paper_default();
        let base = AttackerProfile::paper_default();
        let pinned = base.pinned_to_channel(0);
        let interleaved = base.interleaved_channels();
        assert_eq!(base.trace(&g, m, 500, 3), pinned.trace(&g, m, 500, 3));
        assert_eq!(base.trace(&g, m, 500, 3), interleaved.trace(&g, m, 500, 3));
    }

    #[test]
    fn pinned_attacker_stays_in_its_channel() {
        let g = geometry().with_channels(4);
        let m = AddressMapping::paper_default();
        let p = AttackerProfile::paper_default().pinned_to_channel(2);
        let t = p.trace(&g, m, 2_000, 6);
        let channels: HashSet<usize> =
            t.entries().iter().map(|e| m.decode(e.addr, &g).channel).collect();
        assert_eq!(channels, HashSet::from([2]));
    }

    #[test]
    fn interleaved_attacker_replicates_the_pattern_on_every_channel() {
        let g = geometry().with_channels(2);
        let m = AddressMapping::paper_default();
        let p = AttackerProfile::paper_default().interleaved_channels();
        let t = p.trace(&g, m, 4_000, 6);
        let locs: Vec<_> = t.entries().iter().map(|e| m.decode(e.addr, &g)).collect();
        let channels: HashSet<usize> = locs.iter().map(|l| l.channel).collect();
        assert_eq!(channels, HashSet::from([0, 1]));
        // Each channel sees the full multi-bank many-sided pattern.
        for channel in 0..2 {
            let rows: HashSet<(BankAddr, usize)> =
                locs.iter().filter(|l| l.channel == channel).map(|l| (l.bank, l.row)).collect();
            assert_eq!(rows.len(), p.aggressor_rows(&g).len(), "channel {channel}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two aggressors")]
    fn degenerate_many_sided_rejected() {
        let p = AttackerProfile {
            kind: AttackerKind::ManySided { aggressors: 1 },
            bubbles: 0,
            channels: ChannelTarget::default(),
        };
        let _ = p.trace(&geometry(), AddressMapping::paper_default(), 10, 0);
    }
}

#[cfg(test)]
mod byte_identity {
    //! The compat facade's contract: `AttackerProfile::trace` through the
    //! composable framework is *byte-identical* to the pre-redesign
    //! generator, for every kind × channel target × seed. The reference
    //! implementation below is the old generator loop, kept verbatim.

    use super::*;
    use bh_cpu::TraceEntry;
    use bh_dram::DramLocation;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const AGGRESSOR_BASE: usize = 20_000;

    /// The pre-redesign `AttackerProfile::trace`, verbatim.
    fn reference_trace(
        profile: &AttackerProfile,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        assert!(entries > 0, "a trace needs at least one record");
        let (banks, aggressors_per_bank) = match profile.kind {
            AttackerKind::DoubleSided => (1usize, 2usize),
            AttackerKind::ManySided { aggressors } => (1, aggressors),
            AttackerKind::MultiBank { banks, aggressors } => {
                (banks.min(geometry.banks_per_channel()), aggressors)
            }
        };

        let channel_count = geometry.channels.max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa77a_c4e5);
        let mut records = Vec::with_capacity(entries);
        let mut column = 0usize;
        for i in 0..entries {
            let bank_idx = i % banks;
            let (channel, agg_step) = match profile.channels {
                ChannelTarget::Pinned(channel) => (channel % channel_count, i / banks),
                ChannelTarget::Interleave => {
                    ((i / banks) % channel_count, i / banks / channel_count)
                }
            };
            let agg_idx = agg_step % aggressors_per_bank;
            let bank: BankAddr = geometry.bank_from_flat(bank_idx);
            let row = AGGRESSOR_BASE + 2 * agg_idx;
            column = (column + 1 + rng.gen_range(0..3usize)) % geometry.columns_per_row;
            let loc = DramLocation { channel, bank, row: row % geometry.rows_per_bank, column };
            let addr = mapping.encode(&loc, geometry);
            records.push(TraceEntry {
                bubbles: profile.bubbles,
                addr,
                is_write: false,
                uncached: true,
            });
        }
        Trace::new(records)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The facade lowers onto ClassicPattern × NeighborPlacement with no
        /// byte of trace difference, for every kind × channel target, on both
        /// geometries and any channel count.
        #[test]
        fn facade_traces_are_byte_identical_to_the_legacy_generator(
            kind_sel in 0usize..3,
            aggressors in 2usize..12,
            banks in 1usize..40,
            pinned_channel in 0usize..8,
            interleave in any::<bool>(),
            bubbles in 0u32..5,
            channels in 1usize..5,
            entries in 1usize..1_500,
            seed in any::<u64>(),
            tiny in any::<bool>(),
        ) {
            let kind = match kind_sel {
                0 => AttackerKind::double_sided(),
                1 => AttackerKind::many_sided(aggressors),
                _ => AttackerKind::multi_bank(banks, aggressors),
            };
            let target = if interleave {
                ChannelTarget::interleave()
            } else {
                ChannelTarget::pinned(pinned_channel)
            };
            let base = if tiny { DramGeometry::tiny() } else { DramGeometry::paper_ddr5() };
            let geometry = base.with_channels(channels);
            let mapping = AddressMapping::paper_default();
            let profile = AttackerProfile { kind, bubbles, channels: target };
            let new = profile.trace(&geometry, mapping, entries, seed);
            let old = reference_trace(&profile, &geometry, mapping, entries, seed);
            prop_assert_eq!(new.to_bytes(), old.to_bytes());
        }
    }
}
