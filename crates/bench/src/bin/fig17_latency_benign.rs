//! Figure 17: memory-latency percentiles on all-benign workloads at the
//! lowest evaluated N_RH, for each mitigation mechanism with and without
//! BreakHammer, compared to a no-defense baseline.

use bh_bench::{
    maybe_print_config, mean_of, paper_config, print_results, Campaign, RunRecord, Scale,
};
use bh_mitigation::MechanismKind;
use bh_stats::Table;

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let nrh = *scale.nrh_values.iter().min().expect("non-empty N_RH sweep");
    let mut campaign = Campaign::new(scale.clone());

    let mut rows: Vec<(String, Vec<RunRecord>)> = Vec::new();
    let baseline_cfg = paper_config(MechanismKind::None, nrh, false, &scale);
    rows.push(("NoDefense".to_string(), campaign.run(&baseline_cfg, false)));
    for mech in MechanismKind::paper_mechanisms() {
        for bh in [false, true] {
            let label = if bh { format!("{mech}+BH") } else { mech.to_string() };
            let config = paper_config(mech, nrh, bh, &scale);
            rows.push((label, campaign.run(&config, false)));
        }
    }

    let mut table = Table::new(["config", "p50_ns", "p90_ns", "p99_ns"]);
    for (label, records) in &rows {
        let sel: Vec<&RunRecord> = records.iter().collect();
        table.push_row([
            label.clone(),
            format!("{:.1}", mean_of(&sel, |r| r.latency_ns[0])),
            format!("{:.1}", mean_of(&sel, |r| r.latency_ns[1])),
            format!("{:.1}", mean_of(&sel, |r| r.latency_ns[2])),
        ]);
    }
    print_results(
        &format!("Figure 17: benign memory-latency percentiles with no attacker (N_RH = {nrh})"),
        &table,
    );
}
