//! E1 negative: the read names a registered knob; a non-BH variable and a
//! non-literal read are out of scope for the rule.
use std::env;

pub fn registered_read() -> Option<String> {
    env::var("BH_FOO").ok()
}

pub fn other_namespace() -> Option<String> {
    env::var("CARGO_TERM_COLOR").ok()
}

pub fn dynamic_read(name: &str) -> Option<String> {
    env::var(name).ok()
}
