//! Figure 10: number of RowHammer-preventive actions performed by each
//! mitigation mechanism, with and without BreakHammer, as N_RH decreases —
//! normalized to the same mechanism without BreakHammer at N_RH = 4K.
//!
//! REGA is excluded (footnote 10 of the paper): it performs its refreshes in
//! parallel with activations and has no discrete preventive actions.

use bh_bench::{maybe_print_config, mean_of, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms: Vec<MechanismKind> = MechanismKind::paper_mechanisms()
        .into_iter()
        .filter(|m| *m != MechanismKind::Rega)
        .collect();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[false, true], /*attack=*/ true);

    let reference_nrh = *scale.nrh_values.iter().max().expect("non-empty N_RH sweep");
    let mut table = Table::new(["nrh", "config", "preventive_actions", "normalized_actions"]);
    for &mech in &mechanisms {
        let reference = select(&records, mech, reference_nrh, false);
        let reference_actions = mean_of(&reference, |r| r.preventive_actions as f64).max(1.0);
        for &nrh in &scale.nrh_values {
            for bh in [false, true] {
                let sel = select(&records, mech, nrh, bh);
                if sel.is_empty() {
                    continue;
                }
                let actions = mean_of(&sel, |r| r.preventive_actions as f64);
                let label = if bh { format!("{mech}+BH") } else { mech.to_string() };
                table.push_row([
                    nrh.to_string(),
                    label,
                    format!("{actions:.0}"),
                    fmt3(actions / reference_actions),
                ]);
            }
        }
    }
    print_results(
        "Figure 10: RowHammer-preventive actions with an attacker present (normalized to no-BreakHammer at N_RH = 4K)",
        &table,
    );
}
