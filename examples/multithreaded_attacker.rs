//! Explores the multi-threaded attack strategies of §5.2: an attacker that
//! controls more and more of the system's hardware threads tries to "rig"
//! BreakHammer's outlier detection. The example reports both the analytical
//! bound (Expression 2 / Fig. 5) and simulated runs with 1, 2 and 3 attacker
//! threads out of 4.
//!
//! Run with: `cargo run --release --example multithreaded_attacker`

use breakhammer_suite::breakhammer::security::max_attacker_score_ratio;
use breakhammer_suite::dram::ThreadId;
use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{System, SystemConfig};
use breakhammer_suite::workloads::{AttackerProfile, BenignProfile, TraceGenerator};

fn main() {
    println!("Analytical bound (Expression 2), TH_outlier = 0.65:");
    for attackers in 1..=3usize {
        let fraction = attackers as f64 / 4.0;
        match max_attacker_score_ratio(fraction, 0.65) {
            Some(r) => println!(
                "  {attackers}/4 attacker threads -> each may trigger at most {r:.2}x the benign average before detection"
            ),
            None => println!("  {attackers}/4 attacker threads -> the bound diverges (attackers dominate the mean)"),
        }
    }

    let nrh = 64;
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, nrh, true);
    config.geometry = breakhammer_suite::dram::DramGeometry::paper_ddr5();
    config.instructions_per_core = 20_000;
    let generator = TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default());
    let benign_profile = BenignProfile::by_name("fotonik3d").unwrap();

    println!("\nSimulated runs (Graphene+BreakHammer, N_RH = {nrh}):");
    for attackers in 1..=3usize {
        let mut traces = Vec::new();
        let mut required = Vec::new();
        for core in 0..4usize {
            if core < 4 - attackers {
                let mut p = benign_profile.clone();
                p.footprint_rows = p.footprint_rows.min(2_000);
                traces.push(generator.benign(&p, 4_000, core as u64));
                required.push(core);
            } else {
                traces.push(AttackerProfile::paper_default().trace(
                    &config.geometry,
                    AddressMapping::paper_default(),
                    4_000,
                    core as u64,
                ));
            }
        }
        let result = System::new(config.clone(), &traces, required.clone()).run();
        let identified: Vec<usize> = (0..4).filter(|t| result.ever_suspect[*t]).collect();
        let benign_ipc: f64 = required.iter().map(|t| result.cores[*t].ipc).sum();
        println!(
            "  {attackers} attacker thread(s): suspects identified = {:?}, preventive actions = {}, benign IPC sum = {:.3}, bitflips = {}",
            identified, result.preventive_actions, benign_ipc, result.bitflips
        );
        let _ = ThreadId(0);
    }
    println!("\nEven when the attacker controls 3 of 4 threads it cannot exceed the Expression 2");
    println!("bound without being identified, and the underlying mitigation keeps protecting");
    println!("the DRAM rows (bitflips stay at zero).");
}
