//! Compact memory-latency histograms used for Figs. 11 and 17.

use bh_dram::Cycle;
use serde::{Deserialize, Serialize};

/// Width of one histogram bucket in DRAM cycles.
const BUCKET_WIDTH: u64 = 4;
/// Number of regular buckets; latencies beyond the covered range fall into the
/// overflow bucket.
const BUCKETS: usize = 4096;

/// A fixed-bucket histogram of read latencies (in DRAM cycles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { buckets: vec![0; BUCKETS], overflow: 0, count: 0, sum: 0, max: 0 }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycle) {
        let idx = (latency / BUCKET_WIDTH) as usize;
        if idx < BUCKETS {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Cycle {
        self.max
    }

    /// The `p`-th percentile latency in cycles (`p` in `[0, 100]`).
    ///
    /// Returns 0 for an empty histogram. The value is resolved to bucket
    /// granularity (4 cycles), which is far finer than the figures need.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Cycle {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return (i as u64) * BUCKET_WIDTH + BUCKET_WIDTH / 2;
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn mean_max_and_percentiles_track_samples() {
        let mut h = LatencyHistogram::new();
        for v in [40u64, 40, 40, 40, 40, 40, 40, 40, 40, 400] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 76.0).abs() < 1e-9);
        assert_eq!(h.max(), 400);
        // 50th percentile is in the 40-cycle bucket, 100th near 400.
        assert!(h.percentile(50.0) >= 40 && h.percentile(50.0) < 48);
        assert!(h.percentile(100.0) >= 396);
        // 90th percentile still in the low bucket (9 of 10 samples are 40).
        assert!(h.percentile(90.0) < 48);
    }

    #[test]
    fn overflow_samples_are_counted() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        h.record(10);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(30);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 50);
        assert!((a.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotonic() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i % 500);
        }
        let mut prev = 0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }
}
