//! # bh-core — BreakHammer: throttling suspect threads
//!
//! This crate implements the paper's primary contribution: **BreakHammer**, a
//! memory-controller-side mechanism that reduces the performance and energy
//! overheads of existing RowHammer mitigation mechanisms by tracking which
//! hardware threads trigger RowHammer-preventive actions and throttling the
//! memory bandwidth usage of the threads that trigger too many of them.
//!
//! The crate provides:
//!
//! * [`BreakHammer`] — the throttling controller: per-thread
//!   RowHammer-preventive scores, two-set time-interleaved counters (Fig. 4),
//!   proportional score attribution (§4.1), thresholded-deviation-from-the-mean
//!   suspect identification (Alg. 1), and MSHR-quota throttling (Expression 1);
//! * [`BreakHammerConfig`] — the Table 2 configuration;
//! * [`security`] — the analytical worst-case-attacker model (Expression 2 /
//!   Fig. 5);
//! * [`hw_cost`] — the §6 area/latency model.
//!
//! ## Example
//!
//! ```
//! use bh_core::{BreakHammer, BreakHammerConfig};
//! use bh_dram::{ThreadId, TimingParams};
//! use bh_mitigation::ScoreAttribution;
//!
//! let timing = TimingParams::ddr5_4800();
//! let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
//! let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
//!
//! // An attacker (thread 0) causes almost every activation that leads to a
//! // preventive action; BreakHammer identifies it and shrinks its MSHR quota.
//! for round in 0..40u64 {
//!     for _ in 0..100 {
//!         bh.on_activation(ThreadId(0), round);
//!     }
//!     bh.on_activation(ThreadId(1), round);
//!     bh.on_preventive_action(round);
//! }
//! assert!(bh.is_suspect(ThreadId(0)));
//! assert!(bh.quota(ThreadId(0)) < bh.quota(ThreadId(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breakhammer;
pub mod config;
pub mod hw_cost;
pub mod knobs;
pub mod scores;
pub mod security;

pub use breakhammer::{BreakHammer, BreakHammerStats};
pub use config::BreakHammerConfig;
pub use hw_cost::HardwareCost;
pub use scores::InterleavedScores;
pub use security::{figure5_series, max_attacker_score_ratio, SecurityPoint};
