//! Access patterns — the *hammerer* axis of the composable attacker
//! framework.
//!
//! An [`AccessPattern`] owns the temporal schedule of a hammering campaign:
//! in what order, how densely and with what row-buffer behaviour the placed
//! aggressor rows are activated. The spatial side (which banks, rows and
//! channels those aggressors occupy) comes from an
//! [`AggressorPlacement`](crate::placement::AggressorPlacement); the two
//! compose through [`ComposedAttacker`](crate::compose::ComposedAttacker).
//!
//! Four hammerers ship with the framework:
//!
//! * [`ClassicPattern`] — the pre-framework double-/many-sided/multi-bank
//!   loops, bit-identical to the old `AttackerProfile` generator;
//! * [`FuzzedPattern`] — Blacksmith-style seeded non-uniform schedules with
//!   per-aggressor frequency, phase and amplitude;
//! * [`RowPressPattern`] — RowPress-style long-open-row dwell via run-length
//!   column bursts;
//! * [`DecoyPattern`] — benign-mimicry hammering laced with organic-looking
//!   cached hot-row traffic.

use crate::attacker::AttackerKind;
use crate::placement::{AggressorGrid, PlacementRequest};
use bh_cpu::{Trace, TraceEntry};
use bh_dram::{DramGeometry, DramLocation};
use bh_mem::AddressMapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// First row index used by [`DecoyPattern`]'s organic-looking decoy traffic
/// (clear of the benign generators' hot rows/footprints and of the aggressor
/// region, so decoys neither hammer victims nor alias benign data).
const DECOY_BASE: usize = 12_000;

/// The hammerer axis: a temporal access schedule over a placed
/// [`AggressorGrid`].
///
/// # Example
///
/// ```
/// use bh_dram::DramGeometry;
/// use bh_mem::AddressMapping;
/// use bh_workloads::{AccessPattern, AggressorPlacement, FuzzedPattern, NeighborPlacement};
///
/// let geometry = DramGeometry::paper_ddr5();
/// let pattern = FuzzedPattern::new(2, 8);
/// let grid = NeighborPlacement::new().place(&pattern.request(), &geometry);
/// let trace = pattern.generate(&grid, &geometry, AddressMapping::paper_default(), 1_000, 7);
/// assert_eq!(trace.len(), 1_000);
/// assert!(trace.entries().iter().all(|e| e.uncached));
/// ```
pub trait AccessPattern: fmt::Debug + Send + Sync {
    /// Short label used in scenario names (e.g. `"fuzz"`, `"press"`).
    fn label(&self) -> &'static str;

    /// The bank/aggressor footprint this pattern's schedule cycles through
    /// (what it asks the placement layer to allocate).
    ///
    /// # Panics
    /// Panics if the pattern's parameters are degenerate (e.g. fewer than
    /// two aggressor rows for a sided pattern).
    fn request(&self) -> PlacementRequest;

    /// Generates `entries` trace records over the placed grid,
    /// deterministically from `seed`.
    fn generate(
        &self,
        grid: &AggressorGrid,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace;
}

/// The pre-framework hammering loops (double-sided, many-sided, multi-bank),
/// kept bit-identical to the old `AttackerProfile` trace generator — the
/// 40-config golden digests pin this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicPattern {
    kind: AttackerKind,
    bubbles: u32,
}

impl ClassicPattern {
    /// A classic pattern of the given kind with a tight loop (no bubbles).
    pub fn new(kind: AttackerKind) -> Self {
        ClassicPattern { kind, bubbles: 0 }
    }

    /// Overrides the non-memory instructions between hammering accesses.
    pub fn with_bubbles(mut self, bubbles: u32) -> Self {
        self.bubbles = bubbles;
        self
    }

    /// The hammering kind.
    pub fn kind(&self) -> AttackerKind {
        self.kind
    }

    /// The request this kind denotes, *without* the degeneracy asserts
    /// (used by the compat facade's `aggressor_rows`, which never asserted).
    pub(crate) fn request_unchecked(kind: AttackerKind) -> PlacementRequest {
        let (banks, aggressors_per_bank) = match kind {
            AttackerKind::DoubleSided => (1usize, 2usize),
            AttackerKind::ManySided { aggressors } => (1, aggressors),
            AttackerKind::MultiBank { banks, aggressors } => (banks, aggressors),
        };
        PlacementRequest { banks, aggressors_per_bank }
    }
}

impl AccessPattern for ClassicPattern {
    fn label(&self) -> &'static str {
        "classic"
    }

    fn request(&self) -> PlacementRequest {
        match self.kind {
            AttackerKind::DoubleSided => {}
            AttackerKind::ManySided { aggressors } => {
                assert!(aggressors >= 2, "many-sided attack needs at least two aggressors");
            }
            AttackerKind::MultiBank { banks, aggressors } => {
                assert!(banks >= 1 && aggressors >= 2, "degenerate multi-bank attack");
            }
        }
        ClassicPattern::request_unchecked(self.kind)
    }

    fn generate(
        &self,
        grid: &AggressorGrid,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa77a_c4e5);
        let mut records = Vec::with_capacity(entries);
        let mut column = 0usize;
        let banks = grid.bank_steps();
        for i in 0..entries {
            let bank_step = i % banks;
            // The channel progression nests between the bank and aggressor
            // strides: the pattern sweeps every bank of one channel, moves to
            // the next channel, and only then advances the aggressor index —
            // so an interleaved attacker keeps every channel's tracker warm.
            let sweep = i / banks;
            let channel = grid.channel(sweep);
            let aggressor_step = sweep / grid.channel_steps();
            let row = grid.row(bank_step, aggressor_step);
            column = (column + 1 + rng.gen_range(0..3usize)) % geometry.columns_per_row;
            let loc = DramLocation {
                channel,
                bank: grid.bank(bank_step),
                row: row % geometry.rows_per_bank,
                column,
            };
            records.push(TraceEntry {
                bubbles: self.bubbles,
                addr: mapping.encode(&loc, geometry),
                is_write: false,
                uncached: true,
            });
        }
        Trace::new(records)
    }
}

/// Blacksmith-style seeded fuzzed non-uniform hammering: every aggressor is
/// assigned a fuzzed *frequency* (bursts per period), *phase* (offset of its
/// first burst) and *amplitude* (consecutive activations per burst), and the
/// resulting non-uniform schedule is what defeats mitigations that assume
/// uniformly interleaved aggressors (TRR-style samplers, BlockHammer's
/// blacklisting cadence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzedPattern {
    banks: usize,
    aggressors_per_bank: usize,
    bubbles: u32,
    /// Largest burst length the fuzzer may assign to an aggressor.
    max_amplitude: usize,
    /// Abstract schedule period the fuzzed frequencies/phases quantise to.
    period: usize,
}

impl FuzzedPattern {
    /// A fuzzed pattern over `aggressors` rows in each of `banks` banks.
    ///
    /// # Panics
    /// Panics if `banks` is zero or `aggressors` is below two.
    pub fn new(banks: usize, aggressors: usize) -> Self {
        assert!(banks >= 1, "fuzzed pattern needs at least one bank");
        assert!(aggressors >= 2, "fuzzed pattern needs at least two aggressors");
        FuzzedPattern {
            banks,
            aggressors_per_bank: aggressors,
            bubbles: 0,
            max_amplitude: 3,
            period: 64,
        }
    }

    /// Overrides the non-memory instructions between hammering accesses.
    pub fn with_bubbles(mut self, bubbles: u32) -> Self {
        self.bubbles = bubbles;
        self
    }

    /// Overrides the largest burst length the fuzzer may assign.
    pub fn with_max_amplitude(mut self, amplitude: usize) -> Self {
        self.max_amplitude = amplitude.max(1);
        self
    }

    /// The fuzzed aggressor-step schedule for one period: for every
    /// aggressor, `frequency` bursts of `amplitude` consecutive slots start
    /// at its `phase`, and the bursts of all aggressors are merged in time
    /// order. Deterministic per seed.
    fn schedule(&self, rng: &mut StdRng) -> Vec<usize> {
        let aggs = self.aggressors_per_bank;
        let mut events: Vec<(usize, usize, usize)> = Vec::new();
        for a in 0..aggs {
            let frequency = rng.gen_range(1..=4usize);
            let amplitude = rng.gen_range(1..=self.max_amplitude);
            let phase = rng.gen_range(0..self.period);
            for k in 0..frequency {
                let t = (phase + k * self.period / frequency) % self.period;
                events.push((t, a, amplitude));
            }
        }
        events.sort_unstable();
        let mut schedule = Vec::new();
        for (_, a, amplitude) in events {
            for _ in 0..amplitude {
                schedule.push(a);
            }
        }
        schedule
    }
}

impl AccessPattern for FuzzedPattern {
    fn label(&self) -> &'static str {
        "fuzz"
    }

    fn request(&self) -> PlacementRequest {
        PlacementRequest { banks: self.banks, aggressors_per_bank: self.aggressors_per_bank }
    }

    fn generate(
        &self,
        grid: &AggressorGrid,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb1ac_6417);
        let schedule = self.schedule(&mut rng);
        let mut records = Vec::with_capacity(entries);
        let mut column = 0usize;
        let banks = grid.bank_steps();
        for i in 0..entries {
            let bank_step = i % banks;
            let sweep = i / banks;
            let channel = grid.channel(sweep);
            let slot = sweep / grid.channel_steps();
            let aggressor_step = schedule[slot % schedule.len()];
            let row = grid.row(bank_step, aggressor_step);
            column = (column + 1 + rng.gen_range(0..3usize)) % geometry.columns_per_row;
            let loc = DramLocation {
                channel,
                bank: grid.bank(bank_step),
                row: row % geometry.rows_per_bank,
                column,
            };
            records.push(TraceEntry {
                bubbles: self.bubbles,
                addr: mapping.encode(&loc, geometry),
                is_write: false,
                uncached: true,
            });
        }
        Trace::new(records)
    }
}

/// RowPress-style long-open-row hammering: every visit to an aggressor keeps
/// its row open for a run of `dwell` consecutive column reads before moving
/// on. Far fewer *activations* reach the mitigation's counters per unit of
/// disturbance than under classic hammering — the RowPress amplification
/// that activation-counting defenses under-estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowPressPattern {
    banks: usize,
    aggressors_per_bank: usize,
    dwell: usize,
    bubbles: u32,
}

impl RowPressPattern {
    /// A long-open-row pattern over `aggressors` rows in each of `banks`
    /// banks, holding each row open for `dwell` consecutive column reads.
    ///
    /// # Panics
    /// Panics if `banks` is zero, `aggressors` is below two or `dwell` is
    /// zero.
    pub fn new(banks: usize, aggressors: usize, dwell: usize) -> Self {
        assert!(banks >= 1, "rowpress pattern needs at least one bank");
        assert!(aggressors >= 2, "rowpress pattern needs at least two aggressors");
        assert!(dwell >= 1, "rowpress dwell must be at least one access");
        RowPressPattern { banks, aggressors_per_bank: aggressors, dwell, bubbles: 0 }
    }

    /// Overrides the non-memory instructions between hammering accesses.
    pub fn with_bubbles(mut self, bubbles: u32) -> Self {
        self.bubbles = bubbles;
        self
    }

    /// The dwell length (column reads per row visit).
    pub fn dwell(&self) -> usize {
        self.dwell
    }
}

impl AccessPattern for RowPressPattern {
    fn label(&self) -> &'static str {
        "press"
    }

    fn request(&self) -> PlacementRequest {
        PlacementRequest { banks: self.banks, aggressors_per_bank: self.aggressors_per_bank }
    }

    fn generate(
        &self,
        grid: &AggressorGrid,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70e5_5a11);
        let mut records = Vec::with_capacity(entries);
        let banks = grid.bank_steps();
        let cols = geometry.columns_per_row;
        let mut base_column = 0usize;
        for i in 0..entries {
            let visit = i / self.dwell;
            let within = i % self.dwell;
            let bank_step = visit % banks;
            let sweep = visit / banks;
            let channel = grid.channel(sweep);
            let aggressor_step = sweep / grid.channel_steps();
            let row = grid.row(bank_step, aggressor_step);
            if within == 0 {
                base_column = rng.gen_range(0..cols);
            }
            // Consecutive columns of the same open row: row hits that extend
            // the aggressor's open time without further activations.
            let column = (base_column + within) % cols;
            let loc = DramLocation {
                channel,
                bank: grid.bank(bank_step),
                row: row % geometry.rows_per_bank,
                column,
            };
            records.push(TraceEntry {
                bubbles: self.bubbles,
                addr: mapping.encode(&loc, geometry),
                is_write: false,
                uncached: true,
            });
        }
        Trace::new(records)
    }
}

/// Decoy-laced benign mimicry: classic hammering interleaved with
/// organic-looking *cached* hot-row traffic over a small decoy row set with
/// skewed popularity — the per-access profile resembles a benign hot-row
/// application (mcf-style), diluting the attacker's share of
/// RowHammer-preventive actions per retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoyPattern {
    banks: usize,
    aggressors_per_bank: usize,
    /// Fraction of accesses that are decoys (cached, non-hammering).
    decoy_fraction: f64,
    /// Size of the decoy hot-row set.
    decoy_rows: usize,
    bubbles: u32,
}

impl DecoyPattern {
    /// A decoy-laced pattern hammering `aggressors` rows in each of `banks`
    /// banks, with half of all accesses disguised as benign hot-row traffic.
    ///
    /// # Panics
    /// Panics if `banks` is zero or `aggressors` is below two.
    pub fn new(banks: usize, aggressors: usize) -> Self {
        assert!(banks >= 1, "decoy pattern needs at least one bank");
        assert!(aggressors >= 2, "decoy pattern needs at least two aggressors");
        DecoyPattern {
            banks,
            aggressors_per_bank: aggressors,
            decoy_fraction: 0.5,
            decoy_rows: 8,
            bubbles: 0,
        }
    }

    /// Overrides the fraction of accesses spent on decoy traffic (clamped to
    /// `[0, 0.95]` — a pure-decoy "attacker" would not hammer at all).
    pub fn with_decoy_fraction(mut self, fraction: f64) -> Self {
        self.decoy_fraction = fraction.clamp(0.0, 0.95);
        self
    }
}

impl AccessPattern for DecoyPattern {
    fn label(&self) -> &'static str {
        "decoy"
    }

    fn request(&self) -> PlacementRequest {
        PlacementRequest { banks: self.banks, aggressors_per_bank: self.aggressors_per_bank }
    }

    fn generate(
        &self,
        grid: &AggressorGrid,
        geometry: &DramGeometry,
        mapping: AddressMapping,
        entries: usize,
        seed: u64,
    ) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdec0_7a11);
        let mut records = Vec::with_capacity(entries);
        let banks = grid.bank_steps();
        let cols = geometry.columns_per_row;
        let mut column = 0usize;
        let mut hammer_step = 0usize;
        for _ in 0..entries {
            if rng.gen::<f64>() < self.decoy_fraction {
                // Organic-looking traffic: cached reads over a skewed decoy
                // hot-row set in the banks/channels the attack already
                // touches (so the decoys blend into the same controller).
                let skew: f64 = rng.gen::<f64>().powi(2);
                let hot = (skew * self.decoy_rows as f64) as usize % self.decoy_rows;
                let channel = grid.channel(rng.gen_range(0..grid.channel_steps()));
                let bank_step = rng.gen_range(0..banks);
                let loc = DramLocation {
                    channel,
                    bank: grid.bank(bank_step),
                    row: (DECOY_BASE + hot) % geometry.rows_per_bank,
                    column: rng.gen_range(0..cols),
                };
                records.push(TraceEntry {
                    bubbles: self.bubbles + 2,
                    addr: mapping.encode(&loc, geometry),
                    is_write: false,
                    uncached: false,
                });
            } else {
                // A classic hammering access, advancing its own schedule
                // independently of how many decoys were interleaved.
                let i = hammer_step;
                hammer_step += 1;
                let bank_step = i % banks;
                let sweep = i / banks;
                let channel = grid.channel(sweep);
                let aggressor_step = sweep / grid.channel_steps();
                let row = grid.row(bank_step, aggressor_step);
                column = (column + 1 + rng.gen_range(0..3usize)) % cols;
                let loc = DramLocation {
                    channel,
                    bank: grid.bank(bank_step),
                    row: row % geometry.rows_per_bank,
                    column,
                };
                records.push(TraceEntry {
                    bubbles: self.bubbles,
                    addr: mapping.encode(&loc, geometry),
                    is_write: false,
                    uncached: true,
                });
            }
        }
        Trace::new(records)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;
    use crate::placement::{AggressorPlacement, NeighborPlacement};
    use std::collections::HashSet;

    fn geometry() -> DramGeometry {
        DramGeometry::paper_ddr5()
    }

    fn mapping() -> AddressMapping {
        AddressMapping::paper_default()
    }

    fn grid_for(pattern: &dyn AccessPattern) -> AggressorGrid {
        NeighborPlacement::new().place(&pattern.request(), &geometry())
    }

    #[test]
    fn fuzzed_pattern_is_non_uniform_and_deterministic() {
        let p = FuzzedPattern::new(1, 8);
        let grid = grid_for(&p);
        let a = p.generate(&grid, &geometry(), mapping(), 2_000, 11);
        assert_eq!(a, p.generate(&grid, &geometry(), mapping(), 2_000, 11));
        assert_ne!(a, p.generate(&grid, &geometry(), mapping(), 2_000, 12));
        // Aggressor visit counts are skewed: the most-hammered row sees at
        // least twice the traffic of the least-hammered one.
        let mut counts: std::collections::HashMap<usize, usize> = Default::default();
        for e in a.entries() {
            *counts.entry(mapping().decode(e.addr, &geometry()).row).or_insert(0) += 1;
        }
        assert!(counts.len() >= 2, "fuzzing must keep several aggressors in play");
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap();
        assert!(max >= 2 * min, "schedule should be non-uniform (max {max}, min {min})");
        assert!(a.entries().iter().all(|e| e.uncached && !e.is_write));
    }

    #[test]
    fn rowpress_pattern_dwells_on_open_rows() {
        let p = RowPressPattern::new(1, 2, 8);
        let grid = grid_for(&p);
        let t = p.generate(&grid, &geometry(), mapping(), 1_600, 3);
        // Runs of `dwell` consecutive same-row accesses with consecutive
        // columns: within a run only the column changes.
        let locs: Vec<DramLocation> =
            t.entries().iter().map(|e| mapping().decode(e.addr, &geometry())).collect();
        for run in locs.chunks(8) {
            let rows: HashSet<usize> = run.iter().map(|l| l.row).collect();
            assert_eq!(rows.len(), 1, "a dwell run stays in one open row");
            let cols: HashSet<usize> = run.iter().map(|l| l.column).collect();
            assert_eq!(cols.len(), run.len(), "dwell reads walk distinct columns");
        }
        // Consecutive runs switch rows (the activation that hammers).
        assert_ne!(locs[0].row, locs[8].row);
    }

    #[test]
    fn decoy_pattern_mixes_cached_and_uncached_traffic() {
        let p = DecoyPattern::new(2, 2);
        let grid = grid_for(&p);
        let t = p.generate(&grid, &geometry(), mapping(), 4_000, 5);
        let uncached = t.entries().iter().filter(|e| e.uncached).count();
        let cached = t.len() - uncached;
        assert!(uncached > t.len() / 3, "hammering must continue under the decoys");
        assert!(cached > t.len() / 3, "decoy traffic must be present");
        // Decoys never touch the aggressor rows.
        let aggressors: HashSet<usize> =
            grid.aggressor_rows().iter().map(|(_, r)| *r % geometry().rows_per_bank).collect();
        for e in t.entries().iter().filter(|e| !e.uncached) {
            let row = mapping().decode(e.addr, &geometry()).row;
            assert!(!aggressors.contains(&row), "decoy hit an aggressor row");
        }
    }

    #[test]
    fn patterns_walk_every_channel_under_an_interleaved_placement() {
        let g = geometry().with_channels(2);
        for pattern in [
            Box::new(FuzzedPattern::new(2, 4)) as Box<dyn AccessPattern>,
            Box::new(RowPressPattern::new(2, 2, 4)),
            Box::new(DecoyPattern::new(2, 2)),
        ] {
            let grid = NeighborPlacement::interleaved().place(&pattern.request(), &g);
            let t = pattern.generate(&grid, &g, mapping(), 3_000, 9);
            let channels: HashSet<usize> =
                t.entries().iter().map(|e| mapping().decode(e.addr, &g).channel).collect();
            assert_eq!(channels, HashSet::from([0, 1]), "{}", pattern.label());
        }
    }

    #[test]
    #[should_panic(expected = "at least two aggressors")]
    fn degenerate_fuzzed_pattern_rejected() {
        let _ = FuzzedPattern::new(1, 1);
    }
}
