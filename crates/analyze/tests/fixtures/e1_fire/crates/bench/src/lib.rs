//! E1 positive: reads a BH_* variable that the registry does not know.
use std::env;

pub fn unregistered_read() -> Option<String> {
    env::var("BH_BAR").ok()
}
