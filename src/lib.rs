//! # breakhammer-suite — facade for the BreakHammer (MICRO 2024) reproduction
//!
//! This crate re-exports the whole reproduction stack behind one import so
//! the examples and downstream users can depend on a single crate:
//!
//! | Layer | Crate | Re-exported as |
//! |---|---|---|
//! | DRAM device model | `bh-dram` | [`dram`] |
//! | Memory controller | `bh-mem` | [`mem`] |
//! | Cores + LLC | `bh-cpu` | [`cpu`] |
//! | RowHammer mitigations | `bh-mitigation` | [`mitigation`] |
//! | **BreakHammer** (the paper's contribution) | `bh-core` | [`breakhammer`] |
//! | Full-system simulator | `bh-sim` | [`sim`] |
//! | Workload / attacker generators | `bh-workloads` | [`workloads`] |
//! | Metrics | `bh-stats` | [`stats`] |
//!
//! The runnable examples under `examples/` show the typical flows; the
//! experiment binaries that regenerate every figure and table of the paper
//! live in the `bh-bench` crate.
//!
//! ## Example
//!
//! ```
//! use breakhammer_suite::breakhammer::{BreakHammer, BreakHammerConfig};
//! use breakhammer_suite::dram::{ThreadId, TimingParams};
//! use breakhammer_suite::mitigation::ScoreAttribution;
//!
//! let timing = TimingParams::ddr5_4800();
//! let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
//! let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
//! bh.on_activation(ThreadId(0), 0);
//! bh.on_preventive_action(0);
//! assert!(bh.score(ThreadId(0)) > 0.0);
//! ```

#![warn(missing_docs)]

/// The BreakHammer throttling mechanism (the paper's contribution).
pub use bh_core as breakhammer;
/// Trace-driven cores and the shared last-level cache.
pub use bh_cpu as cpu;
/// The cycle-level DRAM device model.
pub use bh_dram as dram;
/// The memory controller.
pub use bh_mem as mem;
/// The eight RowHammer mitigation mechanisms plus BlockHammer.
pub use bh_mitigation as mitigation;
/// The full-system simulator.
pub use bh_sim as sim;
/// Metric primitives (weighted speedup, unfairness, percentiles).
pub use bh_stats as stats;
/// Synthetic workload and attacker generators.
pub use bh_workloads as workloads;
