//! S1 negative: every `unsafe` carries its justification.

pub fn peek(values: &[u64]) -> u64 {
    // SAFETY: the caller-visible contract of this fixture guarantees the
    // slice is non-empty, so index 0 is in bounds.
    unsafe { *values.get_unchecked(0) }
}

/// Doc-commented unsafe fn: the `# Safety` section satisfies S1 even with
/// attributes stacked between the docs and the keyword.
///
/// # Safety
///
/// `ptr` must be valid for reads of one `u64`.
#[inline]
#[allow(clippy::missing_safety_doc)]
pub unsafe fn read_raw(ptr: *const u64) -> u64 {
    // SAFETY: validity is the caller's obligation per the `# Safety` section.
    unsafe { *ptr }
}

pub fn trailing(values: &[u64]) -> u64 {
    unsafe { *values.get_unchecked(0) } // SAFETY: fixture slice is non-empty.
}
