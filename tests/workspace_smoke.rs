//! Workspace smoke test: the facade re-exports resolve, and the
//! `BreakHammerConfig::paper_table2` doctest flow from the crate-level docs
//! runs end to end through `breakhammer_suite` paths only.

use breakhammer_suite::breakhammer::{BreakHammer, BreakHammerConfig};
use breakhammer_suite::dram::{ThreadId, TimingParams};
use breakhammer_suite::mitigation::ScoreAttribution;

/// Every facade module must re-export its layer crate. A function signature
/// naming one type per layer is a compile-time assertion of exactly that.
#[allow(clippy::too_many_arguments)]
fn facade_layers_resolve(
    _dram: Option<breakhammer_suite::dram::DramGeometry>,
    _mem: Option<breakhammer_suite::mem::AddressMapping>,
    _cpu: Option<breakhammer_suite::cpu::Trace>,
    _mitigation: Option<breakhammer_suite::mitigation::MechanismKind>,
    _core: Option<breakhammer_suite::breakhammer::BreakHammerConfig>,
    _sim: Option<breakhammer_suite::sim::SystemConfig>,
    _workloads: Option<breakhammer_suite::workloads::TraceGenerator>,
    _stats: Option<breakhammer_suite::stats::AppPerf>,
) {
}

#[test]
fn facade_reexports_compile() {
    facade_layers_resolve(None, None, None, None, None, None, None, None);
}

#[test]
fn paper_table2_flow_runs_end_to_end() {
    // The same flow as the crate-level doctest in src/lib.rs, kept as a
    // plain test so a doctest regression cannot slip through a test runner
    // that skips doctests.
    let timing = TimingParams::ddr5_4800();
    let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
    let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
    bh.on_activation(ThreadId(0), 0);
    bh.on_preventive_action(0);
    assert!(bh.score(ThreadId(0)) > 0.0);
}
