//! Workload characterisation (Table 3 of the paper).
//!
//! For each workload, Table 3 reports the row-buffer misses per
//! kilo-instruction (RBMPKI) and the average number of DRAM rows receiving
//! more than 512, 128 and 64 activations within a 64 ms window. This module
//! computes the same quantities directly from a trace by replaying it against
//! an idealised per-bank open-row model: an access to a row different from
//! the bank's currently-open row counts as one activation.

use bh_cpu::Trace;
use bh_dram::DramGeometry;
use bh_mem::AddressMapping;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Characterisation of one workload over one observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCharacteristics {
    /// Workload name.
    pub name: String,
    /// Row-buffer misses (activations) per kilo-instruction.
    pub rbmpki: f64,
    /// Rows with more than 512 activations in the window.
    pub rows_over_512: usize,
    /// Rows with more than 128 activations in the window.
    pub rows_over_128: usize,
    /// Rows with more than 64 activations in the window.
    pub rows_over_64: usize,
    /// Total activations observed in the window.
    pub activations: u64,
    /// Instructions covered by the window.
    pub instructions: u64,
}

/// Replays `trace` (cyclically) for `window_instructions` instructions and
/// reports its Table 3 characteristics.
///
/// # Panics
/// Panics if `window_instructions` is zero.
pub fn characterize(
    name: &str,
    trace: &Trace,
    geometry: &DramGeometry,
    mapping: AddressMapping,
    window_instructions: u64,
) -> WorkloadCharacteristics {
    assert!(window_instructions > 0, "the observation window must be non-empty");
    // BTreeMaps, not HashMaps: characterisation feeds table output, and the
    // digest-pinned crates ban hash iteration order outright (bh_analyze D1).
    let mut open_rows: BTreeMap<usize, usize> = BTreeMap::new();
    let mut row_activations: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut instructions = 0u64;
    let mut activations = 0u64;
    let mut index = 0usize;
    while instructions < window_instructions {
        let entry = trace.entry(index);
        index += 1;
        instructions += entry.instructions();
        let loc = mapping.decode(entry.addr, geometry);
        let bank = geometry.flat_bank(loc.bank);
        let open = open_rows.insert(bank, loc.row);
        if open != Some(loc.row) {
            activations += 1;
            *row_activations.entry((bank, loc.row)).or_insert(0) += 1;
        }
    }
    let count_over = |threshold: u64| row_activations.values().filter(|c| **c > threshold).count();
    WorkloadCharacteristics {
        name: name.to_string(),
        rbmpki: activations as f64 * 1000.0 / instructions as f64,
        rows_over_512: count_over(512),
        rows_over_128: count_over(128),
        rows_over_64: count_over(64),
        activations,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::BenignProfile;
    use bh_cpu::TraceEntry;
    use bh_dram::PhysAddr;

    #[test]
    fn single_row_stream_counts_one_activation() {
        // Consecutive accesses to the same row only activate it once.
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::paper_default();
        let entries: Vec<TraceEntry> =
            (0..4).map(|i| TraceEntry::load(9, PhysAddr(i * 64))).collect();
        let trace = bh_cpu::Trace::new(entries);
        let c = characterize("stream", &trace, &g, m, 40);
        assert_eq!(c.activations, 1);
        assert!(c.rbmpki < 1000.0 / 40.0 + 1.0);
    }

    #[test]
    fn alternating_rows_activate_on_every_access() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::paper_default();
        // Two addresses in the same bank but different rows.
        let row_stride = g.row_bytes() as u64 * g.banks_per_channel() as u64;
        let entries =
            vec![TraceEntry::load(0, PhysAddr(0)), TraceEntry::load(0, PhysAddr(row_stride))];
        let trace = bh_cpu::Trace::new(entries);
        let c = characterize("pingpong", &trace, &g, m, 1000);
        // Every access is an activation (the two rows conflict), unless the
        // mapping put them in different banks, in which case only 2 occur.
        assert!(c.activations == 1000 || c.activations == 2, "activations {}", c.activations);
    }

    #[test]
    fn hot_row_profiles_show_more_hot_rows_than_streaming_profiles() {
        let gen = TraceGenerator::paper_default();
        let g = gen.geometry().clone();
        let m = gen.mapping();
        let window = 2_000_000u64;
        let mcf = BenignProfile::by_name("mcf").unwrap();
        let libq = BenignProfile::by_name("libquantum").unwrap();
        let mcf_trace = gen.benign(&mcf, 30_000, 1);
        let libq_trace = gen.benign(&libq, 30_000, 1);
        let c_mcf = characterize("mcf", &mcf_trace, &g, m, window);
        let c_libq = characterize("libquantum", &libq_trace, &g, m, window);
        assert!(c_mcf.rows_over_64 > c_libq.rows_over_64);
        assert!(c_mcf.rbmpki > 20.0, "mcf rbmpki {}", c_mcf.rbmpki);
        // The streaming workload has high intensity but few hot rows
        // (matching libquantum's row in Table 3).
        assert!(c_libq.rows_over_512 == 0);
        assert!(c_libq.rbmpki > 5.0);
    }

    #[test]
    fn rbmpki_ordering_tracks_intensity_classes() {
        let gen = TraceGenerator::paper_default();
        let g = gen.geometry().clone();
        let m = gen.mapping();
        let window = 500_000u64;
        let high = BenignProfile::by_name("zeusmp").unwrap();
        let low = BenignProfile::by_name("povray").unwrap();
        let c_high = characterize("zeusmp", &gen.benign(&high, 20_000, 2), &g, m, window);
        let c_low = characterize("povray", &gen.benign(&low, 20_000, 2), &g, m, window);
        assert!(c_high.rbmpki > 4.0 * c_low.rbmpki);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_rejected() {
        let gen = TraceGenerator::paper_default();
        let p = BenignProfile::by_name("mcf").unwrap();
        let t = gen.benign(&p, 10, 0);
        let _ = characterize("x", &t, gen.geometry(), gen.mapping(), 0);
    }
}
