//! The [`TriggerMechanism`] trait implemented by every RowHammer mitigation
//! mechanism, and the [`MechanismKind`] factory used by the experiment
//! harness to instantiate mechanisms by name.

use crate::action::{ActionSink, ActivationEvent, PreventiveAction, ScoreAttribution};
use crate::{
    aqua::Aqua, blockhammer::BlockHammer, graphene::Graphene, hydra::Hydra, para::Para, prac::Prac,
    rega::Rega, rfm::Rfm, twice::Twice,
};
use bh_dram::{Cycle, DramGeometry, RowAddr, TimingAdjustment, TimingParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A RowHammer mitigation mechanism's trigger algorithm.
///
/// The memory controller feeds every row activation to the mechanism via
/// [`TriggerMechanism::on_activation`]; the mechanism pushes the
/// RowHammer-preventive actions it wants performed into the caller-owned
/// [`ActionSink`] (see the sink's documentation for the ownership and
/// reentrancy contract). BlockHammer additionally blocks scheduling of
/// requests to blacklisted rows via [`TriggerMechanism::is_blocked`], and
/// REGA adjusts DRAM timing via [`TriggerMechanism::timing_adjustment`].
pub trait TriggerMechanism: fmt::Debug + Send {
    /// Human-readable mechanism name (e.g. `"Graphene"`).
    fn name(&self) -> &'static str;

    /// The mechanism's kind tag.
    fn kind(&self) -> MechanismKind;

    /// Observes one row activation and appends any preventive actions to
    /// perform now to `sink`. This is the simulator's per-activation hot
    /// path: implementations must not allocate in the steady state (the sink
    /// reuses its buffers; trackers must not rehash or grow after warm-up).
    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink);

    /// Convenience wrapper around [`TriggerMechanism::on_activation`] that
    /// collects the actions into a fresh `Vec`. Allocates per call — meant
    /// for tests, examples and offline analysis, never for the simulation
    /// loop.
    fn on_activation_vec(&mut self, event: &ActivationEvent) -> Vec<PreventiveAction> {
        let mut sink = ActionSink::default();
        self.on_activation(event, &mut sink);
        sink.to_actions()
    }

    /// True if a request that would activate `row` must not be scheduled at
    /// `cycle` (BlockHammer's blacklisting throttle). The default never blocks.
    fn is_blocked(&self, row: RowAddr, cycle: Cycle) -> bool {
        let _ = (row, cycle);
        false
    }

    /// True if this mechanism can ever block activations (i.e.
    /// [`TriggerMechanism::is_blocked`] can return true). Schedulers use this
    /// to skip per-request blacklist queries for the mechanisms that never
    /// block. The default is false.
    fn may_block(&self) -> bool {
        false
    }

    /// Earliest cycle at or after `cycle` at which an activation of `row` is
    /// no longer blocked — i.e. the first `c >= cycle` with
    /// `!is_blocked(row, c)`, assuming no further activations are observed in
    /// between. The event-driven scheduler uses this horizon to jump the
    /// clock across a blocking delay instead of re-polling
    /// [`TriggerMechanism::is_blocked`] every cycle. The default (no
    /// blocking) returns `cycle`.
    fn blocked_until(&self, row: RowAddr, cycle: Cycle) -> Cycle {
        let _ = row;
        cycle
    }

    /// Number of rows the mechanism is currently blocking (BlockHammer's
    /// live blacklist size). Diagnostic only: feeds the forward-progress
    /// watchdog's livelock snapshot, where "how many rows does the mechanism
    /// hold blocked right now" is exactly the state a throttling livelock
    /// hides in. The default (mechanisms that never block) is 0.
    fn blocked_rows(&self) -> usize {
        0
    }

    /// DRAM timing adjustment the mechanism requires (REGA). The default is no
    /// adjustment.
    fn timing_adjustment(&self) -> TimingAdjustment {
        TimingAdjustment::none()
    }

    /// Processor/memory-controller die storage required by the mechanism, in
    /// bits (used for the area comparisons of §3 and §8.3).
    fn storage_bits(&self) -> u64;

    /// How BreakHammer should attribute RowHammer-preventive scores for this
    /// mechanism (§4.1).
    fn attribution(&self) -> ScoreAttribution {
        ScoreAttribution::ProportionalToActivations
    }
}

/// Identifier of a mitigation mechanism, used by configuration files and the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// No RowHammer mitigation (the "no defense" baseline).
    None,
    /// PARA: probabilistic adjacent-row activation [Kim+, ISCA'14].
    Para,
    /// Graphene: Misra–Gries aggressor tracking [Park+, MICRO'20].
    Graphene,
    /// Hydra: hybrid group/per-row tracking with a table in DRAM [Qureshi+, ISCA'22].
    Hydra,
    /// TWiCe: pruned time-window counters [Lee+, ISCA'19].
    Twice,
    /// AQUA: quarantine-based aggressor row migration [Saxena+, MICRO'22].
    Aqua,
    /// REGA: refresh-generating activations via a second row buffer [Marazzi+, S&P'23].
    Rega,
    /// Periodic Refresh Management commands (DDR5 RFM) \[JEDEC\].
    Rfm,
    /// Per Row Activation Counting with back-off (DDR5 PRAC) \[JEDEC\].
    Prac,
    /// BlockHammer: blacklisting-based access throttling [Yağlıkçı+, HPCA'21]
    /// (the paper's throttling-based comparison point, §8.3).
    BlockHammer,
}

impl MechanismKind {
    /// The eight mechanisms the paper pairs BreakHammer with (Figs. 6–17).
    pub fn paper_mechanisms() -> [MechanismKind; 8] {
        [
            MechanismKind::Para,
            MechanismKind::Graphene,
            MechanismKind::Hydra,
            MechanismKind::Twice,
            MechanismKind::Aqua,
            MechanismKind::Rega,
            MechanismKind::Rfm,
            MechanismKind::Prac,
        ]
    }

    /// The four mechanisms used in the motivation study (Fig. 2).
    pub fn motivation_mechanisms() -> [MechanismKind; 4] {
        [MechanismKind::Hydra, MechanismKind::Rfm, MechanismKind::Para, MechanismKind::Aqua]
    }

    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MechanismKind::None => "NoDefense",
            MechanismKind::Para => "PARA",
            MechanismKind::Graphene => "Graphene",
            MechanismKind::Hydra => "Hydra",
            MechanismKind::Twice => "TWiCe",
            MechanismKind::Aqua => "AQUA",
            MechanismKind::Rega => "REGA",
            MechanismKind::Rfm => "RFM",
            MechanismKind::Prac => "PRAC",
            MechanismKind::BlockHammer => "BlockHammer",
        }
    }

    /// Parses a mechanism name (case-insensitive).
    pub fn parse(name: &str) -> Option<MechanismKind> {
        let lower = name.to_ascii_lowercase();
        Some(match lower.as_str() {
            "none" | "nodefense" | "no-defense" | "baseline" => MechanismKind::None,
            "para" => MechanismKind::Para,
            "graphene" => MechanismKind::Graphene,
            "hydra" => MechanismKind::Hydra,
            "twice" => MechanismKind::Twice,
            "aqua" => MechanismKind::Aqua,
            "rega" => MechanismKind::Rega,
            "rfm" => MechanismKind::Rfm,
            "prac" => MechanismKind::Prac,
            "blockhammer" => MechanismKind::BlockHammer,
            _ => return None,
        })
    }

    /// Instantiates the mechanism for the given system configuration.
    ///
    /// `nrh` is the RowHammer threshold the mechanism must protect against and
    /// `seed` feeds the probabilistic mechanisms (PARA).
    pub fn build(
        self,
        geometry: &DramGeometry,
        timing: &TimingParams,
        nrh: u64,
        seed: u64,
    ) -> Box<dyn TriggerMechanism> {
        let blast_radius = 1;
        match self {
            MechanismKind::None => Box::new(NoMitigation::new()),
            MechanismKind::Para => Box::new(Para::new(geometry.clone(), nrh, blast_radius, seed)),
            MechanismKind::Graphene => {
                Box::new(Graphene::new(geometry.clone(), timing, nrh, blast_radius))
            }
            MechanismKind::Hydra => {
                Box::new(Hydra::new(geometry.clone(), timing, nrh, blast_radius))
            }
            MechanismKind::Twice => {
                Box::new(Twice::new(geometry.clone(), timing, nrh, blast_radius))
            }
            MechanismKind::Aqua => Box::new(Aqua::new(geometry.clone(), timing, nrh)),
            MechanismKind::Rega => Box::new(Rega::new(nrh)),
            MechanismKind::Rfm => Box::new(Rfm::new(geometry.clone(), nrh)),
            MechanismKind::Prac => Box::new(Prac::new(geometry.clone(), nrh)),
            MechanismKind::BlockHammer => {
                Box::new(BlockHammer::new(geometry.clone(), timing, nrh, blast_radius))
            }
        }
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The "no defense" baseline: never triggers any preventive action.
#[derive(Debug, Clone, Default)]
pub struct NoMitigation;

impl NoMitigation {
    /// Creates the no-op mechanism.
    pub fn new() -> Self {
        NoMitigation
    }
}

impl TriggerMechanism for NoMitigation {
    fn name(&self) -> &'static str {
        "NoDefense"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::None
    }

    fn on_activation(&mut self, _event: &ActivationEvent, _sink: &mut ActionSink) {}

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_dram::{BankAddr, ThreadId};

    #[test]
    fn no_mitigation_never_acts() {
        let mut m = NoMitigation::new();
        let ev = ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row: 1 },
            thread: ThreadId(0),
            cycle: 0,
        };
        let mut sink = ActionSink::default();
        for _ in 0..10_000 {
            m.on_activation(&ev, &mut sink);
            assert!(sink.is_empty());
        }
        assert!(m.on_activation_vec(&ev).is_empty());
        assert_eq!(m.storage_bits(), 0);
        assert_eq!(m.kind(), MechanismKind::None);
        assert_eq!(m.name(), "NoDefense");
        assert!(!m.is_blocked(ev.row, 0));
        assert!(m.timing_adjustment().is_none());
        assert_eq!(m.attribution(), ScoreAttribution::ProportionalToActivations);
    }

    #[test]
    fn kind_parsing_roundtrips() {
        for kind in [
            MechanismKind::None,
            MechanismKind::Para,
            MechanismKind::Graphene,
            MechanismKind::Hydra,
            MechanismKind::Twice,
            MechanismKind::Aqua,
            MechanismKind::Rega,
            MechanismKind::Rfm,
            MechanismKind::Prac,
            MechanismKind::BlockHammer,
        ] {
            assert_eq!(MechanismKind::parse(kind.label()), Some(kind), "{kind}");
            assert_eq!(MechanismKind::parse(&kind.label().to_lowercase()), Some(kind));
        }
        assert_eq!(MechanismKind::parse("not-a-mechanism"), None);
    }

    #[test]
    fn paper_mechanism_list_matches_evaluation_section() {
        let m = MechanismKind::paper_mechanisms();
        assert_eq!(m.len(), 8);
        assert!(!m.contains(&MechanismKind::BlockHammer));
        assert!(!m.contains(&MechanismKind::None));
        assert_eq!(MechanismKind::motivation_mechanisms().len(), 4);
    }

    #[test]
    fn factory_builds_every_mechanism() {
        let geom = DramGeometry::tiny();
        let timing = TimingParams::fast_test();
        for kind in [
            MechanismKind::None,
            MechanismKind::Para,
            MechanismKind::Graphene,
            MechanismKind::Hydra,
            MechanismKind::Twice,
            MechanismKind::Aqua,
            MechanismKind::Rega,
            MechanismKind::Rfm,
            MechanismKind::Prac,
            MechanismKind::BlockHammer,
        ] {
            let mech = kind.build(&geom, &timing, 1024, 7);
            assert_eq!(mech.kind(), kind);
            assert!(!mech.name().is_empty());
        }
    }
}
