//! Cross-crate integration tests for the paper's security claims (§5.1):
//! attaching BreakHammer to a mitigation mechanism must not weaken the
//! mechanism's RowHammer protection — under attack, the victim-disturbance
//! model must never record a would-be bitflip for any deterministic
//! mechanism, with or without BreakHammer.

use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{System, SystemConfig};
use breakhammer_suite::workloads::{AttackerProfile, MixBuilder, MixClass, TraceGenerator};

fn attacked_traces(config: &SystemConfig) -> breakhammer_suite::workloads::WorkloadMix {
    let generator = TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default());
    let mut builder = MixBuilder::new(generator)
        // A tight double-sided hammer concentrates every activation on one
        // victim row, which is the stress case for the protection invariant.
        .with_attacker(AttackerProfile { bubbles: 0, ..AttackerProfile::double_sided() });
    builder.benign_entries = 3_000;
    builder.attacker_entries = 3_000;
    builder.build(MixClass::attack_classes()[0], 0, 13)
}

fn run(
    mechanism: MechanismKind,
    breakhammer: bool,
    nrh: u64,
) -> breakhammer_suite::sim::SimulationResult {
    let mut config = SystemConfig::fast_test(mechanism, nrh, breakhammer);
    config.instructions_per_core = 8_000;
    let mix = attacked_traces(&config);
    System::with_compiled(config, &mix.traces, mix.benign_threads()).run()
}

#[test]
fn deterministic_mechanisms_prevent_bitflips_with_and_without_breakhammer() {
    // PARA is probabilistic and REGA's protection happens inside the DRAM
    // chip (not modelled by the victim tracker), so the deterministic
    // controller-visible mechanisms are checked here.
    let deterministic = [
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ];
    for mechanism in deterministic {
        for breakhammer in [false, true] {
            if mechanism == MechanismKind::BlockHammer && breakhammer {
                // The paper compares against BlockHammer; it does not pair it.
                continue;
            }
            let result = run(mechanism, breakhammer, 128);
            assert_eq!(
                result.bitflips, 0,
                "{mechanism} (BreakHammer: {breakhammer}) allowed bitflips"
            );
        }
    }
}

#[test]
fn an_unprotected_system_does_experience_bitflips_under_attack() {
    let result = run(MechanismKind::None, false, 128);
    assert!(
        result.bitflips > 0,
        "the attack must be strong enough to flip bits when no mitigation is present"
    );
}

#[test]
fn breakhammer_reduces_preventive_actions_without_weakening_protection() {
    let without = run(MechanismKind::Graphene, false, 128);
    let with = run(MechanismKind::Graphene, true, 128);
    assert_eq!(with.bitflips, 0);
    assert_eq!(without.bitflips, 0);
    assert!(
        with.preventive_actions <= without.preventive_actions,
        "BreakHammer must not increase preventive actions ({} vs {})",
        with.preventive_actions,
        without.preventive_actions
    );
}

#[test]
fn rowhammer_threshold_scaling_increases_preventive_work() {
    // As N_RH decreases the mitigation must work harder (Fig. 10's trend).
    let relaxed = run(MechanismKind::Graphene, false, 512);
    let strict = run(MechanismKind::Graphene, false, 64);
    assert!(
        strict.preventive_actions > relaxed.preventive_actions,
        "lower N_RH must trigger more preventive actions ({} vs {})",
        strict.preventive_actions,
        relaxed.preventive_actions
    );
}
