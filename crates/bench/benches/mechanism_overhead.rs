//! Criterion micro-benchmark: per-activation cost of each mitigation
//! mechanism's trigger algorithm (the work added to the memory controller's
//! activation path), at paper-scale table sizes (`DramGeometry::paper_ddr5`,
//! 64K rows × 32 banks).
//!
//! Two access patterns per mechanism:
//!
//! * `mechanism_on_activation/<name>` — a strided sweep over 4K rows at
//!   `N_RH = 1024`: mostly tracker hits and inserts, the common case.
//! * `mechanism_on_activation_churn/<name>` — a wide sweep over 64K distinct
//!   rows at `N_RH = 256`: tables run at capacity, so Misra–Gries eviction,
//!   spillover catch-up, TWiCe pruning and window resets dominate. This is
//!   the pattern that exposed the old `HashMap` + O(capacity) eviction-scan
//!   hot spot.
//!
//! The `bench_hotpath` binary (`cargo run --release -p bh-bench --bin
//! bench_hotpath`) runs the same measurements and records them in
//! `BENCH_hotpath.json` so the perf trajectory is tracked in-repo.

use bh_dram::{BankAddr, DramGeometry, RowAddr, ThreadId, TimingParams};
use bh_mitigation::{ActionSink, ActivationEvent, MechanismKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const ALL_MECHANISMS: [MechanismKind; 9] = [
    MechanismKind::Para,
    MechanismKind::Graphene,
    MechanismKind::Hydra,
    MechanismKind::Twice,
    MechanismKind::Aqua,
    MechanismKind::Rega,
    MechanismKind::Rfm,
    MechanismKind::Prac,
    MechanismKind::BlockHammer,
];

fn bench_mechanisms(c: &mut Criterion) {
    let geometry = DramGeometry::paper_ddr5();
    let timing = TimingParams::ddr5_4800();

    let mut group = c.benchmark_group("mechanism_on_activation");
    for kind in ALL_MECHANISMS {
        group.bench_function(kind.label(), |b| {
            let mut mechanism = kind.build(&geometry, &timing, 1024, 7);
            let mut sink = ActionSink::default();
            let mut cycle = 0u64;
            let mut row = 0usize;
            b.iter(|| {
                cycle += 30;
                row = (row + 17) % 4096;
                let event = ActivationEvent {
                    row: RowAddr {
                        bank: BankAddr { rank: 0, bank_group: (row % 8), bank: 0 },
                        row,
                    },
                    thread: ThreadId(row % 4),
                    cycle,
                };
                sink.clear();
                mechanism.on_activation(black_box(&event), &mut sink);
                black_box(sink.len())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mechanism_on_activation_churn");
    for kind in ALL_MECHANISMS {
        group.bench_function(kind.label(), |b| {
            let mut mechanism = kind.build(&geometry, &timing, 256, 7);
            let mut sink = ActionSink::default();
            let mut cycle = 0u64;
            let mut row = 0usize;
            b.iter(|| {
                cycle += 30;
                // Large-stride sweep over the full row space: tables run at
                // capacity and the eviction/spillover paths stay hot.
                row = (row + 6151) % 65536;
                let event = ActivationEvent {
                    row: RowAddr {
                        bank: BankAddr { rank: 0, bank_group: (row % 8), bank: 0 },
                        row,
                    },
                    thread: ThreadId(row % 4),
                    cycle,
                };
                sink.clear();
                mechanism.on_activation(black_box(&event), &mut sink);
                black_box(sink.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
