//! Figure 14: BreakHammer's impact on unfairness for all-benign four-core
//! workloads at N_RH = 1K, per workload-mix class — normalized to the same
//! mechanism without BreakHammer. Also reports how often a benign application
//! was (mis)identified as a suspect (§8.2 reports 2.2% of simulations at 1K).

use bh_bench::{maybe_print_config, mean_of, paper_config, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, fmt_pct, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let nrh = bh_bench::figure_nrh(1024);
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms = MechanismKind::paper_mechanisms();
    let mut records = Vec::new();
    for &mech in &mechanisms {
        for bh in [false, true] {
            let config = paper_config(mech, nrh, bh, &scale);
            records.extend(campaign.run(&config, /*attack=*/ false));
        }
    }

    let mut table = Table::new(["mechanism", "normalized_unfairness", "benign_suspect_rate"]);
    let mut misidentified = 0usize;
    let mut with_bh_runs = 0usize;
    for &mech in &mechanisms {
        let with = select(&records, mech, nrh, true);
        let without = select(&records, mech, nrh, false);
        if with.is_empty() || without.is_empty() {
            continue;
        }
        let ratio = mean_of(&with, |r| r.max_slowdown) / mean_of(&without, |r| r.max_slowdown);
        let suspects = with.iter().filter(|r| r.benign_misidentified).count();
        misidentified += suspects;
        with_bh_runs += with.len();
        table.push_row([
            format!("{mech}+BH"),
            fmt3(ratio),
            fmt_pct(suspects as f64 / with.len() as f64),
        ]);
    }
    print_results("Figure 14: normalized unfairness on all-benign workloads (N_RH = 1K)", &table);
    println!(
        "benign application identified as suspect in {} of the simulations (paper: 2.2% at N_RH = 1K)",
        fmt_pct(misidentified as f64 / with_bh_runs.max(1) as f64)
    );
}
