//! Physical-address to DRAM-coordinate mapping schemes.
//!
//! The paper's memory controller uses the MOP ("Minimalist Open Page")
//! mapping [Kaseridis et al., MICRO 2011], which stripes small bursts of
//! consecutive cache lines across banks so that sequential streams exploit a
//! little row-buffer locality while still spreading load over all banks. A
//! simple row-interleaved scheme (`RoBaRaCoCh`) is provided for comparison
//! and for tests.

use bh_dram::{BankAddr, DramGeometry, DramLocation, PhysAddr};
use serde::{Deserialize, Serialize};

/// Address-mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Minimalist Open Page: `row | col_high | rank | bank | bank-group |
    /// col_low(MOP burst) | line-offset` from MSB to LSB.
    Mop {
        /// Number of consecutive cache lines mapped to the same row before
        /// moving to the next bank (the "MOP burst"); must be a power of two.
        burst_lines: usize,
    },
    /// Row : Bank : Rank : Column : Channel interleaving (pages stay in one
    /// bank; consecutive lines share a row).
    RoBaRaCoCh,
}

impl AddressMapping {
    /// The paper's default mapping (MOP with a burst of 4 cache lines).
    pub fn paper_default() -> Self {
        AddressMapping::Mop { burst_lines: 4 }
    }

    /// Decodes a physical address into DRAM coordinates for `geometry`.
    ///
    /// Addresses beyond the channel capacity wrap around (the simulator's
    /// synthetic traces may use a larger virtual footprint than the simulated
    /// DRAM).
    pub fn decode(&self, addr: PhysAddr, geometry: &DramGeometry) -> DramLocation {
        let line = addr.0 / geometry.column_bytes as u64;
        match *self {
            AddressMapping::Mop { burst_lines } => {
                assert!(burst_lines.is_power_of_two(), "MOP burst must be a power of two");
                let mut x = line;
                let col_low = (x % burst_lines as u64) as usize;
                x /= burst_lines as u64;
                let bank_group = (x % geometry.bank_groups as u64) as usize;
                x /= geometry.bank_groups as u64;
                let bank = (x % geometry.banks_per_group as u64) as usize;
                x /= geometry.banks_per_group as u64;
                let rank = (x % geometry.ranks as u64) as usize;
                x /= geometry.ranks as u64;
                let col_high_per_row = (geometry.columns_per_row / burst_lines).max(1) as u64;
                let col_high = (x % col_high_per_row) as usize;
                x /= col_high_per_row;
                let row = (x % geometry.rows_per_bank as u64) as usize;
                DramLocation {
                    channel: 0,
                    bank: BankAddr { rank, bank_group, bank },
                    row,
                    column: col_high * burst_lines + col_low,
                }
            }
            AddressMapping::RoBaRaCoCh => {
                let mut x = line;
                let column = (x % geometry.columns_per_row as u64) as usize;
                x /= geometry.columns_per_row as u64;
                let rank = (x % geometry.ranks as u64) as usize;
                x /= geometry.ranks as u64;
                let bank = (x % geometry.banks_per_group as u64) as usize;
                x /= geometry.banks_per_group as u64;
                let bank_group = (x % geometry.bank_groups as u64) as usize;
                x /= geometry.bank_groups as u64;
                let row = (x % geometry.rows_per_bank as u64) as usize;
                DramLocation { channel: 0, bank: BankAddr { rank, bank_group, bank }, row, column }
            }
        }
    }

    /// Builds a physical address that decodes to the given coordinates —
    /// the inverse of [`AddressMapping::decode`], used by trace generators to
    /// target specific rows and banks (e.g. the RowHammer attacker).
    pub fn encode(&self, loc: &DramLocation, geometry: &DramGeometry) -> PhysAddr {
        let line: u64 = match *self {
            AddressMapping::Mop { burst_lines } => {
                let burst = burst_lines as u64;
                let col_low = (loc.column % burst_lines) as u64;
                let col_high = (loc.column / burst_lines) as u64;
                let col_high_per_row = (geometry.columns_per_row / burst_lines).max(1) as u64;
                let mut x = loc.row as u64;
                x = x * col_high_per_row + col_high;
                x = x * geometry.ranks as u64 + loc.bank.rank as u64;
                x = x * geometry.banks_per_group as u64 + loc.bank.bank as u64;
                x = x * geometry.bank_groups as u64 + loc.bank.bank_group as u64;
                x * burst + col_low
            }
            AddressMapping::RoBaRaCoCh => {
                let mut x = loc.row as u64;
                x = x * geometry.bank_groups as u64 + loc.bank.bank_group as u64;
                x = x * geometry.banks_per_group as u64 + loc.bank.bank as u64;
                x = x * geometry.ranks as u64 + loc.bank.rank as u64;
                x * geometry.columns_per_row as u64 + loc.column as u64
            }
        };
        PhysAddr(line * geometry.column_bytes as u64)
    }
}

impl Default for AddressMapping {
    fn default() -> Self {
        AddressMapping::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mop_stripes_consecutive_bursts_across_bank_groups() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::paper_default();
        let line_bytes = g.column_bytes as u64;
        let a = m.decode(PhysAddr(0), &g);
        let b = m.decode(PhysAddr(4 * line_bytes), &g);
        // After one MOP burst (4 lines) the next lines land in a different
        // bank group, same row index.
        assert_ne!(a.bank.bank_group, b.bank.bank_group);
        assert_eq!(a.row, b.row);
        // Lines within a burst share bank and row and are consecutive columns.
        let c = m.decode(PhysAddr(line_bytes), &g);
        assert_eq!(a.bank, c.bank);
        assert_eq!(a.row, c.row);
        assert_eq!(c.column, a.column + 1);
    }

    #[test]
    fn robaracoch_keeps_a_page_in_one_row() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::RoBaRaCoCh;
        let base = 123 * g.row_bytes() as u64 * 64;
        for i in 0..16u64 {
            let loc = m.decode(PhysAddr(base + i * 64), &g);
            let first = m.decode(PhysAddr(base), &g);
            assert_eq!(loc.bank, first.bank);
            assert_eq!(loc.row, first.row);
        }
    }

    #[test]
    fn encode_decode_roundtrip_mop() {
        let g = DramGeometry::tiny();
        let m = AddressMapping::Mop { burst_lines: 4 };
        for rank in 0..g.ranks {
            for bg in 0..g.bank_groups {
                for bank in 0..g.banks_per_group {
                    for row in [0usize, 1, 63, 127] {
                        for column in [0usize, 3, 7, 15] {
                            let loc = DramLocation {
                                channel: 0,
                                bank: BankAddr { rank, bank_group: bg, bank },
                                row,
                                column,
                            };
                            let addr = m.encode(&loc, &g);
                            assert_eq!(m.decode(addr, &g), loc, "at {loc}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_robaracoch() {
        let g = DramGeometry::tiny();
        let m = AddressMapping::RoBaRaCoCh;
        for row in [0usize, 5, 127] {
            for column in [0usize, 9] {
                let loc = DramLocation {
                    channel: 0,
                    bank: BankAddr { rank: 1, bank_group: 1, bank: 0 },
                    row,
                    column,
                };
                assert_eq!(m.decode(m.encode(&loc, &g), &g), loc);
            }
        }
    }

    #[test]
    fn distinct_lines_map_to_distinct_locations() {
        let g = DramGeometry::tiny();
        let m = AddressMapping::paper_default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let loc = m.decode(PhysAddr(i * 64), &g);
            assert!(seen.insert((loc.bank, loc.row, loc.column)), "collision at line {i}");
        }
    }

    #[test]
    fn addresses_inside_line_share_location() {
        let g = DramGeometry::paper_ddr5();
        let m = AddressMapping::paper_default();
        assert_eq!(m.decode(PhysAddr(0x1000), &g), m.decode(PhysAddr(0x103f), &g));
    }
}
