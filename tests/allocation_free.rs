//! Verifies the zero-allocation guarantee of the activation hot path.
//!
//! An instrumented global allocator counts every heap allocation in this test
//! binary. Each mitigation mechanism — and the DRAM-side RowHammer
//! disturbance tracker — is warmed up with a deterministic activation stream
//! (long enough to reach every steady-state behaviour: table capacity,
//! Misra–Gries spillover and eviction, TWiCe pruning, window resets), then
//! driven through the *same* stream again while the allocation counter is
//! watched. A single allocation during the measured phase fails the test:
//! `on_activation` must not return heap-allocated action lists, and the flat
//! trackers must not rehash or grow once warm.
//!
//! This file contains exactly one `#[test]` on purpose: Rust runs tests in a
//! binary concurrently, and a second test's allocations would race the
//! counter. The counter is additionally **thread-local armed**: only
//! allocations made by the test thread, between `arm()` and `disarm()`, are
//! counted. Host/runtime background threads (the test harness's timeout
//! machinery, platform TLS teardown, an unrelated signal handler) allocate
//! at unpredictable moments, and with a process-global counter those
//! allocations registered as flaky "stray hot-path allocations" — the
//! historical `allocation_free` flake.

use breakhammer_suite::dram::{
    BankAddr, DramGeometry, RowAddr, RowHammerTracker, ThreadId, TimingParams,
};
use breakhammer_suite::mitigation::{ActionSink, ActivationEvent, MechanismKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts allocations (not deallocations: frees are harmless on a hot path,
/// and a steady-state path that frees must have allocated first anyway) —
/// but only on the thread that armed it.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether allocations on *this* thread are counted. `const`-initialised
    /// so reading it inside the allocator never itself allocates (a lazy TLS
    /// initialiser could recurse into `alloc`).
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

/// Starts counting allocations made by the calling thread.
fn arm() {
    ARMED.with(|armed| armed.set(true));
}

/// Stops counting allocations made by the calling thread.
fn disarm() {
    ARMED.with(|armed| armed.set(false));
}

/// True if the calling thread is currently armed. `try_with` covers the TLS
/// teardown window at thread exit, where the slot is already destroyed but
/// the runtime may still allocate.
fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: pure pass-through to the `System` allocator — every pointer and
// layout obligation of `GlobalAlloc` is delegated unchanged; the counter
// update touches an atomic only and never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards to `System.alloc` with the caller's layout unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: forwards to `System.dealloc` with the caller's pointer and
    // layout unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards to `System.realloc` with the caller's arguments
    // unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deterministic activation stream exercising hot rows (threshold triggers),
/// cold sweeps (table churn/eviction) and long cycle jumps (window resets and
/// TWiCe pruning). The stream is a pure function of the step index, so the
/// warm-up and measured phases replay identical state trajectories.
fn event_at(geometry: &DramGeometry, step: u64) -> ActivationEvent {
    let rows = geometry.rows_per_bank;
    let row = match step % 4 {
        // A hot aggressor pair: drives Graphene/TWiCe/PRAC triggers and AQUA
        // migrations.
        0 => 50,
        1 => 52,
        // A strided cold sweep: fills tables to capacity and keeps the
        // Misra-Gries eviction and spillover paths hot.
        2 => (step.wrapping_mul(31) % rows as u64) as usize,
        // A second hot-ish group for Hydra escalation.
        _ => 70 + (step % 8) as usize,
    };
    ActivationEvent {
        row: RowAddr {
            bank: BankAddr {
                rank: (step % 2) as usize,
                bank_group: ((step / 2) % 2) as usize,
                bank: ((step / 4) % 2) as usize,
            },
            row,
        },
        thread: ThreadId((step % 4) as usize),
        // ~tRC-spaced activations; crosses several fast_test refresh windows
        // over the course of the stream.
        cycle: step * 50,
    }
}

const WARMUP_STEPS: u64 = 60_000;
const MEASURED_STEPS: u64 = 60_000;

#[test]
fn activation_hot_path_is_allocation_free_after_warmup() {
    let geometry = DramGeometry::tiny();
    let timing = TimingParams::fast_test();

    for kind in [
        MechanismKind::None,
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ] {
        let mut mechanism = kind.build(&geometry, &timing, 64, 7);
        let mut sink = ActionSink::default();
        let mut total_actions = 0usize;
        for step in 0..WARMUP_STEPS {
            sink.clear();
            mechanism.on_activation(&event_at(&geometry, step), &mut sink);
            total_actions += sink.len();
        }

        arm();
        let before = allocations();
        for step in WARMUP_STEPS..WARMUP_STEPS + MEASURED_STEPS {
            sink.clear();
            mechanism.on_activation(&event_at(&geometry, step), &mut sink);
            total_actions += sink.len();
        }
        let allocated = allocations() - before;
        disarm();
        assert_eq!(
            allocated, 0,
            "{kind}: {allocated} heap allocation(s) in {MEASURED_STEPS} steady-state activations"
        );
        // Sanity: the stream really exercised the trigger paths (every
        // action-producing mechanism must have produced some).
        if !matches!(kind, MechanismKind::None | MechanismKind::Rega | MechanismKind::BlockHammer) {
            assert!(total_actions > 0, "{kind}: stream never triggered an action");
        }
    }

    // The DRAM-side disturbance tracker shares the per-ACT hot path. Victim
    // refreshes and periodic sweeps are interleaved so disturbance counters
    // stay bounded and no bitflip event is ever pushed.
    let mut tracker = RowHammerTracker::new(geometry.clone(), 1 << 20, 2);
    let drive = |tracker: &mut RowHammerTracker, from: u64, to: u64| {
        for step in from..to {
            let event = event_at(&geometry, step);
            tracker.on_activate(event.row, event.cycle);
            if step % 64 == 0 {
                tracker.on_row_refreshed(RowAddr { bank: event.row.bank, row: 51 });
                tracker.on_periodic_refresh((step % 2) as usize, 0, geometry.rows_per_bank);
            }
            if step % 977 == 0 {
                tracker.service_rfm(event.row.bank, 4);
            }
        }
    };
    drive(&mut tracker, 0, WARMUP_STEPS);
    arm();
    let before = allocations();
    drive(&mut tracker, WARMUP_STEPS, WARMUP_STEPS + MEASURED_STEPS);
    let allocated = allocations() - before;
    disarm();
    assert_eq!(
        allocated, 0,
        "RowHammerTracker: {allocated} heap allocation(s) in {MEASURED_STEPS} steady-state \
         activations"
    );
    assert_eq!(tracker.bitflip_count(), 0, "threshold chosen so no bitflip is recorded");
}
