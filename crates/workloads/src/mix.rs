//! Workload-mix construction (§7 of the paper).
//!
//! The paper evaluates 90 four-core mixes of benign applications grouped by
//! memory intensity (HHHH, HHMM, MMMM, HHLL, MMLL, LLLL — 15 mixes each) and
//! 90 four-core mixes in which one application is replaced by the attacker
//! (HHHA, HHMA, MMMA, HLLA, MMLA, LLLA). This module builds those mixes from
//! the synthetic profile library, deterministically from a seed.

use crate::attacker::AttackerProfile;
use crate::compose::ComposedAttacker;
use crate::generator::TraceGenerator;
use crate::profile::{BenignProfile, IntensityClass};
use crate::scenario::AttackScenario;
use crate::victim::VictimRow;
use bh_cpu::CompiledTrace;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One slot of a four-core mix.
///
/// Marked `#[non_exhaustive]`: construct through [`SlotClass::benign`] /
/// [`SlotClass::attacker`] and match with a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SlotClass {
    /// A benign application of the given intensity class.
    Benign(IntensityClass),
    /// The attacker.
    Attacker,
}

impl SlotClass {
    /// A benign slot of the given intensity class.
    pub fn benign(class: IntensityClass) -> Self {
        SlotClass::Benign(class)
    }

    /// The attacker slot.
    pub fn attacker() -> Self {
        SlotClass::Attacker
    }

    /// Single-letter label (H/M/L/A).
    pub fn letter(self) -> char {
        match self {
            SlotClass::Benign(c) => c.letter(),
            SlotClass::Attacker => 'A',
        }
    }
}

/// A mix class: the intensity composition of the four cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixClass {
    /// The four slots.
    pub slots: [SlotClass; 4],
}

impl MixClass {
    /// Label such as `"HHMM"` or `"HHHA"`.
    pub fn label(&self) -> String {
        self.slots.iter().map(|s| s.letter()).collect()
    }

    /// True if one of the slots is the attacker.
    pub fn has_attacker(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, SlotClass::Attacker))
    }

    /// The six all-benign mix classes of §7 (HHHH, HHMM, MMMM, HHLL, MMLL,
    /// LLLL).
    pub fn benign_classes() -> Vec<MixClass> {
        use IntensityClass::*;
        use SlotClass::Benign;
        [
            [High, High, High, High],
            [High, High, Medium, Medium],
            [Medium, Medium, Medium, Medium],
            [High, High, Low, Low],
            [Medium, Medium, Low, Low],
            [Low, Low, Low, Low],
        ]
        .into_iter()
        .map(|cls| MixClass {
            slots: [Benign(cls[0]), Benign(cls[1]), Benign(cls[2]), Benign(cls[3])],
        })
        .collect()
    }

    /// The six attacker mix classes of §8.1 (HHHA, HHMA, MMMA, HLLA, MMLA,
    /// LLLA). The attacker always occupies the last core.
    pub fn attack_classes() -> Vec<MixClass> {
        use IntensityClass::*;
        use SlotClass::{Attacker, Benign};
        [
            [High, High, High],
            [High, High, Medium],
            [Medium, Medium, Medium],
            [High, Low, Low],
            [Medium, Medium, Low],
            [Low, Low, Low],
        ]
        .into_iter()
        .map(|cls| MixClass { slots: [Benign(cls[0]), Benign(cls[1]), Benign(cls[2]), Attacker] })
        .collect()
    }
}

/// A concrete four-core workload: one compiled trace per hardware thread.
///
/// Traces are compiled once at build time (per mix, seed and geometry) and
/// shared by reference from then on: cloning a `WorkloadMix` — e.g. to hand
/// it to every worker of a campaign matrix — bumps reference counts instead
/// of deep-copying tens of thousands of trace records per configuration.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// Mix name, e.g. `"HHMA-03"`.
    pub name: String,
    /// The mix class this workload belongs to.
    pub class: MixClass,
    /// Names of the applications on each core.
    pub app_names: Vec<String>,
    /// One compiled (shareable) trace per core.
    pub traces: Vec<CompiledTrace>,
    /// Index of the attacker core, if any.
    pub attacker_thread: Option<usize>,
    /// The rows holding victim data (declared by the attacker's
    /// [`VictimLayout`](crate::victim::VictimLayout)); empty for all-benign
    /// mixes. The simulator watches these and reports per-victim disturbance.
    pub victim_rows: Vec<VictimRow>,
    /// The attack-scenario tag this mix was built under, if any (matches the
    /// suffix in [`WorkloadMix::name`]).
    pub scenario: Option<String>,
    /// What counts as a successful attack on the victim rows (declared by the
    /// attacker's victim layout; the default for all-benign mixes).
    pub success_criterion: bh_dram::SuccessCriterion,
}

impl WorkloadMix {
    /// Number of cores in the mix.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Indices of the benign cores.
    pub fn benign_threads(&self) -> Vec<usize> {
        (0..self.cores()).filter(|i| Some(*i) != self.attacker_thread).collect()
    }
}

/// Builds workload mixes from the profile library.
#[derive(Debug, Clone)]
pub struct MixBuilder {
    generator: TraceGenerator,
    attacker: ComposedAttacker,
    /// The legacy profile the attacker was lowered from, if any — kept so the
    /// deprecated channel-scenario builders can retarget it.
    compat: Option<AttackerProfile>,
    /// Trace records generated per benign core.
    pub benign_entries: usize,
    /// Trace records generated for the attacker core.
    pub attacker_entries: usize,
    /// Optional scenario tag appended to mix names (e.g. `"chp0"` for a
    /// channel-pinned attacker), so scenario variants of the same class and
    /// index stay distinguishable in result tables. Defaults to the composed
    /// attacker's tag (`None` for compat-lowered attackers).
    scenario_suffix: Option<String>,
}

impl MixBuilder {
    /// Creates a builder for the paper's system configuration.
    pub fn new(generator: TraceGenerator) -> Self {
        let profile = AttackerProfile::paper_default();
        MixBuilder {
            generator,
            attacker: profile.compose(),
            compat: Some(profile),
            benign_entries: 20_000,
            attacker_entries: 8_000,
            scenario_suffix: None,
        }
    }

    /// Overrides the attacker with a legacy profile (lowered onto the
    /// composable framework; mix names stay untagged).
    pub fn with_attacker(mut self, attacker: AttackerProfile) -> Self {
        self.attacker = attacker.compose();
        self.compat = Some(attacker);
        self
    }

    /// Overrides the attacker with a composed pattern × placement × victims.
    /// The attacker's tag (if any) becomes the mix-name suffix.
    pub fn with_composed_attacker(mut self, attacker: ComposedAttacker) -> Self {
        self.attacker = attacker;
        self.compat = None;
        self
    }

    /// Configures the builder for a catalog scenario: its composed attacker,
    /// with the scenario name as the mix-name suffix.
    pub fn with_scenario(mut self, scenario: &AttackScenario) -> Self {
        self.scenario_suffix = Some(scenario.name.to_string());
        self.with_composed_attacker(scenario.attacker.clone())
    }

    /// Builds the `index`-th workload of `class`, deterministically from
    /// `seed`.
    pub fn build(&self, class: MixClass, index: usize, seed: u64) -> WorkloadMix {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(index as u64));
        let mut traces = Vec::with_capacity(4);
        let mut app_names = Vec::with_capacity(4);
        let mut attacker_thread = None;
        for (slot, spec) in class.slots.iter().enumerate() {
            match spec {
                SlotClass::Benign(intensity) => {
                    let candidates = BenignProfile::of_class(*intensity);
                    let profile = candidates
                        .choose(&mut rng)
                        .expect("profile library covers every class")
                        .clone();
                    let trace_seed = seed ^ ((index as u64) << 16) ^ ((slot as u64) << 32);
                    traces.push(
                        self.generator.benign(&profile, self.benign_entries, trace_seed).compile(),
                    );
                    app_names.push(profile.name.to_string());
                }
                SlotClass::Attacker => {
                    attacker_thread = Some(slot);
                    let trace_seed = seed ^ ((index as u64) << 16) ^ 0xdead;
                    traces.push(
                        self.attacker
                            .trace(
                                self.generator.geometry(),
                                self.generator.mapping(),
                                self.attacker_entries,
                                trace_seed,
                            )
                            .compile(),
                    );
                    app_names.push("attacker".to_string());
                }
            }
        }
        let scenario =
            self.scenario_suffix.clone().or_else(|| self.attacker.tag().map(String::from));
        let name = match &scenario {
            Some(suffix) => format!("{}-{suffix}-{index:02}", class.label()),
            None => format!("{}-{index:02}", class.label()),
        };
        let victim_rows = if attacker_thread.is_some() {
            self.attacker.victim_rows(self.generator.geometry())
        } else {
            Vec::new()
        };
        let success_criterion = if attacker_thread.is_some() {
            self.attacker.success_criterion()
        } else {
            bh_dram::SuccessCriterion::default()
        };
        WorkloadMix {
            name,
            class,
            app_names,
            traces,
            attacker_thread,
            victim_rows,
            scenario,
            success_criterion,
        }
    }

    /// Builds the channel-pinned attack scenario: the attacker concentrates
    /// its whole hammering pattern on memory channel `channel`.
    ///
    /// Deprecated: channel targeting is the placement trait's job — pin the
    /// placement instead, e.g.
    /// `builder.with_composed_attacker(ComposedAttacker::new(pattern,
    /// NeighborPlacement::pinned(channel)))`, or keep using an
    /// [`AttackerProfile`] with
    /// [`pinned_to_channel`](AttackerProfile::pinned_to_channel).
    ///
    /// # Panics
    /// Panics if the builder's attacker was set through
    /// [`MixBuilder::with_composed_attacker`] (there is no legacy profile to
    /// retarget).
    #[deprecated(note = "pin the placement instead (e.g. NeighborPlacement::pinned) and use \
                         MixBuilder::build")]
    pub fn build_channel_pinned(
        &self,
        class: MixClass,
        index: usize,
        seed: u64,
        channel: usize,
    ) -> WorkloadMix {
        let profile =
            self.compat.expect("channel-scenario builders need an AttackerProfile-based builder");
        let mut builder = self.clone().with_attacker(profile.pinned_to_channel(channel));
        builder.scenario_suffix = Some(format!("chp{channel}"));
        builder.build(class, index, seed)
    }

    /// Builds the channel-interleaved attack scenario: the attacker
    /// replicates its hammering pattern across every memory channel in turn.
    ///
    /// Deprecated: channel targeting is the placement trait's job — use an
    /// interleaved placement (e.g.
    /// [`NeighborPlacement::interleaved`](crate::placement::NeighborPlacement::interleaved))
    /// with [`MixBuilder::build`].
    ///
    /// # Panics
    /// Panics if the builder's attacker was set through
    /// [`MixBuilder::with_composed_attacker`] (there is no legacy profile to
    /// retarget).
    #[deprecated(note = "use an interleaved placement (e.g. NeighborPlacement::interleaved) and \
                         MixBuilder::build")]
    pub fn build_channel_interleaved(
        &self,
        class: MixClass,
        index: usize,
        seed: u64,
    ) -> WorkloadMix {
        let profile =
            self.compat.expect("channel-scenario builders need an AttackerProfile-based builder");
        let mut builder = self.clone().with_attacker(profile.interleaved_channels());
        builder.scenario_suffix = Some("chi".to_string());
        builder.build(class, index, seed)
    }

    /// Builds `per_class` workloads for each of the given classes (the paper
    /// uses 15 per class, 90 in total).
    pub fn build_suite(
        &self,
        classes: &[MixClass],
        per_class: usize,
        seed: u64,
    ) -> Vec<WorkloadMix> {
        let mut out = Vec::with_capacity(classes.len() * per_class);
        for class in classes {
            for index in 0..per_class {
                out.push(self.build(*class, index, seed));
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;

    fn builder() -> MixBuilder {
        let mut b = MixBuilder::new(TraceGenerator::paper_default());
        b.benign_entries = 2_000;
        b.attacker_entries = 1_000;
        b
    }

    #[test]
    fn class_labels_match_the_paper() {
        let benign: Vec<String> = MixClass::benign_classes().iter().map(MixClass::label).collect();
        assert_eq!(benign, vec!["HHHH", "HHMM", "MMMM", "HHLL", "MMLL", "LLLL"]);
        let attack: Vec<String> = MixClass::attack_classes().iter().map(MixClass::label).collect();
        assert_eq!(attack, vec!["HHHA", "HHMA", "MMMA", "HLLA", "MMLA", "LLLA"]);
        assert!(MixClass::attack_classes().iter().all(MixClass::has_attacker));
        assert!(!MixClass::benign_classes().iter().any(|c| c.has_attacker()));
    }

    #[test]
    fn built_mix_has_four_cores_and_marks_the_attacker() {
        let b = builder();
        let class = MixClass::attack_classes()[0];
        let mix = b.build(class, 3, 42);
        assert_eq!(mix.cores(), 4);
        assert_eq!(mix.attacker_thread, Some(3));
        assert_eq!(mix.benign_threads(), vec![0, 1, 2]);
        assert_eq!(mix.name, "HHHA-03");
        assert_eq!(mix.app_names.len(), 4);
        assert_eq!(mix.app_names[3], "attacker");
        assert!(mix.traces[3].entries().iter().all(|e| e.uncached));
        assert!(mix.traces[0].entries().iter().all(|e| !e.uncached));
    }

    #[test]
    fn benign_mixes_have_no_attacker() {
        let b = builder();
        let mix = b.build(MixClass::benign_classes()[2], 0, 7);
        assert_eq!(mix.attacker_thread, None);
        assert_eq!(mix.benign_threads(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn suite_generation_produces_the_requested_count() {
        let b = builder();
        let suite = b.build_suite(&MixClass::attack_classes(), 2, 1);
        assert_eq!(suite.len(), 12);
        // Names are unique.
        let names: std::collections::HashSet<_> = suite.iter().map(|m| m.name.clone()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn attack_mixes_declare_victim_rows_and_benign_mixes_do_not() {
        let b = builder();
        let attack = b.build(MixClass::attack_classes()[0], 0, 42);
        assert!(!attack.victim_rows.is_empty());
        assert_eq!(attack.scenario, None, "compat attacker keeps untagged names");
        let benign = b.build(MixClass::benign_classes()[0], 0, 42);
        assert!(benign.victim_rows.is_empty());
    }

    #[test]
    fn scenario_builders_tag_names_and_keep_benign_cores_identical() {
        use crate::scenario::scenario_catalog;

        let b = builder();
        let class = MixClass::attack_classes()[0];
        let plain = b.build(class, 0, 42);
        for scenario in scenario_catalog() {
            let mix = b.clone().with_scenario(&scenario).build(class, 0, 42);
            assert_eq!(mix.name, format!("HHHA-{}-00", scenario.name));
            assert_eq!(mix.scenario.as_deref(), Some(scenario.name));
            assert!(!mix.victim_rows.is_empty(), "{}", scenario.name);
            // Only the attacker core differs from the plain build.
            for t in plain.benign_threads() {
                assert_eq!(plain.traces[t], mix.traces[t], "{}", scenario.name);
            }
        }
    }

    #[test]
    fn composed_attackers_without_tags_keep_plain_names() {
        use crate::compose::ComposedAttacker;
        use crate::pattern::FuzzedPattern;
        use crate::placement::NeighborPlacement;

        let attacker =
            ComposedAttacker::new(FuzzedPattern::new(1, 4), NeighborPlacement::new()).untagged();
        let mix =
            builder().with_composed_attacker(attacker).build(MixClass::attack_classes()[0], 1, 7);
        assert_eq!(mix.name, "HHHA-01");
        assert_eq!(mix.scenario, None);
    }

    #[test]
    #[allow(deprecated)]
    fn channel_scenarios_tag_names_and_retarget_the_attacker() {
        use crate::generator::TraceGenerator;
        use bh_dram::DramGeometry;
        use bh_mem::AddressMapping;

        let geometry = DramGeometry::paper_ddr5().with_channels(2);
        let mapping = AddressMapping::paper_default();
        let mut b = MixBuilder::new(TraceGenerator::new(geometry.clone(), mapping));
        b.benign_entries = 1_000;
        b.attacker_entries = 1_000;
        let class = MixClass::attack_classes()[0];

        let pinned = b.build_channel_pinned(class, 0, 42, 1);
        assert_eq!(pinned.name, "HHHA-chp1-00");
        let attacker = pinned.attacker_thread.unwrap();
        assert!(pinned.traces[attacker]
            .entries()
            .iter()
            .all(|e| mapping.decode(e.addr, &geometry).channel == 1));

        let interleaved = b.build_channel_interleaved(class, 0, 42);
        assert_eq!(interleaved.name, "HHHA-chi-00");
        let attacker = interleaved.attacker_thread.unwrap();
        let channels: std::collections::HashSet<usize> = interleaved.traces[attacker]
            .entries()
            .iter()
            .map(|e| mapping.decode(e.addr, &geometry).channel)
            .collect();
        assert_eq!(channels.len(), 2, "interleaved attacker must touch both channels");

        // The benign cores are identical across scenarios (only the attacker
        // is retargeted), so scenario comparisons isolate attacker placement.
        let plain = b.build(class, 0, 42);
        for t in plain.benign_threads() {
            assert_eq!(plain.traces[t], pinned.traces[t]);
            assert_eq!(plain.traces[t], interleaved.traces[t]);
        }
    }

    #[test]
    fn mix_construction_is_deterministic() {
        let b = builder();
        let class = MixClass::attack_classes()[1];
        let a = b.build(class, 5, 99);
        let c = b.build(class, 5, 99);
        assert_eq!(a.app_names, c.app_names);
        assert_eq!(a.traces, c.traces);
        // Different indices give different application selections or traces.
        let d = b.build(class, 6, 99);
        assert!(a.app_names != d.app_names || a.traces != d.traces);
    }
}
