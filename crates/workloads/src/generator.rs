//! Synthetic benign-trace generation.
//!
//! [`TraceGenerator::benign`] turns a [`BenignProfile`] into an instruction
//! trace whose memory behaviour (intensity, row locality, organic hot rows)
//! matches the profile. Addresses are produced through the same address
//! mapping the memory controller uses, so the generator can place accesses in
//! specific banks and rows.

use crate::profile::{BenignProfile, UnknownProfileError};
use bh_cpu::{Trace, TraceEntry};
use bh_dram::{BankAddr, DramGeometry, DramLocation};
use bh_mem::AddressMapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// First row index used for a profile's hot-row set.
const HOT_ROW_BASE: usize = 1_000;
/// First row index used for a profile's streaming footprint.
const FOOTPRINT_BASE: usize = 4_000;

/// Generates synthetic traces for a given DRAM geometry and address mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenerator {
    geometry: DramGeometry,
    mapping: AddressMapping,
}

impl TraceGenerator {
    /// Creates a generator for `geometry` using `mapping`.
    pub fn new(geometry: DramGeometry, mapping: AddressMapping) -> Self {
        TraceGenerator { geometry, mapping }
    }

    /// Creates a generator for the paper's system configuration.
    pub fn paper_default() -> Self {
        TraceGenerator::new(DramGeometry::paper_ddr5(), AddressMapping::paper_default())
    }

    /// The geometry addresses are generated for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    fn encode(
        &self,
        channel: usize,
        bank: BankAddr,
        row: usize,
        column: usize,
    ) -> bh_dram::PhysAddr {
        let row = row % self.geometry.rows_per_bank;
        let column = column % self.geometry.columns_per_row;
        self.mapping.encode(&DramLocation { channel, bank, row, column }, &self.geometry)
    }

    /// Spreads a flat placement index over `(channel, bank)` pairs, channel
    /// 0's banks first — identical to the single-channel placement when the
    /// geometry has one channel, and covering every channel's banks evenly
    /// otherwise.
    fn place(&self, index: usize) -> (usize, BankAddr) {
        let banks = self.geometry.banks_per_channel();
        let slots = banks * self.geometry.channels.max(1);
        let slot = index % slots;
        (slot / banks, self.geometry.bank_from_flat(slot % banks))
    }

    /// Number of `(channel, bank)` placement slots (the divisor turning a
    /// flat row index into a per-bank row).
    fn placement_slots(&self) -> usize {
        self.geometry.banks_per_channel() * self.geometry.channels.max(1)
    }

    /// Generates a benign trace for the library profile named `name` — the
    /// non-panicking composition of [`BenignProfile::resolve`] and
    /// [`TraceGenerator::benign`] for callers driven by external workload
    /// lists (campaign configs, CLI arguments).
    ///
    /// # Errors
    /// Returns [`UnknownProfileError`] if `name` is not in the profile
    /// library.
    ///
    /// # Panics
    /// Panics if `entries` is zero.
    pub fn benign_named(
        &self,
        name: &str,
        entries: usize,
        seed: u64,
    ) -> Result<Trace, UnknownProfileError> {
        Ok(self.benign(&BenignProfile::resolve(name)?, entries, seed))
    }

    /// Generates a benign trace of `entries` records from `profile`.
    ///
    /// # Panics
    /// Panics if the profile fails validation or `entries` is zero.
    pub fn benign(&self, profile: &BenignProfile, entries: usize, seed: u64) -> Trace {
        profile.validate().expect("invalid benign profile");
        assert!(entries > 0, "a trace needs at least one record");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef_beef);
        let mean_bubbles = (1000.0 / profile.apki - 1.0).max(0.0);
        let slots = self.placement_slots();

        let mut records = Vec::with_capacity(entries);
        let mut current: Option<(usize, BankAddr, usize, usize)> = None;
        for _ in 0..entries {
            // Bubble count jitters around the profile mean so the intensity
            // target is met on average without being perfectly periodic.
            let bubbles = if mean_bubbles < 0.5 {
                0
            } else {
                rng.gen_range((mean_bubbles * 0.5) as u32..=(mean_bubbles * 1.5) as u32 + 1)
            };

            let roll: f64 = rng.gen();
            let (channel, bank, row, column) =
                if roll < profile.hot_row_fraction && profile.hot_rows > 0 {
                    // Hot rows: skewed popularity so a handful of rows dominate
                    // (what produces Table 3's 512+ activation rows).
                    let skew: f64 = rng.gen::<f64>().powi(2);
                    let hot_index = (skew * profile.hot_rows as f64) as usize % profile.hot_rows;
                    let (channel, bank) = self.place(hot_index);
                    let row = HOT_ROW_BASE + hot_index / slots;
                    (channel, bank, row, rng.gen_range(0..self.geometry.columns_per_row))
                } else if roll < profile.hot_row_fraction + profile.row_locality {
                    // Stay in the current row (streaming within a row).
                    match current {
                        Some((channel, bank, row, column)) => (channel, bank, row, column + 1),
                        None => {
                            let idx = rng.gen_range(0..profile.footprint_rows);
                            let (channel, bank) = self.place(idx);
                            (channel, bank, FOOTPRINT_BASE + idx / slots, 0)
                        }
                    }
                } else {
                    // Jump to a random row of the streaming footprint.
                    let idx = rng.gen_range(0..profile.footprint_rows);
                    let (channel, bank) = self.place(idx);
                    let row = FOOTPRINT_BASE + idx / slots;
                    (channel, bank, row, rng.gen_range(0..self.geometry.columns_per_row))
                };
            current = Some((channel, bank, row, column));

            let addr = self.encode(channel, bank, row, column);
            let is_write = rng.gen::<f64>() < profile.write_fraction;
            records.push(if is_write {
                TraceEntry::store(bubbles, addr)
            } else {
                TraceEntry::load(bubbles, addr)
            });
        }
        Trace::new(records)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;
    use crate::profile::IntensityClass;
    use bh_dram::RowAddr;
    use std::collections::HashMap;

    fn generator() -> TraceGenerator {
        TraceGenerator::paper_default()
    }

    fn decode_rows(gen: &TraceGenerator, trace: &Trace) -> Vec<RowAddr> {
        trace
            .entries()
            .iter()
            .map(|e| gen.mapping().decode(e.addr, gen.geometry()).row_addr())
            .collect()
    }

    #[test]
    fn intensity_matches_the_profile_class() {
        let g = generator();
        for profile in BenignProfile::library() {
            let trace = g.benign(&profile, 4_000, 1);
            let apki = trace.accesses_per_kilo_instruction();
            assert!(
                (apki - profile.apki).abs() / profile.apki < 0.35,
                "{}: generated APKI {apki:.1}, target {:.1}",
                profile.name,
                profile.apki
            );
            match profile.class {
                IntensityClass::High => assert!(apki >= 15.0, "{}: {apki}", profile.name),
                IntensityClass::Medium => assert!((5.0..25.0).contains(&apki), "{}", profile.name),
                IntensityClass::Low => assert!(apki < 10.0, "{}", profile.name),
            }
        }
    }

    #[test]
    fn benign_named_threads_unknown_profiles_as_errors() {
        let g = generator();
        let trace = g.benign_named("povray", 500, 3).expect("known profile");
        assert_eq!(trace, g.benign(&BenignProfile::by_name("povray").unwrap(), 500, 3));
        let err = g.benign_named("sp3c-mystery", 500, 3).unwrap_err();
        assert_eq!(err.name, "sp3c-mystery");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = generator();
        let p = BenignProfile::by_name("mcf").unwrap();
        assert_eq!(g.benign(&p, 500, 7), g.benign(&p, 500, 7));
        assert_ne!(g.benign(&p, 500, 7), g.benign(&p, 500, 8));
    }

    #[test]
    fn hot_row_profiles_concentrate_accesses_on_few_rows() {
        let g = generator();
        let hot = BenignProfile::by_name("mcf").unwrap();
        let streaming = BenignProfile::by_name("libquantum").unwrap();
        let count_top_row_share = |profile: &BenignProfile| -> f64 {
            let trace = g.benign(profile, 8_000, 3);
            let rows = decode_rows(&g, &trace);
            let mut counts: HashMap<RowAddr, usize> = HashMap::new();
            for r in rows {
                *counts.entry(r).or_insert(0) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            max as f64 / trace.len() as f64
        };
        let hot_share = count_top_row_share(&hot);
        let stream_share = count_top_row_share(&streaming);
        assert!(
            hot_share > 4.0 * stream_share,
            "mcf-like hot row share {hot_share:.4} should dwarf libquantum's {stream_share:.4}"
        );
    }

    #[test]
    fn footprint_spreads_across_banks() {
        let g = generator();
        let p = BenignProfile::by_name("lbm06").unwrap();
        let trace = g.benign(&p, 4_000, 11);
        let rows = decode_rows(&g, &trace);
        let distinct_banks: std::collections::HashSet<_> = rows.iter().map(|r| r.bank).collect();
        assert!(
            distinct_banks.len() >= g.geometry().banks_per_channel() / 2,
            "only {} banks touched",
            distinct_banks.len()
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let g = generator();
        let p = BenignProfile::by_name("ycsb-a").unwrap(); // 40% writes
        let trace = g.benign(&p, 6_000, 5);
        let writes = trace.entries().iter().filter(|e| e.is_write).count();
        let frac = writes as f64 / trace.len() as f64;
        assert!((frac - p.write_fraction).abs() < 0.05, "write fraction {frac}");
        // Benign traces never use uncached accesses.
        assert!(trace.entries().iter().all(|e| !e.uncached));
    }

    #[test]
    fn multichannel_generation_spreads_benign_footprints_over_all_channels() {
        let geometry = DramGeometry::paper_ddr5().with_channels(4);
        let g = TraceGenerator::new(geometry, AddressMapping::paper_default());
        let p = BenignProfile::by_name("lbm06").unwrap();
        let trace = g.benign(&p, 6_000, 11);
        let mut per_channel = [0usize; 4];
        for e in trace.entries() {
            per_channel[g.mapping().decode(e.addr, g.geometry()).channel] += 1;
        }
        for (channel, count) in per_channel.iter().enumerate() {
            assert!(
                *count > trace.len() / 16,
                "channel {channel} only received {count} of {} accesses",
                trace.len()
            );
        }
    }

    #[test]
    fn single_channel_traces_are_unchanged_by_the_channel_spread() {
        // The flat placement index spreads over (channel, bank) slots; with
        // one channel that must degenerate to the historical per-bank layout.
        let g = generator();
        let p = BenignProfile::by_name("mcf").unwrap();
        let trace = g.benign(&p, 2_000, 9);
        assert!(trace
            .entries()
            .iter()
            .all(|e| g.mapping().decode(e.addr, g.geometry()).channel == 0));
    }

    #[test]
    fn addresses_stay_within_the_simulated_capacity() {
        let g = generator();
        let p = BenignProfile::by_name("mcf").unwrap();
        let trace = g.benign(&p, 2_000, 9);
        let capacity = g.geometry().channel_bytes();
        assert!(trace.entries().iter().all(|e| e.addr.0 < capacity));
    }
}
