//! Criterion micro-benchmark: per-activation cost of each mitigation
//! mechanism's trigger algorithm (the work added to the memory controller's
//! activation path).

use bh_dram::{BankAddr, DramGeometry, RowAddr, ThreadId, TimingParams};
use bh_mitigation::{ActivationEvent, MechanismKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_mechanisms(c: &mut Criterion) {
    let geometry = DramGeometry::paper_ddr5();
    let timing = TimingParams::ddr5_4800();
    let mut group = c.benchmark_group("mechanism_on_activation");
    for kind in [
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ] {
        group.bench_function(kind.label(), |b| {
            let mut mechanism = kind.build(&geometry, &timing, 1024, 7);
            let mut cycle = 0u64;
            let mut row = 0usize;
            b.iter(|| {
                cycle += 30;
                row = (row + 17) % 4096;
                let event = ActivationEvent {
                    row: RowAddr {
                        bank: BankAddr { rank: 0, bank_group: (row % 8), bank: 0 },
                        row,
                    },
                    thread: ThreadId(row % 4),
                    cycle,
                };
                black_box(mechanism.on_activation(&event))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
