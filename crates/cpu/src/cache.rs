//! The shared last-level cache (LLC) with miss-status holding registers
//! (MSHRs) and per-thread MSHR quotas.
//!
//! The LLC is BreakHammer's throttling actuator: before allocating a miss
//! buffer for a thread the cache checks the thread's dynamic request quota
//! (§4.3 of the paper). A thread over its quota can still *hit* in the cache
//! and still *merge* into an MSHR that is already tracking its line — exactly
//! the behaviour the paper describes ("a suspect can access the data that
//! already exists in or is being brought to caches") — but it cannot allocate
//! new miss buffers, which limits its dynamic memory request count.

use bh_dram::{Cycle, FlatMap, PhysAddr, ThreadId};
use serde::{Deserialize, Serialize};

/// Identifier of an outstanding miss (one per allocated MSHR).
pub type MissToken = u64;

/// Number of low token bits that encode the MSHR slot index, making
/// completion checks O(1); the remaining bits are an allocation serial that
/// distinguishes successive occupants of the same slot.
const TOKEN_SLOT_BITS: u32 = 8;

/// LLC configuration (Table 1: 8 MiB, 8-way, 64-byte lines).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Access (hit) latency in core cycles.
    pub hit_latency: u64,
    /// Total number of MSHRs (cache-miss buffers).
    pub mshrs: usize,
}

impl CacheConfig {
    /// The paper's LLC configuration (Table 1) with 64 MSHRs.
    pub fn paper_table1() -> Self {
        CacheConfig {
            capacity_bytes: 8 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: 30,
            mshrs: 64,
        }
    }

    /// A small configuration for unit tests (4 KiB, 2-way, 4 MSHRs).
    pub fn tiny_test() -> Self {
        CacheConfig { capacity_bytes: 4096, ways: 2, line_bytes: 64, hit_latency: 2, mshrs: 4 }
    }

    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err("line size must be a non-zero power of two".to_string());
        }
        if self.ways == 0 {
            return Err("associativity must be at least 1".to_string());
        }
        if !self.capacity_bytes.is_multiple_of(self.ways * self.line_bytes) {
            return Err("capacity must be a multiple of ways * line size".to_string());
        }
        if self.sets() == 0 || !self.sets().is_power_of_two() {
            return Err("the number of sets must be a non-zero power of two".to_string());
        }
        if self.mshrs == 0 {
            return Err("the cache needs at least one MSHR".to_string());
        }
        if self.mshrs > 1 << TOKEN_SLOT_BITS {
            return Err(format!(
                "at most {} MSHRs are supported (miss tokens encode their slot in {} bits)",
                1usize << TOKEN_SLOT_BITS,
                TOKEN_SLOT_BITS
            ));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_table1()
    }
}

/// Result of an LLC access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line is present; data is available at `ready_at` (core cycles).
    Hit {
        /// Core cycle at which the hit data is available.
        ready_at: Cycle,
    },
    /// The line is being fetched: the access was merged into or allocated an
    /// MSHR identified by `token`.
    Miss {
        /// Token identifying the outstanding miss.
        token: MissToken,
        /// True if a new MSHR was allocated (false if merged into an existing
        /// one).
        allocated: bool,
    },
    /// The access could not be handled this cycle and must be retried.
    Rejected {
        /// Why the access was rejected.
        reason: RejectReason,
    },
}

/// Why an LLC access was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// All MSHRs are in use.
    MshrsFull,
    /// The requesting thread has reached its BreakHammer-imposed MSHR quota.
    QuotaExceeded,
}

/// A demand request the LLC wants to send to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutgoingRequest {
    /// Token of the MSHR this fill belongs to (`None` for writebacks).
    pub token: Option<MissToken>,
    /// Requesting thread (the MSHR allocator for fills; the evicting thread
    /// for writebacks).
    pub thread: ThreadId,
    /// Line-aligned physical address.
    pub addr: PhysAddr,
    /// True for a writeback, false for a fill (read).
    pub is_writeback: bool,
}

/// LLC statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed and allocated an MSHR.
    pub misses: u64,
    /// Demand accesses merged into an existing MSHR.
    pub mshr_merges: u64,
    /// Accesses rejected because every MSHR was busy.
    pub mshr_full_rejections: u64,
    /// Accesses rejected by the per-thread quota (BreakHammer throttling).
    pub quota_rejections: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    owner: ThreadId,
}

#[derive(Debug, Clone)]
struct Mshr {
    /// Token of the miss currently occupying this slot (0 = slot free).
    token: MissToken,
    line_addr: u64,
    thread: ThreadId,
    /// Whether the fetched line is installed in the cache on completion
    /// (false for uncached / cache-bypassing accesses).
    install: bool,
}

/// The shared last-level cache.
#[derive(Debug, Clone)]
pub struct LastLevelCache {
    config: CacheConfig,
    /// All cache lines in one flat array, set-major (`set * ways + way`):
    /// a set's ways are contiguous, so the per-access tag walk touches one
    /// or two cache lines instead of chasing a per-set heap pointer.
    lines: Vec<Line>,
    /// MSHR slots, one per miss buffer. A slot with `token == 0` is free.
    /// Tokens encode their slot in the low [`TOKEN_SLOT_BITS`] bits, so
    /// completion checks are a single slot comparison.
    slots: Vec<Mshr>,
    /// The live token of each slot (0 = free), kept separately from the slot
    /// payloads: stalled cores poll [`LastLevelCache::is_completed`] every
    /// cycle, and the compact array keeps that poll inside one or two hot
    /// cache lines.
    slot_tokens: Vec<MissToken>,
    /// Bitset of free slots (bit set = free); the allocator picks the lowest
    /// set bit, so slot assignment matches the linear scan it replaced.
    free_slots: [u64; (1 << TOKEN_SLOT_BITS) / 64],
    /// Active miss line addresses -> slot index, for O(1) merge lookups on
    /// the per-access miss path (the slot scan it replaces is small but runs
    /// on every LLC miss and every reject probe).
    line_to_slot: FlatMap<u32>,
    /// Number of occupied MSHR slots.
    occupied: usize,
    /// Allocation serial for the next token's high bits.
    next_serial: MissToken,
    per_thread_mshrs: Vec<usize>,
    quotas: Vec<usize>,
    outgoing: Vec<OutgoingRequest>,
    use_counter: u64,
    /// Bumped on every fill completion (slot release). Invalidation stamp
    /// for memoized `MshrsFull` rejections: while the pool is full no MSHR
    /// can be allocated, so only a completion can change any stage of the
    /// access walk (hit-install, merge, pool, quota) for the stalled access.
    completes_version: u64,
    /// Bumped when an allocation fills the last MSHR. A thread stalled on
    /// its *quota* would start being rejected for the pool instead (the pool
    /// check precedes the quota check), so its memo must be revisited.
    pool_full_version: u64,
    /// Per-thread event stamp: bumped when one of the thread's misses
    /// completes (its in-flight count dropped) or its quota changes — the
    /// thread-local reasons a memoized `QuotaExceeded` rejection can stop
    /// holding. The remaining reason (the line gaining an active miss to
    /// merge into, which on completion could also turn the access into a
    /// hit) is checked directly against `line_to_slot`.
    per_thread_events: Vec<u64>,
    /// `log2(line_bytes)`, cached for the per-access address split.
    line_shift: u32,
    /// `sets() - 1`, cached for the per-access set index mask.
    set_mask: u64,
    /// `log2(sets())`, cached for the per-access tag extraction.
    set_bits: u32,
    stats: CacheStats,
}

impl LastLevelCache {
    /// Creates the LLC for `num_threads` hardware threads; every thread starts
    /// with a quota equal to the full MSHR count.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `num_threads` is zero.
    pub fn new(config: CacheConfig, num_threads: usize) -> Self {
        config.validate().expect("invalid cache configuration");
        assert!(num_threads > 0, "need at least one hardware thread");
        let lines =
            vec![
                Line { tag: 0, valid: false, dirty: false, last_use: 0, owner: ThreadId(0) };
                config.sets() * config.ways
            ];
        let mshrs = config.mshrs;
        let line_shift = config.line_bytes.trailing_zeros();
        let set_mask = config.sets() as u64 - 1;
        let set_bits = config.sets().trailing_zeros();
        let mut free_slots = [0u64; (1 << TOKEN_SLOT_BITS) / 64];
        for slot in 0..mshrs {
            free_slots[slot / 64] |= 1 << (slot % 64);
        }
        LastLevelCache {
            config,
            lines,
            slots: vec![
                Mshr { token: 0, line_addr: 0, thread: ThreadId(0), install: false };
                mshrs
            ],
            slot_tokens: vec![0; mshrs],
            free_slots,
            line_to_slot: FlatMap::with_capacity(mshrs),
            occupied: 0,
            next_serial: 1,
            per_thread_mshrs: vec![0; num_threads],
            quotas: vec![mshrs; num_threads],
            outgoing: Vec::new(),
            use_counter: 0,
            completes_version: 0,
            pool_full_version: 0,
            per_thread_events: vec![0; num_threads],
            line_shift,
            set_mask,
            set_bits,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Sets the MSHR quota of `thread` (BreakHammer's throttling knob).
    pub fn set_quota(&mut self, thread: ThreadId, quota: usize) {
        let quota = quota.min(self.config.mshrs);
        if self.quotas[thread.index()] != quota {
            self.quotas[thread.index()] = quota;
            self.per_thread_events[thread.index()] += 1;
        }
    }

    /// The current MSHR quota of `thread`.
    pub fn quota(&self, thread: ThreadId) -> usize {
        self.quotas[thread.index()]
    }

    /// Number of MSHRs currently allocated by `thread`.
    pub fn mshrs_in_use(&self, thread: ThreadId) -> usize {
        self.per_thread_mshrs[thread.index()]
    }

    /// Stamp to store alongside a memoized rejection of reason `reason` for
    /// `thread`; see [`LastLevelCache::reject_memo_valid`].
    pub fn reject_stamp(&self, thread: ThreadId, reason: RejectReason) -> u64 {
        match reason {
            RejectReason::MshrsFull => self.completes_version,
            // Both counters are monotone, so their sum is unchanged iff both
            // are.
            RejectReason::QuotaExceeded => {
                self.per_thread_events[thread.index()].wrapping_add(self.pool_full_version)
            }
        }
    }

    /// True if an access by `thread` to `addr`, previously rejected with
    /// `reason` when [`LastLevelCache::reject_stamp`] read `stamp`, is
    /// guaranteed to be rejected with the same reason now. Replaces a global
    /// change counter: unrelated MSHR traffic (other threads' allocations
    /// and, for quota rejections, other threads' completions) no longer
    /// forces a stalled core to re-walk the cache every time.
    ///
    /// The stamp's invalidation conditions are exhaustive only across one
    /// *continuous* rejection episode: the caller must drop the memo as soon
    /// as a retry of the access succeeds (the core does so on every
    /// non-rejected dispatch), or a stale memo could re-validate after the
    /// line has been installed by another thread's fill.
    pub fn reject_memo_valid(
        &self,
        thread: ThreadId,
        addr: PhysAddr,
        reason: RejectReason,
        stamp: u64,
    ) -> bool {
        self.reject_stamp(thread, reason) == stamp
            && (reason == RejectReason::MshrsFull
                || !self.line_to_slot.contains_key(self.line_addr(addr)))
    }

    /// True if the miss identified by `token` has completed (its MSHR has been
    /// released). O(1): the token's low bits name its slot.
    pub fn is_completed(&self, token: MissToken) -> bool {
        self.slot_tokens[(token & ((1 << TOKEN_SLOT_BITS) - 1)) as usize] != token
    }

    /// True if at least one fill/writeback request is waiting to be taken
    /// (the cheap per-step probe that lets the simulation loop skip the
    /// drain entirely on quiet steps).
    pub fn has_outgoing(&self) -> bool {
        !self.outgoing.is_empty()
    }

    /// Removes and returns the fill/writeback requests generated since the
    /// last call; the caller forwards them to the memory controller.
    pub fn take_outgoing(&mut self) -> Vec<OutgoingRequest> {
        std::mem::take(&mut self.outgoing)
    }

    /// Moves the pending fill/writeback requests into `buf` (cleared first),
    /// recycling `buf`'s allocation as the next outgoing buffer — the
    /// allocation-free variant of [`LastLevelCache::take_outgoing`] for
    /// callers that drain every cycle.
    pub fn take_outgoing_into(&mut self, buf: &mut Vec<OutgoingRequest>) {
        buf.clear();
        std::mem::swap(&mut self.outgoing, buf);
    }

    fn line_addr(&self, addr: PhysAddr) -> u64 {
        addr.0 >> self.line_shift
    }

    fn set_index(&self, line_addr: u64) -> usize {
        (line_addr & self.set_mask) as usize
    }

    fn tag(&self, line_addr: u64) -> u64 {
        line_addr >> self.set_bits
    }

    /// Performs a demand access on behalf of `thread`.
    pub fn access(
        &mut self,
        thread: ThreadId,
        addr: PhysAddr,
        is_write: bool,
        cycle: Cycle,
    ) -> AccessOutcome {
        self.use_counter += 1;
        let line_addr = self.line_addr(addr);
        let set_idx = self.set_index(line_addr);
        let tag = self.tag(line_addr);
        let use_counter = self.use_counter;

        // Hit path: the set's ways are contiguous in the flat line array.
        let ways = self.config.ways;
        let set = &mut self.lines[set_idx * ways..set_idx * ways + ways];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = use_counter;
            if is_write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome::Hit { ready_at: cycle + self.config.hit_latency };
        }
        self.miss_path(thread, line_addr, true)
    }

    /// Performs a cache-bypassing (uncached / `clflush`-style) access: the
    /// request always goes to memory and the returned data is not installed
    /// in the cache. MSHR allocation — and therefore BreakHammer's per-thread
    /// quota — still applies, which is exactly how BreakHammer throttles an
    /// attacker built around uncached accesses.
    pub fn access_bypass(
        &mut self,
        thread: ThreadId,
        addr: PhysAddr,
        _is_write: bool,
        _cycle: Cycle,
    ) -> AccessOutcome {
        self.use_counter += 1;
        let line_addr = self.line_addr(addr);
        self.miss_path(thread, line_addr, false)
    }

    /// Read-only check of whether an [`LastLevelCache::access`] (or, with
    /// `uncached`, an [`LastLevelCache::access_bypass`]) for `thread` at
    /// `addr` would currently be rejected, mirroring the decision order of
    /// the real access path (hit, MSHR merge, pool, per-thread quota).
    ///
    /// Returns `Some(reason)` iff the access would be rejected; `None` means
    /// it would hit, merge, or allocate. The event-driven simulation kernel
    /// uses this to classify a dispatch-stalled core without perturbing the
    /// cache state.
    pub fn probe_reject(
        &self,
        thread: ThreadId,
        addr: PhysAddr,
        uncached: bool,
    ) -> Option<RejectReason> {
        let line_addr = self.line_addr(addr);
        if !uncached {
            let set_idx = self.set_index(line_addr);
            let tag = self.tag(line_addr);
            let ways = self.config.ways;
            let set = &self.lines[set_idx * ways..set_idx * ways + ways];
            if set.iter().any(|l| l.valid && l.tag == tag) {
                return None;
            }
        }
        if self.line_to_slot.contains_key(line_addr) {
            return None;
        }
        if self.occupied >= self.config.mshrs {
            return Some(RejectReason::MshrsFull);
        }
        if self.per_thread_mshrs[thread.index()] >= self.quotas[thread.index()] {
            return Some(RejectReason::QuotaExceeded);
        }
        None
    }

    /// Replays the counter side effects of `n` rejected access retries
    /// without walking the access path (one retry per stalled core cycle).
    ///
    /// A dispatch-stalled core re-issues its rejected access every cycle;
    /// each attempt bumps the use counter and the rejection statistic. The
    /// event-driven kernel skips those dead cycles and accounts for them here
    /// so its statistics stay bit-identical to the per-cycle kernel's.
    pub fn absorb_rejected_probes(&mut self, n: u64, reason: RejectReason) {
        self.use_counter += n;
        match reason {
            RejectReason::MshrsFull => self.stats.mshr_full_rejections += n,
            RejectReason::QuotaExceeded => self.stats.quota_rejections += n,
        }
    }

    /// Shared miss handling: merge, pool/quota checks, MSHR allocation.
    fn miss_path(&mut self, thread: ThreadId, line_addr: u64, install: bool) -> AccessOutcome {
        // Merge into an outstanding miss for the same line, if any (lines are
        // unique across MSHRs, so at most one slot can match).
        if let Some(slot) = self.line_to_slot.get(line_addr) {
            self.stats.mshr_merges += 1;
            return AccessOutcome::Miss {
                token: self.slots[slot as usize].token,
                allocated: false,
            };
        }

        // Need a new MSHR: enforce the global pool and the per-thread quota.
        if self.occupied >= self.config.mshrs {
            self.stats.mshr_full_rejections += 1;
            return AccessOutcome::Rejected { reason: RejectReason::MshrsFull };
        }
        if self.per_thread_mshrs[thread.index()] >= self.quotas[thread.index()] {
            self.stats.quota_rejections += 1;
            return AccessOutcome::Rejected { reason: RejectReason::QuotaExceeded };
        }

        let slot = self
            .free_slots
            .iter()
            .enumerate()
            .find(|(_, word)| **word != 0)
            .map(|(i, word)| i * 64 + word.trailing_zeros() as usize)
            .expect("pool has a free slot");
        self.free_slots[slot / 64] &= !(1 << (slot % 64));
        self.line_to_slot.insert(line_addr, slot as u32);
        let token = (self.next_serial << TOKEN_SLOT_BITS) | slot as MissToken;
        self.next_serial += 1;
        self.slots[slot] = Mshr { token, line_addr, thread, install };
        self.slot_tokens[slot] = token;
        self.occupied += 1;
        if self.occupied >= self.config.mshrs {
            self.pool_full_version += 1;
        }
        self.per_thread_mshrs[thread.index()] += 1;
        self.stats.misses += 1;
        self.outgoing.push(OutgoingRequest {
            token: Some(token),
            thread,
            addr: PhysAddr(line_addr * self.config.line_bytes as u64),
            is_writeback: false,
        });
        AccessOutcome::Miss { token, allocated: true }
    }

    /// Completes the outstanding miss identified by `token`: the line is
    /// installed (possibly evicting a dirty victim, which generates a
    /// writeback) and the MSHR is released.
    ///
    /// Unknown or already-completed tokens are ignored (the memory controller
    /// may deliver duplicate completions after a merge).
    pub fn complete_miss(&mut self, token: MissToken) {
        let slot = (token & ((1 << TOKEN_SLOT_BITS) - 1)) as usize;
        if slot >= self.slots.len() || self.slot_tokens[slot] != token {
            return;
        }
        let mshr = self.slots[slot].clone();
        self.slots[slot].token = 0;
        self.slot_tokens[slot] = 0;
        self.free_slots[slot / 64] |= 1 << (slot % 64);
        self.line_to_slot.remove(mshr.line_addr);
        self.occupied -= 1;
        self.completes_version += 1;
        self.per_thread_events[mshr.thread.index()] += 1;
        let idx = mshr.thread.index();
        self.per_thread_mshrs[idx] = self.per_thread_mshrs[idx].saturating_sub(1);
        if !mshr.install {
            // Uncached access: nothing is installed in the cache.
            return;
        }

        let set_idx = self.set_index(mshr.line_addr);
        let tag = self.tag(mshr.line_addr);
        self.use_counter += 1;
        let use_counter = self.use_counter;
        let sets = self.config.sets() as u64;
        let line_bytes = self.config.line_bytes as u64;

        // Choose a victim: an invalid way if available, else the LRU way.
        let ways = self.config.ways;
        let set = &mut self.lines[set_idx * ways..set_idx * ways + ways];
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("cache sets are never empty")
        });
        let victim = set[victim_idx];
        if victim.valid && victim.dirty {
            let victim_line_addr = victim.tag * sets + set_idx as u64;
            self.stats.writebacks += 1;
            self.outgoing.push(OutgoingRequest {
                token: None,
                thread: victim.owner,
                addr: PhysAddr(victim_line_addr * line_bytes),
                is_writeback: true,
            });
        }
        set[victim_idx] =
            Line { tag, valid: true, dirty: false, last_use: use_counter, owner: mshr.thread };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> LastLevelCache {
        LastLevelCache::new(CacheConfig::tiny_test(), 2)
    }

    #[test]
    fn config_validation() {
        assert_eq!(CacheConfig::paper_table1().validate(), Ok(()));
        assert_eq!(CacheConfig::paper_table1().sets(), 16384);
        let mut bad = CacheConfig::tiny_test();
        bad.line_bytes = 48;
        assert!(bad.validate().is_err());
        let mut bad = CacheConfig::tiny_test();
        bad.ways = 0;
        assert!(bad.validate().is_err());
        let mut bad = CacheConfig::tiny_test();
        bad.mshrs = 0;
        assert!(bad.validate().is_err());
        let mut bad = CacheConfig::tiny_test();
        bad.mshrs = 512; // beyond the slot-encoded token ceiling
        assert!(bad.validate().is_err());
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = cache();
        let addr = PhysAddr(0x1000);
        let outcome = c.access(ThreadId(0), addr, false, 0);
        let token = match outcome {
            AccessOutcome::Miss { token, allocated: true } => token,
            other => panic!("expected an allocated miss, got {other:?}"),
        };
        assert!(!c.is_completed(token));
        let outgoing = c.take_outgoing();
        assert_eq!(outgoing.len(), 1);
        assert_eq!(outgoing[0].token, Some(token));
        assert!(!outgoing[0].is_writeback);

        c.complete_miss(token);
        assert!(c.is_completed(token));
        match c.access(ThreadId(0), addr, false, 100) {
            AccessOutcome::Hit { ready_at } => assert_eq!(ready_at, 100 + 2),
            other => panic!("expected a hit, got {other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn accesses_to_same_line_merge_into_one_mshr() {
        let mut c = cache();
        let a = c.access(ThreadId(0), PhysAddr(0x2000), false, 0);
        let b = c.access(ThreadId(1), PhysAddr(0x2008), false, 1);
        let t0 = match a {
            AccessOutcome::Miss { token, allocated: true } => token,
            other => panic!("{other:?}"),
        };
        match b {
            AccessOutcome::Miss { token, allocated: false } => assert_eq!(token, t0),
            other => panic!("expected a merge, got {other:?}"),
        }
        assert_eq!(c.stats().mshr_merges, 1);
        // Only one fill goes to memory.
        assert_eq!(c.take_outgoing().len(), 1);
    }

    #[test]
    fn mshr_pool_exhaustion_rejects() {
        let mut c = cache();
        for i in 0..4u64 {
            let r = c.access(ThreadId(0), PhysAddr(i * 0x10000), false, 0);
            assert!(matches!(r, AccessOutcome::Miss { allocated: true, .. }));
        }
        let r = c.access(ThreadId(0), PhysAddr(0x9_0000), false, 0);
        assert_eq!(r, AccessOutcome::Rejected { reason: RejectReason::MshrsFull });
        assert_eq!(c.stats().mshr_full_rejections, 1);
    }

    #[test]
    fn quota_limits_one_thread_without_affecting_the_other() {
        let mut c = cache();
        c.set_quota(ThreadId(0), 1);
        assert_eq!(c.quota(ThreadId(0)), 1);
        let first = c.access(ThreadId(0), PhysAddr(0x10000), false, 0);
        assert!(matches!(first, AccessOutcome::Miss { allocated: true, .. }));
        // Second distinct-line miss from the throttled thread is rejected.
        let second = c.access(ThreadId(0), PhysAddr(0x20000), false, 1);
        assert_eq!(second, AccessOutcome::Rejected { reason: RejectReason::QuotaExceeded });
        assert_eq!(c.stats().quota_rejections, 1);
        assert_eq!(c.mshrs_in_use(ThreadId(0)), 1);
        // The other thread is unaffected.
        let other = c.access(ThreadId(1), PhysAddr(0x30000), false, 2);
        assert!(matches!(other, AccessOutcome::Miss { allocated: true, .. }));
        // Hits and merges are still allowed for the throttled thread.
        let merge = c.access(ThreadId(0), PhysAddr(0x10008), false, 3);
        assert!(matches!(merge, AccessOutcome::Miss { allocated: false, .. }));
        // After the fill completes the quota slot is released.
        let tokens: Vec<MissToken> = c.take_outgoing().iter().filter_map(|o| o.token).collect();
        for t in tokens {
            c.complete_miss(t);
        }
        assert_eq!(c.mshrs_in_use(ThreadId(0)), 0);
        let retry = c.access(ThreadId(0), PhysAddr(0x20000), false, 10);
        assert!(matches!(retry, AccessOutcome::Miss { allocated: true, .. }));
    }

    #[test]
    fn dirty_eviction_generates_a_writeback() {
        let mut c = cache();
        let sets = c.config().sets() as u64; // 32 sets
        let line = c.config().line_bytes as u64;
        // Fill both ways of set 0 with dirty lines (stores), then force a
        // third fill into the same set.
        for i in 0..2u64 {
            let addr = PhysAddr(i * sets * line); // same set, different tags
            let tok = match c.access(ThreadId(0), addr, true, 0) {
                AccessOutcome::Miss { token, .. } => token,
                other => panic!("{other:?}"),
            };
            c.complete_miss(tok);
            // Touch it with a store so the line is dirty.
            match c.access(ThreadId(0), addr, true, 1) {
                AccessOutcome::Hit { .. } => {}
                other => panic!("{other:?}"),
            }
        }
        let _ = c.take_outgoing();
        let tok = match c.access(ThreadId(0), PhysAddr(2 * sets * line), false, 2) {
            AccessOutcome::Miss { token, .. } => token,
            other => panic!("{other:?}"),
        };
        c.complete_miss(tok);
        let outgoing = c.take_outgoing();
        assert!(outgoing.iter().any(|o| o.is_writeback), "no writeback generated");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_replacement_keeps_recently_used_lines() {
        let mut c = cache();
        let sets = c.config().sets() as u64;
        let line = c.config().line_bytes as u64;
        let a = PhysAddr(0);
        let b = PhysAddr(sets * line);
        let d = PhysAddr(2 * sets * line);
        for addr in [a, b] {
            let tok = match c.access(ThreadId(0), addr, false, 0) {
                AccessOutcome::Miss { token, .. } => token,
                other => panic!("{other:?}"),
            };
            c.complete_miss(tok);
        }
        // Touch `a` so `b` is the LRU victim.
        assert!(matches!(c.access(ThreadId(0), a, false, 5), AccessOutcome::Hit { .. }));
        let tok = match c.access(ThreadId(0), d, false, 6) {
            AccessOutcome::Miss { token, .. } => token,
            other => panic!("{other:?}"),
        };
        c.complete_miss(tok);
        // `a` must still hit; `b` was evicted.
        assert!(matches!(c.access(ThreadId(0), a, false, 7), AccessOutcome::Hit { .. }));
        assert!(matches!(c.access(ThreadId(0), b, false, 8), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn duplicate_completions_are_ignored() {
        let mut c = cache();
        let tok = match c.access(ThreadId(0), PhysAddr(0x1000), false, 0) {
            AccessOutcome::Miss { token, .. } => token,
            other => panic!("{other:?}"),
        };
        c.complete_miss(tok);
        c.complete_miss(tok);
        assert_eq!(c.mshrs_in_use(ThreadId(0)), 0);
    }
}

#[cfg(test)]
mod bypass_tests {
    use super::*;

    #[test]
    fn bypass_accesses_never_hit_and_never_install() {
        let mut c = LastLevelCache::new(CacheConfig::tiny_test(), 1);
        let addr = PhysAddr(0x4000);
        let tok = match c.access_bypass(ThreadId(0), addr, false, 0) {
            AccessOutcome::Miss { token, allocated: true } => token,
            other => panic!("{other:?}"),
        };
        c.complete_miss(tok);
        // A second bypass access to the same address misses again (nothing was
        // installed), and even a normal access still misses.
        assert!(matches!(
            c.access_bypass(ThreadId(0), addr, false, 1),
            AccessOutcome::Miss { allocated: true, .. }
        ));
        let outstanding: Vec<MissToken> =
            c.take_outgoing().iter().filter_map(|o| o.token).collect();
        for t in outstanding {
            c.complete_miss(t);
        }
        assert!(matches!(c.access(ThreadId(0), addr, false, 2), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn bypass_accesses_respect_the_quota() {
        let mut c = LastLevelCache::new(CacheConfig::tiny_test(), 1);
        c.set_quota(ThreadId(0), 1);
        assert!(matches!(
            c.access_bypass(ThreadId(0), PhysAddr(0x1000), false, 0),
            AccessOutcome::Miss { allocated: true, .. }
        ));
        assert_eq!(
            c.access_bypass(ThreadId(0), PhysAddr(0x9000), false, 1),
            AccessOutcome::Rejected { reason: RejectReason::QuotaExceeded }
        );
    }
}
