//! A hand-rolled, token-level Rust lexer.
//!
//! `bh_analyze` deliberately avoids `syn` (the build environment has no
//! registry access, and none of the workspace invariants need a full parse):
//! every rule operates on this lexer's token stream. The lexer understands
//! exactly as much Rust as the rules need to be *sound at the token level*:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments are
//!   tokenized as [`TokenKind::Comment`] — so rule patterns never match
//!   inside prose;
//! * string literals (plain, raw `r#"…"#`, byte, byte-raw) and character
//!   literals are tokenized as [`TokenKind::Str`] / [`TokenKind::Char`] — so
//!   rule patterns never match inside string contents, while rules that
//!   *want* string contents (knob names for rule E1) still get them;
//! * lifetimes are distinguished from character literals;
//! * the multi-character punctuation the rules care about (`::`, `..`,
//!   `..=`, `->`) is fused into single tokens.
//!
//! Everything else — identifiers, keywords, numbers, remaining punctuation —
//! comes out as one token per lexeme with its 1-based line number.

/// The class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `env`, …).
    Ident,
    /// String literal; [`Token::text`] holds the *inner* contents, without
    /// quotes, prefixes or hash guards (escapes are left as written).
    Str,
    /// Character or byte literal (contents, without quotes).
    Char,
    /// Numeric literal (digits, including prefixes/suffixes, as written).
    Num,
    /// Lifetime (`'a`), without the leading quote.
    Lifetime,
    /// Punctuation; multi-character for `::`, `..`, `..=` and `->`.
    Punct,
    /// Comment; [`Token::text`] holds the contents after `//` (trimmed) or
    /// between `/*` and `*/`.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is stored per class).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated literals
/// simply run to end-of-file (the compiler proper rejects such files long
/// before this tool sees them in CI).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { chars: source.char_indices().collect(), pos: 0, line: 1, tokens: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(line),
                _ => self.punct(line),
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Doc slashes (`/// x` lexes as `// / x`) and leading space stripped.
        let trimmed = text.trim_start_matches(['/', '!']).trim();
        self.push(TokenKind::Comment, trimmed.to_string(), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment, text.trim().to_string(), line);
    }

    /// Plain (escaped) string body, after the opening quote.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Raw string body: `pos` is at the first `#` or the opening quote.
    fn raw_string(&mut self, line: u32) {
        let mut guards = 0usize;
        while self.peek(0) == Some('#') {
            guards += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..guards {
                    if self.peek(ahead) != Some('#') {
                        text.push(c);
                        continue 'outer;
                    }
                }
                for _ in 0..guards {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
                     // `'a` / `'static` (no closing quote right after the identifier) is a
                     // lifetime; `'a'` / `'\n'` is a character literal.
        let is_lifetime = match (self.peek(0), self.peek(1)) {
            (Some(c), Some('\'')) if c != '\\' => false, // 'x'
            (Some(c), _) if c.is_alphabetic() || c == '_' => true,
            _ => false,
        };
        if is_lifetime {
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
            return;
        }
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String/char prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        let next = self.peek(0);
        match (text.as_str(), next) {
            ("r" | "br" | "b" | "rb", Some('"')) => return self.string_after_prefix(&text, line),
            ("r" | "br" | "rb", Some('#')) if self.raw_guard_opens_string() => {
                return self.raw_string(line)
            }
            ("b", Some('\'')) => {
                self.bump();
                let mut body = String::new();
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            body.push(c);
                            if let Some(escaped) = self.bump() {
                                body.push(escaped);
                            }
                        }
                        '\'' => break,
                        _ => body.push(c),
                    }
                }
                self.push(TokenKind::Char, body, line);
                return;
            }
            _ => {}
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// After an `r`/`br` prefix followed by `#`: true when the `#` run ends
    /// in a quote (raw string), false for raw identifiers (`r#ident`).
    fn raw_guard_opens_string(&self) -> bool {
        let mut ahead = 0;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn string_after_prefix(&mut self, prefix: &str, line: u32) {
        if prefix.contains('r') {
            self.raw_string(line);
        } else {
            self.string(line);
        }
    }

    fn punct(&mut self, line: u32) {
        let c = self.bump().expect("punct called at end of input");
        let text = match (c, self.peek(0)) {
            (':', Some(':')) => {
                self.bump();
                "::".to_string()
            }
            ('.', Some('.')) => {
                self.bump();
                if self.peek(0) == Some('=') {
                    self.bump();
                    "..=".to_string()
                } else {
                    "..".to_string()
                }
            }
            ('-', Some('>')) => {
                self.bump();
                "->".to_string()
            }
            _ => c.to_string(),
        };
        self.push(TokenKind::Punct, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_code_tokens() {
        let toks = kinds("// unsafe HashMap\nlet s = \"Instant::now()\";");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Comment && t.contains("unsafe")));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("Instant")));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* a /* b */ c */ fn x() {}");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn raw_strings_and_guards() {
        let toks = kinds(r####"let x = r#"quote " inside"#; let y = 1;"####);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("quote \" inside")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn multi_char_puncts_are_fused() {
        let toks = kinds("env::var(0..=5); a..b; f() -> T");
        let puncts: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&".."));
        assert!(puncts.contains(&"->"));
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let toks = lex("/// # Safety\n//! inner\nfn f() {}");
        assert_eq!(toks[0].text, "# Safety");
        assert_eq!(toks[1].text, "inner");
    }
}
