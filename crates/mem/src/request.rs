//! Memory requests and responses exchanged between the cache hierarchy and
//! the memory controller.

use bh_dram::{AccessKind, Cycle, PhysAddr, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A demand request (LLC miss or writeback) sent to the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Caller-assigned identifier (e.g. the MSHR index); echoed in the
    /// response.
    pub id: u64,
    /// Hardware thread on whose behalf the request is made.
    pub thread: ThreadId,
    /// Physical address (cache-line aligned by the LLC).
    pub addr: PhysAddr,
    /// Read (demand miss) or write (writeback).
    pub kind: AccessKind,
    /// DRAM cycle at which the request arrived at the controller.
    pub arrival: Cycle,
}

impl MemRequest {
    /// Creates a read request.
    pub fn read(id: u64, thread: ThreadId, addr: PhysAddr, arrival: Cycle) -> Self {
        MemRequest { id, thread, addr, kind: AccessKind::Read, arrival }
    }

    /// Creates a write (writeback) request.
    pub fn write(id: u64, thread: ThreadId, addr: PhysAddr, arrival: Cycle) -> Self {
        MemRequest { id, thread, addr, kind: AccessKind::Write, arrival }
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} #{} {} {} @{}", self.thread, self.id, self.kind, self.addr, self.arrival)
    }
}

/// Completion notification for a previously-enqueued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemResponse {
    /// The identifier the requester supplied.
    pub id: u64,
    /// The requesting hardware thread.
    pub thread: ThreadId,
    /// Whether this completes a read or a write.
    pub kind: AccessKind,
    /// DRAM cycle at which the data transfer completes.
    pub completed_at: Cycle,
    /// Memory latency (completion minus arrival) in DRAM cycles.
    pub latency: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemRequest::read(1, ThreadId(2), PhysAddr(0x1000), 5);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.thread, ThreadId(2));
        let w = MemRequest::write(2, ThreadId(0), PhysAddr(0x2000), 9);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.arrival, 9);
    }

    #[test]
    fn display_contains_key_fields() {
        let r = MemRequest::read(7, ThreadId(1), PhysAddr(0x40), 3);
        let s = r.to_string();
        assert!(s.contains("T1"));
        assert!(s.contains("#7"));
        assert!(s.contains("0x40"));
    }
}
