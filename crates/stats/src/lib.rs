//! # bh-stats — metric primitives for the BreakHammer reproduction
//!
//! Small, dependency-light implementations of the metrics the paper reports:
//!
//! * **Weighted speedup** (system performance, Figs. 2, 6, 8, 13, 15, 18, 19),
//! * **Maximum slowdown** (unfairness, Figs. 7, 9, 14, 16),
//! * **Percentiles** (memory-latency distributions, Figs. 11 and 17),
//! * **Geometric means, confidence intervals and box plots** used for the
//!   aggregate columns, error bands and sensitivity plots,
//! * plain-text / CSV table rendering for the experiment binaries.
//!
//! ## Example
//!
//! ```
//! use bh_stats::{weighted_speedup, max_slowdown, AppPerf};
//!
//! let mix = [
//!     AppPerf::new(1.2, 0.9),
//!     AppPerf::new(0.8, 0.7),
//!     AppPerf::new(2.0, 1.4),
//!     AppPerf::new(1.0, 0.6),
//! ];
//! let ws = weighted_speedup(&mix);
//! let unfairness = max_slowdown(&mix);
//! assert!(ws > 0.0 && ws <= 4.0);
//! assert!(unfairness >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod summary;
pub mod table;

pub use metrics::{
    geometric_mean, harmonic_speedup, max_slowdown, mean, normalize_to, weighted_speedup, AppPerf,
};
pub use summary::{percentile, percentile_of_sorted, BoxPlot, Summary};
pub use table::{fmt3, fmt_pct, Table};
