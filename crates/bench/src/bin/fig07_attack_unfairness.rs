//! Figure 7: BreakHammer's impact on unfairness (maximum slowdown of a benign
//! application) when an attacker is present, at N_RH = 1K, per mechanism and
//! workload-mix class — normalized to the same mechanism without BreakHammer.

use bh_bench::{maybe_print_config, mean_of, paper_config, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let nrh = bh_bench::figure_nrh(1024);
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms = MechanismKind::paper_mechanisms();
    let mut records = Vec::new();
    for &mech in &mechanisms {
        for bh in [false, true] {
            let config = paper_config(mech, nrh, bh, &scale);
            records.extend(campaign.run(&config, /*attack=*/ true));
        }
    }

    let classes = ["HHHA", "HHMA", "MMMA", "HLLA", "MMLA", "LLLA"];
    let mut table = Table::new(["mechanism", "mix_class", "normalized_unfairness"]);
    for &mech in &mechanisms {
        let with = select(&records, mech, nrh, true);
        let without = select(&records, mech, nrh, false);
        for class in classes.iter().map(|c| c.to_string()).chain(["geomean".to_string()]) {
            let w = bh_bench::filter_class(&with, &class);
            let wo = bh_bench::filter_class(&without, &class);
            if w.is_empty() || wo.is_empty() {
                continue;
            }
            let ratio = mean_of(&w, |r| r.max_slowdown) / mean_of(&wo, |r| r.max_slowdown);
            table.push_row([format!("{mech}+BH"), class.clone(), fmt3(ratio)]);
        }
    }
    print_results(
        "Figure 7: normalized unfairness (max slowdown of benign applications) with an attacker present (N_RH = 1K)",
        &table,
    );
}
