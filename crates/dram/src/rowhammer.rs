//! RowHammer victim-disturbance model.
//!
//! This module tracks, for every DRAM row, how much read disturbance it has
//! accumulated since it was last refreshed (either by a directed preventive
//! refresh or by the periodic refresh sweep). A row whose accumulated
//! disturbance reaches the RowHammer threshold `N_RH` would experience
//! bitflips on real hardware; the tracker records such events so tests can
//! assert that a mitigation mechanism — with or without BreakHammer attached —
//! never lets one happen (the paper's "BreakHammer preserves the security
//! guarantees of the mitigation it is paired with" claim, §5.1).
//!
//! The tracker also maintains per-aggressor activation counts, which the
//! device uses to model the in-DRAM preventive refreshes performed during RFM
//! windows (the RFM and PRAC mechanisms).

use crate::geometry::{DramGeometry, RowAddr};
use crate::types::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A (potential) RowHammer bitflip event: a victim row accumulated `N_RH`
/// disturbance before being refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitflipEvent {
    /// The victim row that would have flipped.
    pub victim: RowAddr,
    /// Cycle at which the threshold was crossed.
    pub cycle: Cycle,
    /// The disturbance count at the moment of the event.
    pub disturbance: u64,
}

/// Tracks read disturbance per victim row and activations per aggressor row.
#[derive(Debug, Clone)]
pub struct RowHammerTracker {
    geometry: DramGeometry,
    nrh: u64,
    blast_radius: usize,
    /// Per flat bank: victim row -> accumulated disturbance since last refresh.
    disturbance: Vec<HashMap<usize, u64>>,
    /// Per flat bank: aggressor row -> activations since its victims were last
    /// preventively refreshed (used to service RFM windows).
    aggressor_acts: Vec<HashMap<usize, u64>>,
    /// Recorded would-be bitflips.
    bitflips: Vec<BitflipEvent>,
    /// Total activations observed.
    total_activations: u64,
}

impl RowHammerTracker {
    /// Creates a tracker for `geometry` with RowHammer threshold `nrh` and the
    /// given blast radius (how many physically adjacent rows an aggressor
    /// disturbs on each side; the paper and most defenses assume 1–2).
    ///
    /// # Panics
    /// Panics if `nrh` is zero or `blast_radius` is zero.
    pub fn new(geometry: DramGeometry, nrh: u64, blast_radius: usize) -> Self {
        assert!(nrh > 0, "RowHammer threshold must be positive");
        assert!(blast_radius > 0, "blast radius must be positive");
        let banks = geometry.banks_per_channel();
        RowHammerTracker {
            geometry,
            nrh,
            blast_radius,
            disturbance: vec![HashMap::new(); banks],
            aggressor_acts: vec![HashMap::new(); banks],
            bitflips: Vec::new(),
            total_activations: 0,
        }
    }

    /// The configured RowHammer threshold.
    pub fn nrh(&self) -> u64 {
        self.nrh
    }

    /// The configured blast radius.
    pub fn blast_radius(&self) -> usize {
        self.blast_radius
    }

    /// Records an activation of `row` at `cycle`: the row's neighbours gain
    /// one unit of disturbance each, and the row's aggressor count grows.
    pub fn on_activate(&mut self, row: RowAddr, cycle: Cycle) {
        self.total_activations += 1;
        let flat_bank = self.geometry.flat_bank(row.bank);
        *self.aggressor_acts[flat_bank].entry(row.row).or_insert(0) += 1;

        for victim in self.geometry.neighbor_rows(row, self.blast_radius) {
            let v_bank = self.geometry.flat_bank(victim.bank);
            let entry = self.disturbance[v_bank].entry(victim.row).or_insert(0);
            *entry += 1;
            if *entry == self.nrh {
                self.bitflips.push(BitflipEvent { victim, cycle, disturbance: *entry });
            }
        }
    }

    /// Records that `row` was refreshed (directed preventive refresh): its
    /// accumulated disturbance is cleared.
    pub fn on_row_refreshed(&mut self, row: RowAddr) {
        let flat_bank = self.geometry.flat_bank(row.bank);
        self.disturbance[flat_bank].remove(&row.row);
        // Refreshing a row also clears the "pending preventive work" of the
        // aggressors for which this row was the victim only partially; we keep
        // the aggressor counters untouched so RFM servicing stays conservative.
    }

    /// Records a periodic-refresh sweep covering rows `[row_start, row_end)`
    /// of every bank in `rank`: those rows are restored, so their accumulated
    /// disturbance is cleared.
    pub fn on_periodic_refresh(&mut self, rank: usize, row_start: usize, row_end: usize) {
        for bank in self.geometry.iter_banks().filter(|b| b.rank == rank).collect::<Vec<_>>() {
            let flat = self.geometry.flat_bank(bank);
            self.disturbance[flat].retain(|row, _| *row < row_start || *row >= row_end);
            self.aggressor_acts[flat].retain(|row, _| *row < row_start || *row >= row_end);
        }
    }

    /// Models the in-DRAM preventive refreshes performed during one RFM (or
    /// PRAC back-off) window on `bank`: the `aggressors` most-activated rows
    /// have their neighbours refreshed and their counters reset.
    ///
    /// Returns the victim rows that were refreshed.
    pub fn service_rfm(
        &mut self,
        bank: crate::geometry::BankAddr,
        aggressors: usize,
    ) -> Vec<RowAddr> {
        let flat = self.geometry.flat_bank(bank);
        let mut hot: Vec<(usize, u64)> =
            self.aggressor_acts[flat].iter().map(|(r, c)| (*r, *c)).collect();
        hot.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(aggressors);

        let mut refreshed = Vec::new();
        for (row, _) in hot {
            let aggressor = RowAddr { bank, row };
            self.aggressor_acts[flat].remove(&row);
            for victim in self.geometry.neighbor_rows(aggressor, self.blast_radius) {
                let v_bank = self.geometry.flat_bank(victim.bank);
                self.disturbance[v_bank].remove(&victim.row);
                refreshed.push(victim);
            }
        }
        refreshed
    }

    /// Current disturbance of a specific row.
    pub fn disturbance_of(&self, row: RowAddr) -> u64 {
        let flat = self.geometry.flat_bank(row.bank);
        self.disturbance[flat].get(&row.row).copied().unwrap_or(0)
    }

    /// Activation count of an aggressor row since its last RFM service.
    pub fn aggressor_activations(&self, row: RowAddr) -> u64 {
        let flat = self.geometry.flat_bank(row.bank);
        self.aggressor_acts[flat].get(&row.row).copied().unwrap_or(0)
    }

    /// The largest disturbance currently accumulated by any row.
    pub fn max_disturbance(&self) -> u64 {
        self.disturbance.iter().flat_map(|m| m.values()).copied().max().unwrap_or(0)
    }

    /// All recorded would-be bitflips.
    pub fn bitflips(&self) -> &[BitflipEvent] {
        &self.bitflips
    }

    /// Number of recorded would-be bitflips.
    pub fn bitflip_count(&self) -> usize {
        self.bitflips.len()
    }

    /// Total number of activations observed.
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Geometry the tracker was built for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankAddr;

    fn tracker(nrh: u64) -> RowHammerTracker {
        RowHammerTracker::new(DramGeometry::tiny(), nrh, 1)
    }

    fn row(bank: usize, r: usize) -> RowAddr {
        RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank }, row: r }
    }

    #[test]
    fn activations_disturb_neighbors() {
        let mut t = tracker(100);
        t.on_activate(row(0, 10), 0);
        assert_eq!(t.disturbance_of(row(0, 9)), 1);
        assert_eq!(t.disturbance_of(row(0, 11)), 1);
        assert_eq!(t.disturbance_of(row(0, 10)), 0);
        assert_eq!(t.aggressor_activations(row(0, 10)), 1);
        assert_eq!(t.total_activations(), 1);
    }

    #[test]
    fn bitflip_recorded_exactly_at_threshold() {
        let mut t = tracker(8);
        for c in 0..7 {
            t.on_activate(row(0, 20), c);
        }
        assert_eq!(t.bitflip_count(), 0);
        t.on_activate(row(0, 20), 7);
        // Both neighbours (19 and 21) cross the threshold at the same time.
        assert_eq!(t.bitflip_count(), 2);
        assert_eq!(t.max_disturbance(), 8);
        assert!(t.bitflips().iter().all(|b| b.disturbance == 8));
    }

    #[test]
    fn directed_refresh_clears_disturbance() {
        let mut t = tracker(8);
        for c in 0..5 {
            t.on_activate(row(0, 20), c);
        }
        t.on_row_refreshed(row(0, 19));
        assert_eq!(t.disturbance_of(row(0, 19)), 0);
        assert_eq!(t.disturbance_of(row(0, 21)), 5);
        // Hammering can resume without flipping 19 until another N_RH acts.
        for c in 5..12 {
            t.on_activate(row(0, 20), c);
        }
        // Row 21 flipped (5+7=12 >= 8), row 19 did not (7 < 8).
        assert_eq!(t.bitflip_count(), 1);
        assert_eq!(t.bitflips()[0].victim, row(0, 21));
    }

    #[test]
    fn periodic_refresh_sweep_clears_covered_rows_of_the_rank() {
        let mut t = tracker(1000);
        t.on_activate(row(0, 20), 0);
        t.on_activate(row(1, 20), 0);
        // Row 20's victims are 19 and 21; sweep rows [0, 32) of rank 0.
        t.on_periodic_refresh(0, 0, 32);
        assert_eq!(t.disturbance_of(row(0, 19)), 0);
        assert_eq!(t.disturbance_of(row(1, 21)), 0);
        // A row outside the sweep keeps its disturbance.
        t.on_activate(row(0, 100), 1);
        t.on_periodic_refresh(0, 0, 32);
        assert_eq!(t.disturbance_of(row(0, 99)), 1);
    }

    #[test]
    fn rfm_service_targets_hottest_aggressors() {
        let mut t = tracker(1000);
        for c in 0..50 {
            t.on_activate(row(0, 40), c);
        }
        for c in 0..10 {
            t.on_activate(row(0, 80), c);
        }
        let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let refreshed = t.service_rfm(bank, 1);
        // The hotter aggressor (row 40) is serviced: victims 39 and 41.
        assert_eq!(refreshed.len(), 2);
        assert!(refreshed.iter().all(|r| r.row == 39 || r.row == 41));
        assert_eq!(t.disturbance_of(row(0, 39)), 0);
        assert_eq!(t.aggressor_activations(row(0, 40)), 0);
        // The cooler aggressor is untouched.
        assert_eq!(t.disturbance_of(row(0, 79)), 10);
        assert_eq!(t.aggressor_activations(row(0, 80)), 10);
    }

    #[test]
    fn blast_radius_two_disturbs_four_neighbors() {
        let mut t = RowHammerTracker::new(DramGeometry::tiny(), 100, 2);
        t.on_activate(row(0, 50), 0);
        for r in [48, 49, 51, 52] {
            assert_eq!(t.disturbance_of(row(0, r)), 1, "row {r}");
        }
        assert_eq!(t.disturbance_of(row(0, 47)), 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_is_rejected() {
        let _ = RowHammerTracker::new(DramGeometry::tiny(), 0, 1);
    }
}
