//! Differential testing of the two simulation kernels.
//!
//! The event-driven kernel (`SchedulerKind::EventDriven`) must be
//! *bit-identical* to the per-cycle reference kernel
//! (`SchedulerKind::PerCycle`): same IPCs, cycle counts, preventive actions,
//! suspect flags, latency histograms, energy — the whole
//! [`SimulationResult`]. This suite runs the same workload under both kernels
//! and asserts full equality, over a deterministic mechanism matrix and over
//! proptest-randomized mixes (benign and attack, several mechanisms,
//! BreakHammer on and off).

use breakhammer_suite::cpu::Trace;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    SchedulerKind, SimulationResult, System, SystemConfig, TerminationReason,
};
use proptest::prelude::*;

mod common;
use common::{attack_traces, attack_traces_composed, benign_traces};

/// Runs `config` under both kernels and returns (per_cycle, event_driven).
fn run_both(
    mut config: SystemConfig,
    traces: &[Trace],
    required: Vec<usize>,
) -> (SimulationResult, SimulationResult) {
    config.scheduler = SchedulerKind::PerCycle;
    let reference = System::new(config.clone(), traces, required.clone()).run();
    config.scheduler = SchedulerKind::EventDriven;
    let event_driven = System::new(config, traces, required).run();
    (reference, event_driven)
}

fn assert_identical(config: SystemConfig, traces: &[Trace], required: Vec<usize>) {
    let label = config.summary();
    let (reference, event_driven) = run_both(config, traces, required);
    assert_eq!(reference, event_driven, "kernels diverged for {label}");
}

/// Every mechanism (and the no-defense baseline), with and without
/// BreakHammer, under attack, must be bit-identical across the kernels.
#[test]
fn all_mechanisms_under_attack_are_identical_across_kernels() {
    for mechanism in [
        MechanismKind::None,
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ] {
        for breakhammer in [false, true] {
            if mechanism == MechanismKind::None && breakhammer {
                continue;
            }
            let mut config = SystemConfig::fast_test(mechanism, 128, breakhammer);
            config.instructions_per_core = 6_000;
            let traces = attack_traces(&config, 2_000, 100);
            assert_identical(config, &traces, vec![0, 1, 2]);
        }
    }
}

/// Every composable-attacker catalog scenario (pattern × placement), with
/// victim tracking enabled so the per-victim disturbance reports are part of
/// the compared result, must be bit-identical across the kernels.
#[test]
fn scenario_catalog_is_identical_across_kernels() {
    use breakhammer_suite::workloads::scenario_catalog;
    for scenario in scenario_catalog() {
        for breakhammer in [false, true] {
            let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, breakhammer);
            config.instructions_per_core = 6_000;
            let traces = attack_traces_composed(&config, &scenario.attacker, 2_000, 100);
            let victims = scenario.attacker.victim_rows(&config.geometry);
            let label = format!("scenario {} ({})", scenario.name, config.summary());
            let run = |kernel| {
                let mut config = config.clone();
                config.scheduler = kernel;
                System::new(config, &traces, vec![0, 1, 2])
                    .watch_victims(victims.iter().map(|v| (v.channel, v.row)))
                    .run()
            };
            let reference = run(SchedulerKind::PerCycle);
            let event_driven = run(SchedulerKind::EventDriven);
            assert_eq!(reference, event_driven, "kernels diverged for {label}");
            assert_eq!(
                reference.victims.len(),
                victims.len(),
                "victim reports missing for {label}"
            );
        }
    }
}

/// All-benign workloads (the common case of Figs. 13–17) must match too.
#[test]
fn benign_mixes_are_identical_across_kernels() {
    for mechanism in [MechanismKind::None, MechanismKind::Graphene, MechanismKind::Para] {
        let mut config = SystemConfig::fast_test(mechanism, 256, mechanism != MechanismKind::None);
        config.instructions_per_core = 8_000;
        let traces = benign_traces(&config, 2_000, 100);
        assert_identical(config, &traces, vec![0, 1, 2, 3]);
    }
}

/// A run that hits the `max_dram_cycles` safety cap must stop at the same
/// cycle with the same partial statistics under both kernels.
#[test]
fn max_cycle_cutoff_is_identical_across_kernels() {
    let mut config = SystemConfig::fast_test(MechanismKind::Aqua, 64, false);
    config.instructions_per_core = 50_000;
    config.max_dram_cycles = 40_000; // far too few to finish
    let traces = attack_traces(&config, 2_000, 7);
    let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2]);
    assert_eq!(reference.dram_cycles, 40_000);
    assert_eq!(reference, event_driven);
}

/// Aggressive BreakHammer throttling (tiny windows, low thresholds) exercises
/// the quota-restoration window edges the event-driven kernel must hit
/// exactly: the rotation happens at the edge cycle and the restored quotas
/// reach the LLC on the very next cycle, waking quota-stalled cores.
#[test]
fn tight_breakhammer_windows_are_identical_across_kernels() {
    for (window, seed) in [(300u64, 42u64), (1_000, 6), (2_000, 6), (2_000, 7), (500, 11)] {
        let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 64, true);
        config.instructions_per_core = 30_000;
        let mut bh = config.effective_breakhammer_config();
        bh.threat_threshold = 4.0;
        bh.window_cycles = window;
        config.breakhammer_config = Some(bh);
        let traces = attack_traces(&config, 2_000, seed);
        let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2]);
        // The scenario must actually cross window edges, or this test would
        // assert equality on runs containing no rotation at all.
        let stats = reference.breakhammer.as_ref().expect("BreakHammer attached");
        assert!(
            stats.windows_completed > 0,
            "window {window}: no rotation happened — the test lost its coverage"
        );
        assert_eq!(reference, event_driven, "kernels diverged for window {window} seed {seed}");
    }
}

/// The hardest window-edge case: the attacker itself is a required core, so
/// once the benign cores finish, the only remaining activity is a
/// quota-starved thread whose progress is gated entirely by quota
/// restorations at window rotations. If the event-driven kernel misses the
/// propagation cycle right after a rotation (or the rotation itself), the
/// attacker wakes a whole window late and the run lengths diverge wildly.
#[test]
fn quota_starved_tail_is_identical_across_kernels() {
    for (window, seed) in [(500u64, 1u64), (1_000, 2), (2_000, 3)] {
        let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 64, true);
        config.instructions_per_core = 6_000;
        config.max_dram_cycles = 400_000;
        let mut bh = config.effective_breakhammer_config();
        bh.threat_threshold = 2.0;
        bh.outlier_threshold = 0.2;
        bh.window_cycles = window;
        config.breakhammer_config = Some(bh);
        let traces = attack_traces(&config, 1_000, seed);
        let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2, 3]);
        let stats = reference.breakhammer.as_ref().expect("BreakHammer attached");
        assert!(stats.windows_completed > 0, "window {window}: no rotation happened");
        assert!(
            stats.quota_restorations > 0,
            "window {window}: no quota was ever restored — the test lost its coverage"
        );
        assert_eq!(reference, event_driven, "kernels diverged for window {window} seed {seed}");
    }
}

/// Multi-channel systems must not reopen the kernel gap: the merged
/// next-event horizon (minimum over per-channel controllers) has the same
/// never-overshoot contract as a single controller's. The fuller channel
/// matrix (mechanisms × interleave policies) lives in `tests/multichannel.rs`;
/// this case keeps the channels axis visible in the core differential suite.
#[test]
fn multi_channel_systems_are_identical_across_kernels() {
    for channels in [2usize, 4] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 128, true).with_channels(channels);
        config.instructions_per_core = 6_000;
        let traces = attack_traces(&config, 2_000, 100);
        let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2]);
        assert_eq!(reference, event_driven, "kernels diverged at {channels} channels");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized small mixes: mechanism, threshold, BreakHammer, budget,
    /// trace length and seed all vary; the kernels must never diverge.
    #[test]
    fn randomized_mixes_are_identical_across_kernels(
        mechanism_idx in 0usize..6,
        nrh_idx in 0usize..3,
        breakhammer in any::<bool>(),
        attack in any::<bool>(),
        instructions in 1_500u64..5_000,
        entries in 500usize..2_000,
        seed in 0u64..1_000,
    ) {
        let mechanism = [
            MechanismKind::Para,
            MechanismKind::Graphene,
            MechanismKind::Hydra,
            MechanismKind::Rfm,
            MechanismKind::Aqua,
            MechanismKind::BlockHammer,
        ][mechanism_idx];
        let nrh = [64u64, 256, 1024][nrh_idx];
        let mut config = SystemConfig::fast_test(mechanism, nrh, breakhammer);
        config.instructions_per_core = instructions;
        config.seed = seed;
        let (traces, required) = if attack {
            (attack_traces(&config, entries, seed), vec![0, 1, 2])
        } else {
            (benign_traces(&config, entries, seed), vec![0, 1, 2, 3])
        };
        let label = config.summary();
        let (reference, event_driven) = run_both(config, &traces, required);
        prop_assert_eq!(reference, event_driven, "kernels diverged for {}", label);
    }
}

/// A chaos-injected livelock under a tight watchdog: the event-driven kernel
/// fast-forwards through the dead tail in horizon-clamped jumps, the
/// per-cycle kernel grinds through it cycle by cycle — the `Livelock`
/// verdict, the [`LivelockReport`] snapshot and the whole result must still
/// be bit-identical.
#[test]
fn watchdog_livelock_verdict_is_identical_across_kernels() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    config.instructions_per_core = 50_000;
    config.chaos.drop_fills_after = Some(1_000);
    config.watchdog.epoch_cycles = 5_000;
    config.watchdog.stall_epochs = 4;
    let traces = benign_traces(&config, 2_000, 7);
    let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2, 3]);
    assert_eq!(reference.termination, TerminationReason::Livelock);
    assert!(reference.livelock.is_some(), "livelock verdicts carry a report");
    assert_eq!(reference, event_driven, "watchdog verdict diverged across kernels");
}
