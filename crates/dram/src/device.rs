//! The DRAM channel device model: banks, timing-constraint engine, command
//! execution, statistics, energy accounting and RowHammer tracking.
//!
//! [`DramChannel`] is driven by the memory controller in `bh-mem`. The
//! controller asks [`DramChannel::earliest_issue`] when a candidate command
//! could legally go out and then calls [`DramChannel::issue`]; the device
//! enforces both the JEDEC-style timing constraints and the bank state
//! machine, and returns when the data (if any) will be available.

use crate::bank::{BankGroupState, BankState, RankState, RowState};
use crate::command::{CommandKind, DramCommand};
use crate::energy::{EnergyCounters, EnergyParams};
use crate::error::DramError;
use crate::geometry::{BankAddr, DramGeometry, RowAddr};
use crate::rowhammer::RowHammerTracker;
use crate::timing::TimingParams;
use crate::types::Cycle;
use serde::{Deserialize, Serialize};

/// Depth of the rolling activation window used for the tFAW constraint.
const FAW_DEPTH: usize = 4;

/// Result of issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandOutcome {
    /// For column commands, the cycle at which the data transfer completes
    /// (read data available / write data absorbed).
    pub data_ready_at: Option<Cycle>,
    /// The cycle until which the targeted bank (or rank for refresh-class
    /// commands) is busy with this command.
    pub busy_until: Cycle,
}

/// Per-command-kind issue counters.
// bh-exhaustive: `accumulate` destructures every field; bh_analyze rule X1
// rejects any `..` at a `DramStats { .. }` use site.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// ACT commands issued.
    pub activates: u64,
    /// PRE commands issued.
    pub precharges: u64,
    /// PREA commands issued.
    pub precharge_alls: u64,
    /// RD commands issued.
    pub reads: u64,
    /// WR commands issued.
    pub writes: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// REFsb commands issued.
    pub refreshes_same_bank: u64,
    /// RFM commands issued.
    pub rfm_commands: u64,
    /// Directed victim-row refreshes issued.
    pub victim_refreshes: u64,
}

impl DramStats {
    /// Adds another channel's counters into this one (used by multi-channel
    /// systems to aggregate per-channel statistics).
    pub fn accumulate(&mut self, other: &DramStats) {
        // Exhaustive destructuring (no `..`): adding a stat field without
        // aggregating it here is a compile error, not a silent zero in
        // multi-channel results.
        let DramStats {
            activates,
            precharges,
            precharge_alls,
            reads,
            writes,
            refreshes,
            refreshes_same_bank,
            rfm_commands,
            victim_refreshes,
        } = other;
        self.activates += activates;
        self.precharges += precharges;
        self.precharge_alls += precharge_alls;
        self.reads += reads;
        self.writes += writes;
        self.refreshes += refreshes;
        self.refreshes_same_bank += refreshes_same_bank;
        self.rfm_commands += rfm_commands;
        self.victim_refreshes += victim_refreshes;
    }

    /// Total commands issued.
    pub fn total(&self) -> u64 {
        self.activates
            + self.precharges
            + self.precharge_alls
            + self.reads
            + self.writes
            + self.refreshes
            + self.refreshes_same_bank
            + self.rfm_commands
            + self.victim_refreshes
    }
}

/// Configuration knobs of the device model that are not timing parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// How many of the hottest aggressor rows the in-DRAM logic preventively
    /// refreshes per RFM (or PRAC back-off) window.
    pub rfm_aggressors_serviced: usize,
    /// RowHammer blast radius used by the victim model.
    pub blast_radius: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig { rfm_aggressors_serviced: 2, blast_radius: 1 }
    }
}

/// A single DRAM channel: the set of ranks/banks behind one command bus.
#[derive(Debug, Clone)]
pub struct DramChannel {
    geometry: DramGeometry,
    timing: TimingParams,
    energy_params: EnergyParams,
    config: DeviceConfig,
    banks: Vec<BankState>,
    groups: Vec<BankGroupState>,
    ranks: Vec<RankState>,
    /// Number of banks with an open row, per rank — keeps the refresh
    /// machinery's every-tick [`DramChannel::all_banks_closed`] query O(1).
    open_per_rank: Vec<u32>,
    /// Earliest cycle the shared data bus accepts another column command.
    next_column_bus: Cycle,
    stats: DramStats,
    energy: EnergyCounters,
    rowhammer: Option<RowHammerTracker>,
}

impl DramChannel {
    /// Creates a channel with the given geometry and timing, without a
    /// RowHammer victim model.
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        Self::with_config(geometry, timing, EnergyParams::default(), DeviceConfig::default(), None)
    }

    /// Creates a channel that also tracks RowHammer disturbance with threshold
    /// `nrh`.
    pub fn with_rowhammer(geometry: DramGeometry, timing: TimingParams, nrh: u64) -> Self {
        let config = DeviceConfig::default();
        let tracker = RowHammerTracker::new(geometry.clone(), nrh, config.blast_radius);
        Self::with_config(geometry, timing, EnergyParams::default(), config, Some(tracker))
    }

    /// Fully-configurable constructor.
    pub fn with_config(
        geometry: DramGeometry,
        timing: TimingParams,
        energy_params: EnergyParams,
        config: DeviceConfig,
        rowhammer: Option<RowHammerTracker>,
    ) -> Self {
        timing.validate().expect("invalid timing parameters");
        let banks = vec![BankState::new(); geometry.banks_per_channel()];
        let groups = vec![BankGroupState::default(); geometry.ranks * geometry.bank_groups];
        let ranks = vec![RankState::default(); geometry.ranks];
        let ranks_count = geometry.ranks;
        DramChannel {
            geometry,
            timing,
            energy_params,
            config,
            banks,
            groups,
            ranks,
            open_per_rank: vec![0; ranks_count],
            next_column_bus: 0,
            stats: DramStats::default(),
            energy: EnergyCounters::new(),
            rowhammer,
        }
    }

    /// The channel's geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The channel's timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The channel's energy parameters.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy_params
    }

    /// Command-issue statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Energy event counters.
    pub fn energy(&self) -> &EnergyCounters {
        &self.energy
    }

    /// The RowHammer tracker, if one is attached.
    pub fn rowhammer(&self) -> Option<&RowHammerTracker> {
        self.rowhammer.as_ref()
    }

    /// Mutable access to the RowHammer tracker, if one is attached.
    pub fn rowhammer_mut(&mut self) -> Option<&mut RowHammerTracker> {
        self.rowhammer.as_mut()
    }

    /// The row currently open in `bank`, if any.
    pub fn open_row(&self, bank: BankAddr) -> Option<usize> {
        self.banks[self.geometry.flat_bank(bank)].open_row()
    }

    /// The row currently open in the bank with flat index `flat`, if any
    /// (the allocation- and recomputation-free fast path for schedulers that
    /// cache flat bank indices).
    pub fn open_row_flat(&self, flat: usize) -> Option<usize> {
        self.banks[flat].open_row()
    }

    /// True if every bank of `rank` is precharged.
    pub fn all_banks_closed(&self, rank: usize) -> bool {
        debug_assert_eq!(
            u64::from(self.open_per_rank[rank]),
            self.geometry.rank_flat_range(rank).filter(|f| !self.banks[*f].is_closed()).count()
                as u64
        );
        self.open_per_rank[rank] == 0
    }

    /// Lifetime activation count of `bank`.
    pub fn bank_activations(&self, bank: BankAddr) -> u64 {
        self.banks[self.geometry.flat_bank(bank)].activation_count
    }

    /// Lifetime activation count of `rank`.
    pub fn rank_activations(&self, rank: usize) -> u64 {
        self.ranks[rank].activation_count
    }

    fn group_index(&self, bank: BankAddr) -> usize {
        bank.rank * self.geometry.bank_groups + bank.bank_group
    }

    fn check_address(&self, cmd: &DramCommand) -> Result<(), DramError> {
        let g = &self.geometry;
        let b = cmd.bank;
        if b.rank >= g.ranks || b.bank_group >= g.bank_groups || b.bank >= g.banks_per_group {
            return Err(DramError::AddressOutOfRange {
                command: *cmd,
                reason: format!("bank {b} outside geometry"),
            });
        }
        if cmd.kind.opens_row() && cmd.row >= g.rows_per_bank {
            return Err(DramError::AddressOutOfRange {
                command: *cmd,
                reason: format!("row {} >= {}", cmd.row, g.rows_per_bank),
            });
        }
        if cmd.kind.is_column() && cmd.column >= g.columns_per_row {
            return Err(DramError::AddressOutOfRange {
                command: *cmd,
                reason: format!("column {} >= {}", cmd.column, g.columns_per_row),
            });
        }
        Ok(())
    }

    fn check_state(&self, cmd: &DramCommand) -> Result<(), DramError> {
        let flat = self.geometry.flat_bank(cmd.bank);
        let bank = &self.banks[flat];
        let violation = |reason: &str| {
            Err(DramError::StateViolation { command: *cmd, reason: reason.to_string() })
        };
        match cmd.kind {
            CommandKind::Activate | CommandKind::VictimRefresh => {
                if !bank.is_closed() {
                    return violation("bank already has an open row");
                }
            }
            CommandKind::Read | CommandKind::Write => match bank.row {
                RowState::Open { row, .. } if row == cmd.row => {}
                RowState::Open { row, .. } => {
                    return violation(&format!("open row {row} does not match command row"));
                }
                RowState::Closed => return violation("bank is precharged"),
            },
            CommandKind::Refresh => {
                if !self.all_banks_closed(cmd.bank.rank) {
                    return violation("all banks of the rank must be precharged before REF");
                }
            }
            CommandKind::RefreshSameBank | CommandKind::RefreshManagement => {
                if !bank.is_closed() {
                    return violation("target bank must be precharged");
                }
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {}
        }
        Ok(())
    }

    /// Earliest cycle at which `cmd` satisfies every timing constraint
    /// (ignoring bank-state requirements, which are checked at issue time).
    pub fn earliest_issue(&self, cmd: &DramCommand) -> Cycle {
        let flat = self.geometry.flat_bank(cmd.bank);
        let bank = &self.banks[flat];
        let group = &self.groups[self.group_index(cmd.bank)];
        let rank = &self.ranks[cmd.bank.rank];
        let t = &self.timing;

        match cmd.kind {
            CommandKind::Activate | CommandKind::VictimRefresh => bank
                .earliest(cmd.kind)
                .max(group.next_act)
                .max(rank.next_act)
                .max(rank.faw_earliest(FAW_DEPTH, t.t_faw)),
            CommandKind::Precharge => bank.earliest(cmd.kind),
            CommandKind::PrechargeAll => self
                .geometry
                .rank_flat_range(cmd.bank.rank)
                .map(|f| self.banks[f].earliest(CommandKind::Precharge))
                .max()
                .unwrap_or(0),
            CommandKind::Read => bank
                .earliest(cmd.kind)
                .max(group.next_rd)
                .max(rank.next_rd)
                .max(self.next_column_bus),
            CommandKind::Write => bank
                .earliest(cmd.kind)
                .max(group.next_wr)
                .max(rank.next_wr)
                .max(self.next_column_bus),
            CommandKind::Refresh => self
                .geometry
                .rank_flat_range(cmd.bank.rank)
                .map(|f| self.banks[f].earliest(CommandKind::Refresh))
                .max()
                .unwrap_or(0)
                .max(rank.next_ref),
            CommandKind::RefreshSameBank | CommandKind::RefreshManagement => {
                bank.earliest(cmd.kind).max(rank.next_ref)
            }
        }
    }

    /// Earliest cycle at which a demand-class command (`Read`, `Write`,
    /// `Activate` or `Precharge`) may issue to the bank with flat index
    /// `flat` — equivalent to [`DramChannel::earliest_issue`] for those
    /// kinds, but takes the cached flat index instead of re-deriving it and
    /// needs no `DramCommand`.
    pub fn demand_ready_at(&self, flat: usize, bank_addr: BankAddr, kind: CommandKind) -> Cycle {
        self.demand_ready_at_cached(flat, self.group_index(bank_addr), bank_addr.rank, kind)
    }

    /// Like [`DramChannel::demand_ready_at`], but with the bank-group and
    /// rank indices also pre-resolved by the caller (the hottest scheduler
    /// path: pure loads and maxes).
    ///
    /// # Panics
    /// Panics (debug) or computes a precharge horizon (release) for
    /// refresh-class kinds; use [`DramChannel::earliest_issue`] for those.
    pub fn demand_ready_at_cached(
        &self,
        flat: usize,
        group: usize,
        rank: usize,
        kind: CommandKind,
    ) -> Cycle {
        debug_assert!(matches!(
            kind,
            CommandKind::Read | CommandKind::Write | CommandKind::Activate | CommandKind::Precharge
        ));
        let bank = &self.banks[flat];
        match kind {
            CommandKind::Read => {
                let group = &self.groups[group];
                let rank = &self.ranks[rank];
                bank.next_rd.max(group.next_rd).max(rank.next_rd).max(self.next_column_bus)
            }
            CommandKind::Write => {
                let group = &self.groups[group];
                let rank = &self.ranks[rank];
                bank.next_wr.max(group.next_wr).max(rank.next_wr).max(self.next_column_bus)
            }
            CommandKind::Activate => {
                let group = &self.groups[group];
                let rank = &self.ranks[rank];
                bank.next_act
                    .max(group.next_act)
                    .max(rank.next_act)
                    .max(rank.faw_earliest(FAW_DEPTH, self.timing.t_faw))
            }
            _ => bank.next_pre,
        }
    }

    /// The bank-local component of [`DramChannel::demand_ready_at_cached`]:
    /// a single load from the bank's timing state. Split out so a scheduler
    /// scanning many banks of the same (group, rank) can combine it with one
    /// shared [`DramChannel::demand_ready_shared_component`] per tick
    /// instead of re-deriving the full four-way max per bank.
    #[inline]
    pub fn demand_ready_bank_component(&self, flat: usize, kind: CommandKind) -> Cycle {
        let bank = &self.banks[flat];
        match kind {
            CommandKind::Read => bank.next_rd,
            CommandKind::Write => bank.next_wr,
            CommandKind::Activate => bank.next_act,
            _ => bank.next_pre,
        }
    }

    /// The bank-independent component of
    /// [`DramChannel::demand_ready_at_cached`]: the group/rank/column-bus
    /// constraints shared by every bank of the same (group, rank).
    /// `demand_ready_at_cached(flat, group, rank, kind)` equals
    /// `demand_ready_bank_component(flat, kind)
    ///  .max(demand_ready_shared_component(group, rank, kind))`.
    #[inline]
    pub fn demand_ready_shared_component(
        &self,
        group: usize,
        rank: usize,
        kind: CommandKind,
    ) -> Cycle {
        match kind {
            CommandKind::Read => {
                let group = &self.groups[group];
                let rank = &self.ranks[rank];
                group.next_rd.max(rank.next_rd).max(self.next_column_bus)
            }
            CommandKind::Write => {
                let group = &self.groups[group];
                let rank = &self.ranks[rank];
                group.next_wr.max(rank.next_wr).max(self.next_column_bus)
            }
            CommandKind::Activate => {
                let group = &self.groups[group];
                let rank = &self.ranks[rank];
                group
                    .next_act
                    .max(rank.next_act)
                    .max(rank.faw_earliest(FAW_DEPTH, self.timing.t_faw))
            }
            // Precharge is gated by bank-local state only.
            _ => 0,
        }
    }

    /// True if `cmd` can be legally issued at `cycle` (timing and state).
    pub fn can_issue(&self, cmd: &DramCommand, cycle: Cycle) -> bool {
        self.check_address(cmd).is_ok()
            && self.check_state(cmd).is_ok()
            && cycle >= self.earliest_issue(cmd)
    }

    /// Issues `cmd` at `cycle`, updating all device state.
    ///
    /// # Errors
    /// Returns a [`DramError`] if the command violates the geometry, the bank
    /// state machine, or a timing constraint.
    pub fn issue(&mut self, cmd: &DramCommand, cycle: Cycle) -> Result<CommandOutcome, DramError> {
        self.check_address(cmd)?;
        self.check_state(cmd)?;
        let earliest = self.earliest_issue(cmd);
        if cycle < earliest {
            return Err(DramError::TimingViolation { command: *cmd, issued_at: cycle, earliest });
        }
        Ok(self.apply(cmd, cycle))
    }

    /// Like [`DramChannel::issue`], for callers that have already established
    /// issuability at `cycle` (the memory controller's scheduling scan
    /// derives exactly these checks as part of candidate selection). Address,
    /// state and timing validation still runs in debug builds — the test
    /// suite exercises it on every command — but is skipped in release
    /// builds, keeping redundant re-validation off the per-command hot path.
    pub fn issue_prechecked(&mut self, cmd: &DramCommand, cycle: Cycle) -> CommandOutcome {
        #[cfg(debug_assertions)]
        {
            self.check_address(cmd).expect("prechecked command has a valid address");
            self.check_state(cmd).expect("prechecked command matches the bank state");
            let earliest = self.earliest_issue(cmd);
            assert!(
                cycle >= earliest,
                "prechecked command violates timing: {cmd:?} at {cycle} < {earliest}"
            );
        }
        self.apply(cmd, cycle)
    }

    /// Applies `cmd` to the device state at `cycle`; the caller guarantees
    /// validity.
    fn apply(&mut self, cmd: &DramCommand, cycle: Cycle) -> CommandOutcome {
        let flat = self.geometry.flat_bank(cmd.bank);
        let group_idx = self.group_index(cmd.bank);
        let t = &self.timing;
        let outcome = match cmd.kind {
            CommandKind::Activate => {
                let bank = &mut self.banks[flat];
                debug_assert!(bank.is_closed(), "ACT on open bank");
                self.open_per_rank[cmd.bank.rank] += 1;
                bank.row = RowState::Open { row: cmd.row, since: cycle };
                bank.activation_count += 1;
                bank.next_pre = bank.next_pre.max(cycle + t.t_ras);
                bank.next_rd = bank.next_rd.max(cycle + t.t_rcd);
                bank.next_wr = bank.next_wr.max(cycle + t.t_rcd);
                bank.next_act = bank.next_act.max(cycle + t.t_rc);
                let group = &mut self.groups[group_idx];
                group.next_act = group.next_act.max(cycle + t.t_rrd_l);
                let rank = &mut self.ranks[cmd.bank.rank];
                rank.next_act = rank.next_act.max(cycle + t.t_rrd_s);
                rank.record_activation(cycle, FAW_DEPTH);
                self.stats.activates += 1;
                self.energy.activations += 1;
                if let Some(rh) = self.rowhammer.as_mut() {
                    rh.on_activate(RowAddr { bank: cmd.bank, row: cmd.row }, cycle);
                }
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rcd }
            }
            CommandKind::VictimRefresh => {
                // Modelled as an ACT+PRE pair on the victim row that restores
                // its charge; it occupies the bank for one full row cycle.
                let bank = &mut self.banks[flat];
                bank.activation_count += 1;
                bank.next_act = bank.next_act.max(cycle + t.t_rc);
                bank.next_pre = bank.next_pre.max(cycle + t.t_rc);
                bank.next_rd = bank.next_rd.max(cycle + t.t_rc);
                bank.next_wr = bank.next_wr.max(cycle + t.t_rc);
                let group = &mut self.groups[group_idx];
                group.next_act = group.next_act.max(cycle + t.t_rrd_l);
                let rank = &mut self.ranks[cmd.bank.rank];
                rank.next_act = rank.next_act.max(cycle + t.t_rrd_s);
                rank.record_activation(cycle, FAW_DEPTH);
                self.stats.victim_refreshes += 1;
                self.energy.victim_refreshes += 1;
                if let Some(rh) = self.rowhammer.as_mut() {
                    rh.on_row_refreshed(RowAddr { bank: cmd.bank, row: cmd.row });
                }
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rc }
            }
            CommandKind::Precharge => {
                let bank = &mut self.banks[flat];
                if !bank.is_closed() {
                    self.open_per_rank[cmd.bank.rank] -= 1;
                }
                bank.row = RowState::Closed;
                bank.next_act = bank.next_act.max(cycle + t.t_rp);
                self.stats.precharges += 1;
                self.energy.precharges += 1;
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rp }
            }
            CommandKind::PrechargeAll => {
                for bi in self.geometry.rank_flat_range(cmd.bank.rank) {
                    let bank = &mut self.banks[bi];
                    if !bank.is_closed() {
                        self.open_per_rank[cmd.bank.rank] -= 1;
                    }
                    bank.row = RowState::Closed;
                    bank.next_act = bank.next_act.max(cycle + t.t_rp);
                }
                self.stats.precharge_alls += 1;
                self.energy.precharges += 1;
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rp }
            }
            CommandKind::Read => {
                let bank = &mut self.banks[flat];
                bank.next_pre = bank.next_pre.max(cycle + t.t_rtp);
                let group = &mut self.groups[group_idx];
                group.next_rd = group.next_rd.max(cycle + t.t_ccd_l);
                group.next_wr = group.next_wr.max(cycle + t.t_ccd_l);
                let rank = &mut self.ranks[cmd.bank.rank];
                rank.next_rd = rank.next_rd.max(cycle + t.t_ccd_s);
                rank.next_wr = rank.next_wr.max(cycle + t.t_ccd_s);
                self.next_column_bus = self.next_column_bus.max(cycle + t.burst_cycles());
                self.stats.reads += 1;
                self.energy.reads += 1;
                let ready = cycle + t.read_latency();
                CommandOutcome { data_ready_at: Some(ready), busy_until: ready }
            }
            CommandKind::Write => {
                let done = cycle + t.write_latency();
                let bank = &mut self.banks[flat];
                bank.next_pre = bank.next_pre.max(done + t.t_wr);
                let group = &mut self.groups[group_idx];
                group.next_rd = group.next_rd.max(done + t.t_wtr_l);
                group.next_wr = group.next_wr.max(cycle + t.t_ccd_l);
                let rank = &mut self.ranks[cmd.bank.rank];
                rank.next_rd = rank.next_rd.max(done + t.t_wtr_s);
                rank.next_wr = rank.next_wr.max(cycle + t.t_ccd_s);
                self.next_column_bus = self.next_column_bus.max(cycle + t.burst_cycles());
                self.stats.writes += 1;
                self.energy.writes += 1;
                CommandOutcome { data_ready_at: Some(done), busy_until: done }
            }
            CommandKind::Refresh => {
                let rows_per_ref = self.rows_per_periodic_refresh();
                for bi in self.geometry.rank_flat_range(cmd.bank.rank) {
                    let bank = &mut self.banks[bi];
                    bank.next_act = bank.next_act.max(cycle + t.t_rfc);
                    bank.next_rd = bank.next_rd.max(cycle + t.t_rfc);
                    bank.next_wr = bank.next_wr.max(cycle + t.t_rfc);
                    bank.next_pre = bank.next_pre.max(cycle + t.t_rfc);
                }
                let rank = &mut self.ranks[cmd.bank.rank];
                rank.next_ref = rank.next_ref.max(cycle + t.t_rfc);
                rank.next_act = rank.next_act.max(cycle + t.t_rfc);
                let start = rank.refresh_cursor;
                let end = (start + rows_per_ref).min(self.geometry.rows_per_bank);
                rank.refresh_cursor = if end >= self.geometry.rows_per_bank { 0 } else { end };
                self.stats.refreshes += 1;
                self.energy.refreshes += 1;
                if let Some(rh) = self.rowhammer.as_mut() {
                    rh.on_periodic_refresh(cmd.bank.rank, start, end);
                }
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rfc }
            }
            CommandKind::RefreshSameBank => {
                for bg in 0..self.geometry.bank_groups {
                    let b = BankAddr { rank: cmd.bank.rank, bank_group: bg, bank: cmd.bank.bank };
                    let bi = self.geometry.flat_bank(b);
                    let bank = &mut self.banks[bi];
                    bank.next_act = bank.next_act.max(cycle + t.t_rfc_sb);
                }
                self.stats.refreshes_same_bank += 1;
                self.energy.refreshes_same_bank += 1;
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rfc_sb }
            }
            CommandKind::RefreshManagement => {
                let bank = &mut self.banks[flat];
                bank.next_act = bank.next_act.max(cycle + t.t_rfm);
                bank.next_rd = bank.next_rd.max(cycle + t.t_rfm);
                bank.next_wr = bank.next_wr.max(cycle + t.t_rfm);
                bank.next_pre = bank.next_pre.max(cycle + t.t_rfm);
                let rank = &mut self.ranks[cmd.bank.rank];
                rank.next_ref = rank.next_ref.max(cycle + t.t_rfm);
                self.stats.rfm_commands += 1;
                self.energy.rfm_commands += 1;
                let serviced = self.config.rfm_aggressors_serviced;
                if let Some(rh) = self.rowhammer.as_mut() {
                    rh.service_rfm(cmd.bank, serviced);
                }
                CommandOutcome { data_ready_at: None, busy_until: cycle + t.t_rfm }
            }
        };
        outcome
    }

    /// Number of rows per bank refreshed by one periodic REF command.
    pub fn rows_per_periodic_refresh(&self) -> usize {
        let refs = self.timing.refreshes_per_window().max(1) as usize;
        self.geometry.rows_per_bank.div_ceil(refs).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankAddr {
        BankAddr { rank: 0, bank_group: 0, bank: 0 }
    }

    fn channel() -> DramChannel {
        DramChannel::new(DramGeometry::tiny(), TimingParams::fast_test())
    }

    #[test]
    fn activate_read_precharge_sequence_respects_timings() {
        let mut ch = channel();
        let t = ch.timing().clone();
        let act = DramCommand::activate(bank(), 5);
        let out = ch.issue(&act, 0).unwrap();
        assert_eq!(out.busy_until, t.t_rcd);
        assert_eq!(ch.open_row(bank()), Some(5));

        // A read before tRCD is a timing violation.
        let loc = crate::geometry::DramLocation { channel: 0, bank: bank(), row: 5, column: 1 };
        let rd = DramCommand::read(loc);
        let err = ch.issue(&rd, 1).unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { earliest, .. } if earliest == t.t_rcd));

        // At tRCD the read succeeds and reports its data-ready time.
        let out = ch.issue(&rd, t.t_rcd).unwrap();
        assert_eq!(out.data_ready_at, Some(t.t_rcd + t.read_latency()));

        // Precharge must wait for tRAS after the activate.
        let pre = DramCommand::precharge(bank());
        assert!(ch.issue(&pre, t.t_ras - 1).is_err());
        ch.issue(&pre, t.t_ras.max(t.t_rcd + t.t_rtp)).unwrap();
        assert_eq!(ch.open_row(bank()), None);
        assert_eq!(ch.stats().activates, 1);
        assert_eq!(ch.stats().reads, 1);
        assert_eq!(ch.stats().precharges, 1);
    }

    #[test]
    fn activate_to_open_bank_is_state_violation() {
        let mut ch = channel();
        ch.issue(&DramCommand::activate(bank(), 5), 0).unwrap();
        let err = ch.issue(&DramCommand::activate(bank(), 6), 1000).unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
    }

    #[test]
    fn read_to_wrong_row_is_state_violation() {
        let mut ch = channel();
        ch.issue(&DramCommand::activate(bank(), 5), 0).unwrap();
        let loc = crate::geometry::DramLocation { channel: 0, bank: bank(), row: 6, column: 0 };
        let err = ch.issue(&DramCommand::read(loc), 1000).unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
    }

    #[test]
    fn read_on_closed_bank_is_state_violation() {
        let mut ch = channel();
        let loc = crate::geometry::DramLocation { channel: 0, bank: bank(), row: 6, column: 0 };
        assert!(matches!(
            ch.issue(&DramCommand::read(loc), 0),
            Err(DramError::StateViolation { .. })
        ));
    }

    #[test]
    fn out_of_range_addresses_are_rejected() {
        let mut ch = channel();
        let bad_bank = BankAddr { rank: 5, bank_group: 0, bank: 0 };
        assert!(matches!(
            ch.issue(&DramCommand::activate(bad_bank, 0), 0),
            Err(DramError::AddressOutOfRange { .. })
        ));
        let bad_row = DramCommand::activate(bank(), 1 << 30);
        assert!(matches!(ch.issue(&bad_row, 0), Err(DramError::AddressOutOfRange { .. })));
    }

    #[test]
    fn rrd_and_faw_limit_activation_rate() {
        let mut ch = channel();
        let t = ch.timing().clone();
        // Activate four different banks back to back at the tRRD_S rate.
        let banks: Vec<BankAddr> = ch.geometry().iter_banks().filter(|b| b.rank == 0).collect();
        let mut cycle = 0;
        for b in banks.iter().take(4) {
            let cmd = DramCommand::activate(*b, 1);
            let earliest = ch.earliest_issue(&cmd);
            cycle = cycle.max(earliest);
            ch.issue(&cmd, cycle).unwrap();
        }
        // The fifth activation (to another bank of the same rank) must wait
        // for the tFAW window measured from the first activation.
        let fifth = DramCommand::activate(banks[4 % banks.len()], 2);
        let earliest = ch.earliest_issue(&fifth);
        assert!(earliest >= t.t_faw, "earliest {earliest} must respect tFAW {}", t.t_faw);
    }

    #[test]
    fn same_bank_group_activations_use_rrd_l() {
        let mut ch = channel();
        let t = ch.timing().clone();
        let b0 = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let b1 = BankAddr { rank: 0, bank_group: 0, bank: 1 };
        let b2 = BankAddr { rank: 0, bank_group: 1, bank: 0 };
        ch.issue(&DramCommand::activate(b0, 1), 0).unwrap();
        // Same bank group: tRRD_L; different group: tRRD_S (shorter).
        assert_eq!(ch.earliest_issue(&DramCommand::activate(b1, 1)), t.t_rrd_l);
        assert_eq!(ch.earliest_issue(&DramCommand::activate(b2, 1)), t.t_rrd_s);
    }

    #[test]
    fn refresh_requires_precharged_rank_and_blocks_it() {
        let mut ch = channel();
        let t = ch.timing().clone();
        ch.issue(&DramCommand::activate(bank(), 5), 0).unwrap();
        let reff = DramCommand::refresh(0);
        assert!(matches!(ch.issue(&reff, 10_000), Err(DramError::StateViolation { .. })));
        // Precharge everything, then refresh.
        ch.issue(&DramCommand::precharge_all(0), t.t_ras).unwrap();
        let cycle = ch.earliest_issue(&reff).max(t.t_ras + t.t_rp);
        let out = ch.issue(&reff, cycle).unwrap();
        assert_eq!(out.busy_until, cycle + t.t_rfc);
        // The rank is blocked: the next ACT cannot issue before tRFC elapses.
        let next_act = DramCommand::activate(bank(), 5);
        assert!(ch.earliest_issue(&next_act) >= cycle + t.t_rfc);
        assert_eq!(ch.stats().refreshes, 1);
    }

    #[test]
    fn rfm_blocks_only_target_bank_and_services_victims() {
        let geom = DramGeometry::tiny();
        let mut ch = DramChannel::with_rowhammer(geom, TimingParams::fast_test(), 1000);
        let t = ch.timing().clone();
        // Hammer row 10 of bank 0 a few times.
        for i in 0..5u64 {
            let act = DramCommand::activate(bank(), 10);
            let cycle = ch.earliest_issue(&act).max(i * 1000);
            ch.issue(&act, cycle).unwrap();
            let pre = DramCommand::precharge(bank());
            ch.issue(&pre, ch.earliest_issue(&pre)).unwrap();
        }
        let victim = RowAddr { bank: bank(), row: 9 };
        assert_eq!(ch.rowhammer().unwrap().disturbance_of(victim), 5);

        let rfm = DramCommand::rfm(bank());
        let cycle = ch.earliest_issue(&rfm);
        ch.issue(&rfm, cycle).unwrap();
        assert_eq!(ch.rowhammer().unwrap().disturbance_of(victim), 0);
        assert_eq!(ch.stats().rfm_commands, 1);

        // The RFM blocks bank 0 but not a bank in another group.
        let other = BankAddr { rank: 0, bank_group: 1, bank: 0 };
        assert!(ch.earliest_issue(&DramCommand::activate(bank(), 3)) >= cycle + t.t_rfm);
        assert!(ch.earliest_issue(&DramCommand::activate(other, 3)) < cycle + t.t_rfm);
    }

    #[test]
    fn victim_refresh_clears_disturbance_and_occupies_row_cycle() {
        let geom = DramGeometry::tiny();
        let mut ch = DramChannel::with_rowhammer(geom, TimingParams::fast_test(), 1000);
        let t = ch.timing().clone();
        for _ in 0..3 {
            let act = DramCommand::activate(bank(), 10);
            ch.issue(&act, ch.earliest_issue(&act)).unwrap();
            let pre = DramCommand::precharge(bank());
            ch.issue(&pre, ch.earliest_issue(&pre)).unwrap();
        }
        let victim = RowAddr { bank: bank(), row: 11 };
        assert_eq!(ch.rowhammer().unwrap().disturbance_of(victim), 3);
        let vrr = DramCommand::victim_refresh(victim);
        let cycle = ch.earliest_issue(&vrr);
        let out = ch.issue(&vrr, cycle).unwrap();
        assert_eq!(out.busy_until, cycle + t.t_rc);
        assert_eq!(ch.rowhammer().unwrap().disturbance_of(victim), 0);
        assert_eq!(ch.stats().victim_refreshes, 1);
        assert_eq!(ch.energy().victim_refreshes, 1);
    }

    #[test]
    fn column_bus_serialises_bursts() {
        let mut ch = channel();
        let t = ch.timing().clone();
        let b0 = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let b1 = BankAddr { rank: 0, bank_group: 1, bank: 0 };
        ch.issue(&DramCommand::activate(b0, 1), 0).unwrap();
        let act1 = DramCommand::activate(b1, 2);
        let c = ch.earliest_issue(&act1);
        ch.issue(&act1, c).unwrap();

        let rd0 = DramCommand::read(crate::geometry::DramLocation {
            channel: 0,
            bank: b0,
            row: 1,
            column: 0,
        });
        let rd1 = DramCommand::read(crate::geometry::DramLocation {
            channel: 0,
            bank: b1,
            row: 2,
            column: 0,
        });
        let c0 = ch.earliest_issue(&rd0);
        ch.issue(&rd0, c0).unwrap();
        // The second read must wait at least a burst (and tCCD_S) after the first.
        let c1 = ch.earliest_issue(&rd1);
        assert!(c1 >= c0 + t.t_ccd_s.min(t.burst_cycles()));
    }

    #[test]
    fn write_delays_subsequent_reads_for_turnaround() {
        let mut ch = channel();
        let t = ch.timing().clone();
        ch.issue(&DramCommand::activate(bank(), 1), 0).unwrap();
        let loc = crate::geometry::DramLocation { channel: 0, bank: bank(), row: 1, column: 0 };
        let wr = DramCommand::write(loc);
        let wc = ch.earliest_issue(&wr);
        ch.issue(&wr, wc).unwrap();
        let rd = DramCommand::read(loc);
        let rc = ch.earliest_issue(&rd);
        assert!(rc >= wc + t.write_latency() + t.t_wtr_l);
        assert_eq!(ch.stats().writes, 1);
    }

    #[test]
    fn periodic_refresh_sweeps_rows_and_wraps() {
        let geom = DramGeometry::tiny();
        let timing = TimingParams::fast_test();
        let mut ch = DramChannel::with_rowhammer(geom, timing, 1_000_000);
        let rows_per_ref = ch.rows_per_periodic_refresh();
        assert!(rows_per_ref >= 1);
        // Disturb a row then refresh enough times to sweep the whole bank.
        let act = DramCommand::activate(bank(), 1);
        ch.issue(&act, 0).unwrap();
        let pre = DramCommand::precharge(bank());
        ch.issue(&pre, ch.earliest_issue(&pre)).unwrap();
        let sweeps = ch.geometry().rows_per_bank.div_ceil(rows_per_ref);
        let mut cycle = ch.earliest_issue(&DramCommand::refresh(0));
        for _ in 0..sweeps {
            let reff = DramCommand::refresh(0);
            cycle = cycle.max(ch.earliest_issue(&reff));
            ch.issue(&reff, cycle).unwrap();
            cycle += 1;
        }
        assert_eq!(ch.rowhammer().unwrap().max_disturbance(), 0);
        assert_eq!(ch.stats().refreshes as usize, sweeps);
    }

    #[test]
    fn stats_total_counts_every_command() {
        let mut ch = channel();
        ch.issue(&DramCommand::activate(bank(), 1), 0).unwrap();
        let pre = DramCommand::precharge(bank());
        ch.issue(&pre, ch.earliest_issue(&pre)).unwrap();
        assert_eq!(ch.stats().total(), 2);
    }
}
