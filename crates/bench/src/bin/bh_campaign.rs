//! `bh-campaign` — checkpointed campaign sweeps over the (mechanism × N_RH ×
//! ±BreakHammer × mix × seed) grid, with resume.
//!
//! ```text
//! bh_campaign sweep  --store results.jsonl [options]   start a fresh sweep
//! bh_campaign resume --store results.jsonl [options]   continue an interrupted sweep
//! bh_campaign report --store results.jsonl [--strict]  aggregate a store into a table
//! ```
//!
//! Options (sweep/resume):
//!
//! ```text
//! --mechanisms LIST   comma-separated mechanisms (default: graphene);
//!                     `paper` selects the paper's eight-mechanism set
//! --nrh LIST          comma-separated N_RH values (default: the scale's sweep)
//! --seeds LIST        comma-separated workload seeds (default: the scale's seed)
//! --breakhammer ARM   off | on | both (default: both)
//! --benign            sweep the benign suite instead of the attack suite
//! --max-cells N       evaluate at most N cells, then stop (deferred cells
//!                     are picked up by a later `resume`)
//! --strict            (report) exit nonzero while any cell is non-ok —
//!                     failed, livelocked or budget-cut
//! ```
//!
//! The experiment scale (instructions, mixes per class, channels, workers, …)
//! comes from the usual `BH_*` environment variables; `resume` must be run
//! with the same scale and options as the original sweep, otherwise the cell
//! ids will not match and the grid is treated as new work.
//!
//! Every cell records a typed run outcome. Cells whose evaluation panics are
//! recorded as `"failed"` JSONL lines instead of aborting the sweep; `report`
//! lists them and `resume` retries them. Cells the simulator's deterministic
//! forward-progress watchdog classifies as livelocked (or over a
//! `BH_WATCHDOG_MAX_*` budget) are recorded as `"livelock"` / `"budget"`
//! lines with their diagnostic snapshot; they are *settled* — a deterministic
//! verdict reruns to itself — so `resume` skips and reports them instead of
//! retrying. `BH_CELL_TIMEOUT_SECS=<secs>` arms a last-resort wall-clock
//! overseer that warns about cells running past the budget (never affecting
//! results). `BH_TEST_FORCE_PANIC_MIX=<substring>` and
//! `BH_TEST_FORCE_SPIN_MIX=<substring>` are test hooks forcing matching cells
//! to panic or livelock, exercising both fault paths end to end.

// The completed-cell set is membership-only (never iterated for output);
// bh-bench is outside the digest-pinned set.
#![allow(clippy::disallowed_types)]

use bh_bench::campaign::{report_table, CampaignSpec, ResultStore};
use bh_bench::{print_results, Scale};
use bh_mitigation::MechanismKind;
use std::collections::HashSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bh_campaign <sweep|resume|report> --store PATH \
[--mechanisms LIST] [--nrh LIST] [--seeds LIST] [--breakhammer off|on|both] \
[--benign] [--max-cells N] [--strict]";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bh_campaign: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    store: PathBuf,
    mechanisms: Vec<MechanismKind>,
    nrh_values: Option<Vec<u64>>,
    seeds: Option<Vec<u64>>,
    breakhammer_options: Vec<bool>,
    attack: bool,
    max_cells: Option<usize>,
    strict: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        store: PathBuf::new(),
        mechanisms: vec![MechanismKind::Graphene],
        nrh_values: None,
        seeds: None,
        breakhammer_options: vec![false, true],
        attack: true,
        max_cells: None,
        strict: false,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--store" => options.store = PathBuf::from(value()?),
            "--mechanisms" => {
                let list = value()?;
                options.mechanisms = if list == "paper" {
                    MechanismKind::paper_mechanisms().to_vec()
                } else {
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(|name| {
                            MechanismKind::parse(name)
                                .ok_or_else(|| format!("unknown mechanism {name:?}"))
                        })
                        .collect::<Result<_, _>>()?
                };
            }
            "--nrh" => options.nrh_values = Some(parse_list(&value()?, "--nrh")?),
            "--seeds" => options.seeds = Some(parse_list(&value()?, "--seeds")?),
            "--breakhammer" => {
                options.breakhammer_options = match value()?.as_str() {
                    "off" => vec![false],
                    "on" => vec![true],
                    "both" => vec![false, true],
                    other => {
                        return Err(format!("--breakhammer must be off|on|both, got {other:?}"))
                    }
                };
            }
            "--benign" => options.attack = false,
            "--strict" => options.strict = true,
            "--max-cells" => {
                options.max_cells =
                    Some(value()?.parse().map_err(|_| "--max-cells needs a number".to_string())?)
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if options.store.as_os_str().is_empty() {
        return Err("--store is required".to_string());
    }
    if options.mechanisms.is_empty() {
        return Err("--mechanisms selected nothing".to_string());
    }
    Ok(options)
}

fn parse_list(list: &str, flag: &str) -> Result<Vec<u64>, String> {
    let parsed: Vec<u64> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().map_err(|_| format!("{flag}: {s:?} is not a number")))
        .collect::<Result<_, _>>()?;
    if parsed.is_empty() {
        return Err(format!("{flag} selected nothing"));
    }
    Ok(parsed)
}

fn build_spec(options: &Options) -> CampaignSpec {
    let scale = Scale::from_env();
    let mut spec = CampaignSpec::from_scale(scale, options.mechanisms.clone(), options.attack);
    if let Some(nrh) = &options.nrh_values {
        spec.nrh_values = nrh.clone();
    }
    if let Some(seeds) = &options.seeds {
        spec.seeds = seeds.clone();
    }
    spec.breakhammer_options = options.breakhammer_options.clone();
    // Test hooks: force cells whose mix name contains the given substring to
    // panic (isolation path) or to livelock under an injected chaos
    // configuration (watchdog path), end to end.
    spec.force_panic_mix = bh_core::knobs::raw("BH_TEST_FORCE_PANIC_MIX").filter(|s| !s.is_empty());
    spec.force_spin_mix = bh_core::knobs::raw("BH_TEST_FORCE_SPIN_MIX").filter(|s| !s.is_empty());
    spec
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".to_string());
    };
    match command.as_str() {
        "sweep" | "resume" => {
            let options = parse_options(rest)?;
            let resume = command == "resume";
            // Settled = ok + livelock + budget: a deterministic verdict reruns
            // to itself, so resume skips it; only panicked cells are retried.
            let settled: HashSet<String> = if resume {
                ResultStore::settled_cells(&options.store).map_err(|e| e.to_string())?
            } else {
                HashSet::new()
            };
            let store = if resume {
                ResultStore::append_to(&options.store)
            } else {
                ResultStore::create(&options.store)
            }
            .map_err(|e| e.to_string())?;
            let spec = build_spec(&options);
            let summary = spec.run(&store, &settled, options.max_cells);
            println!(
                "{} cells: {} evaluated ({} livelock, {} budget), {} already in store, \
                 {} failed, {} deferred ({})",
                summary.total_cells,
                summary.evaluated_cells,
                summary.livelock_cells,
                summary.budget_cells,
                summary.skipped_cells,
                summary.failed_cells,
                summary.deferred_cells,
                if summary.complete() {
                    "store complete".to_string()
                } else {
                    format!("resume with: bh_campaign resume --store {}", options.store.display())
                },
            );
            if summary.failed_cells > 0 {
                eprintln!(
                    "bh_campaign: {} cell(s) panicked and were recorded as failed; \
                     retry them with: bh_campaign resume --store {}",
                    summary.failed_cells,
                    options.store.display()
                );
            }
            if summary.livelock_cells + summary.budget_cells > 0 {
                eprintln!(
                    "bh_campaign: {} cell(s) ended with a watchdog verdict (livelock/budget); \
                     the verdict is deterministic, so resume will skip them — \
                     inspect them with: bh_campaign report --store {}",
                    summary.livelock_cells + summary.budget_cells,
                    options.store.display()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "report" => {
            let options = parse_options(rest)?;
            let records = ResultStore::load(&options.store).map_err(|e| e.to_string())?;
            let ok_count = records.iter().filter(|r| r.is_ok()).count();
            if records.is_empty() {
                return Err(format!("{} holds no completed cells", options.store.display()));
            }
            print_results(
                &format!("Campaign report ({ok_count} ok cells)"),
                &report_table(&records),
            );
            let verdicts = ResultStore::verdict_cells(&options.store).map_err(|e| e.to_string())?;
            if !verdicts.is_empty() {
                println!();
                println!("{} cell(s) settled with a watchdog verdict:", verdicts.len());
                for cell in &verdicts {
                    println!("  {} [{}]", cell.cell, cell.termination);
                    if let Some(report) = &cell.livelock_report {
                        println!("    {report}");
                    }
                }
            }
            let pending = ResultStore::failed_cells(&options.store).map_err(|e| e.to_string())?;
            if !pending.is_empty() {
                println!();
                println!("{} failed cell(s) pending retry (bh_campaign resume):", pending.len());
                for cell in &pending {
                    println!("  {}: {}", cell.cell, cell.error);
                }
            }
            if options.strict && (!verdicts.is_empty() || !pending.is_empty()) {
                // Not a usage error: the arguments were fine, the store is
                // dirty. Report and exit nonzero without the usage banner.
                eprintln!(
                    "bh_campaign: --strict: {} watchdog verdict(s) and {} pending failure(s) in {}",
                    verdicts.len(),
                    pending.len(),
                    options.store.display()
                );
                return Ok(ExitCode::FAILURE);
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}
