//! Demonstrates the memory performance attack the paper defends against
//! (§8.1): a single malicious thread triggers so many RowHammer-preventive
//! actions that the benign applications lose a large fraction of their
//! performance — and BreakHammer restores it.
//!
//! Run with: `cargo run --release --example memory_performance_attack`

use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{Evaluator, SystemConfig};
use breakhammer_suite::workloads::{MixBuilder, MixClass, TraceGenerator};

fn config_for(mechanism: MechanismKind, nrh: u64, breakhammer: bool) -> SystemConfig {
    let mut config = SystemConfig::fast_test(mechanism, nrh, breakhammer);
    config.geometry = breakhammer_suite::dram::DramGeometry::paper_ddr5();
    config.instructions_per_core = 25_000;
    config
}

fn main() {
    let nrh = 128;
    let base = config_for(MechanismKind::None, nrh, false);

    let generator = TraceGenerator::new(base.geometry.clone(), AddressMapping::paper_default());
    let mut builder = MixBuilder::new(generator);
    builder.benign_entries = 5_000;
    builder.attacker_entries = 5_000;
    let mix = builder.build(MixClass::attack_classes()[1], 0, 7); // HHMA

    println!("workload {} with apps {:?}", mix.name, mix.app_names);
    println!("RowHammer threshold N_RH = {nrh}\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "WS(benign)", "max slowdown", "prev.actions", "bitflips"
    );

    let configs = vec![
        ("no mitigation".to_string(), config_for(MechanismKind::None, nrh, false)),
        ("Graphene".to_string(), config_for(MechanismKind::Graphene, nrh, false)),
        ("Graphene+BreakHammer".to_string(), config_for(MechanismKind::Graphene, nrh, true)),
        ("Hydra".to_string(), config_for(MechanismKind::Hydra, nrh, false)),
        ("Hydra+BreakHammer".to_string(), config_for(MechanismKind::Hydra, nrh, true)),
    ];

    for (label, config) in configs {
        let mut evaluator = Evaluator::new(config);
        let eval = evaluator.evaluate(&mix);
        println!(
            "{:<28} {:>10.3} {:>12.3} {:>12} {:>10}",
            label,
            eval.weighted_speedup,
            eval.max_slowdown,
            eval.preventive_actions(),
            eval.result.bitflips
        );
    }

    println!("\nWithout a mitigation the attacker still hurts performance through ordinary");
    println!("bandwidth contention, but with a mitigation enabled its preventive actions");
    println!("multiply the damage; BreakHammer identifies the suspect thread and claws the");
    println!("lost performance back while the mitigation keeps every bitflip count at zero.");
}
