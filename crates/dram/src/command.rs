//! DRAM command set.
//!
//! The memory controller drives the devices with the commands defined here.
//! The set covers everything the paper's evaluation needs: the basic
//! activate / precharge / read / write protocol, periodic refresh, the DDR5
//! refresh-management (RFM) command used by the RFM and PRAC mechanisms, and
//! directed victim-row refreshes (modelled as a dedicated command so that
//! preventive actions are visible in statistics and energy accounting).

use crate::geometry::{BankAddr, DramLocation, RowAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a DRAM command, without its target coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate (open) a row into the bank's row buffer.
    Activate,
    /// Precharge (close) the open row of one bank.
    Precharge,
    /// Precharge all banks of a rank.
    PrechargeAll,
    /// Column read from the open row.
    Read,
    /// Column write into the open row.
    Write,
    /// All-bank auto refresh (issued every tREFI).
    Refresh,
    /// Same-bank refresh (DDR5 REFsb); refreshes one bank of every bank group.
    RefreshSameBank,
    /// Refresh management command (DDR5 RFM): gives the DRAM chip a time
    /// window to perform in-DRAM preventive refreshes.
    RefreshManagement,
    /// Directed preventive refresh of a single (victim) row, used by
    /// memory-controller-side RowHammer mitigations. Electrically this is an
    /// ACT + PRE of the victim row; it is modelled as one command so the
    /// simulator can attribute its cost to the triggering mechanism.
    VictimRefresh,
}

impl CommandKind {
    /// True for commands that transfer data over the channel (RD/WR).
    pub fn is_column(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }

    /// True for commands that open or implicitly cycle a row
    /// (ACT and victim refresh).
    pub fn opens_row(self) -> bool {
        matches!(self, CommandKind::Activate | CommandKind::VictimRefresh)
    }

    /// True for refresh-class commands that block the target for a long time.
    pub fn is_refresh(self) -> bool {
        matches!(
            self,
            CommandKind::Refresh
                | CommandKind::RefreshSameBank
                | CommandKind::RefreshManagement
                | CommandKind::VictimRefresh
        )
    }

    /// Short mnemonic used in traces and debug output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::PrechargeAll => "PREA",
            CommandKind::Read => "RD",
            CommandKind::Write => "WR",
            CommandKind::Refresh => "REF",
            CommandKind::RefreshSameBank => "REFsb",
            CommandKind::RefreshManagement => "RFM",
            CommandKind::VictimRefresh => "VRR",
        }
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A fully-addressed DRAM command ready to be issued to a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramCommand {
    /// What the command does.
    pub kind: CommandKind,
    /// Target bank (for rank-scoped commands the bank/bank-group fields are
    /// ignored except for the rank).
    pub bank: BankAddr,
    /// Target row for row-scoped commands (ACT, VictimRefresh); 0 otherwise.
    pub row: usize,
    /// Target column for column commands (RD/WR); 0 otherwise.
    pub column: usize,
}

impl DramCommand {
    /// Builds an activate command for the row at `loc`.
    pub fn activate(bank: BankAddr, row: usize) -> Self {
        DramCommand { kind: CommandKind::Activate, bank, row, column: 0 }
    }

    /// Builds a precharge command for `bank`.
    pub fn precharge(bank: BankAddr) -> Self {
        DramCommand { kind: CommandKind::Precharge, bank, row: 0, column: 0 }
    }

    /// Builds a precharge-all command for the rank containing `bank`.
    pub fn precharge_all(rank: usize) -> Self {
        DramCommand {
            kind: CommandKind::PrechargeAll,
            bank: BankAddr { rank, bank_group: 0, bank: 0 },
            row: 0,
            column: 0,
        }
    }

    /// Builds a column read for `loc`.
    pub fn read(loc: DramLocation) -> Self {
        DramCommand { kind: CommandKind::Read, bank: loc.bank, row: loc.row, column: loc.column }
    }

    /// Builds a column write for `loc`.
    pub fn write(loc: DramLocation) -> Self {
        DramCommand { kind: CommandKind::Write, bank: loc.bank, row: loc.row, column: loc.column }
    }

    /// Builds an all-bank refresh for `rank`.
    pub fn refresh(rank: usize) -> Self {
        DramCommand {
            kind: CommandKind::Refresh,
            bank: BankAddr { rank, bank_group: 0, bank: 0 },
            row: 0,
            column: 0,
        }
    }

    /// Builds a same-bank refresh targeting bank index `bank` of every bank
    /// group in `rank`.
    pub fn refresh_same_bank(rank: usize, bank: usize) -> Self {
        DramCommand {
            kind: CommandKind::RefreshSameBank,
            bank: BankAddr { rank, bank_group: 0, bank },
            row: 0,
            column: 0,
        }
    }

    /// Builds a refresh-management (RFM) command for the bank's rank / bank.
    pub fn rfm(bank: BankAddr) -> Self {
        DramCommand { kind: CommandKind::RefreshManagement, bank, row: 0, column: 0 }
    }

    /// Builds a directed victim-row refresh.
    pub fn victim_refresh(row: RowAddr) -> Self {
        DramCommand { kind: CommandKind::VictimRefresh, bank: row.bank, row: row.row, column: 0 }
    }

    /// The row address targeted by this command, when it has one.
    pub fn row_addr(&self) -> Option<RowAddr> {
        if self.kind.opens_row() {
            Some(RowAddr { bank: self.bank, row: self.row })
        } else {
            None
        }
    }

    /// Rank targeted by the command.
    pub fn rank(&self) -> usize {
        self.bank.rank
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CommandKind::Activate | CommandKind::VictimRefresh => {
                write!(f, "{} {} row{}", self.kind, self.bank, self.row)
            }
            CommandKind::Read | CommandKind::Write => {
                write!(f, "{} {} row{} col{}", self.kind, self.bank, self.row, self.column)
            }
            CommandKind::Refresh | CommandKind::PrechargeAll => {
                write!(f, "{} rank{}", self.kind, self.bank.rank)
            }
            _ => write!(f, "{} {}", self.kind, self.bank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankAddr {
        BankAddr { rank: 0, bank_group: 1, bank: 1 }
    }

    #[test]
    fn command_kind_classification() {
        assert!(CommandKind::Read.is_column());
        assert!(CommandKind::Write.is_column());
        assert!(!CommandKind::Activate.is_column());
        assert!(CommandKind::Activate.opens_row());
        assert!(CommandKind::VictimRefresh.opens_row());
        assert!(!CommandKind::Precharge.opens_row());
        assert!(CommandKind::Refresh.is_refresh());
        assert!(CommandKind::RefreshManagement.is_refresh());
        assert!(!CommandKind::Read.is_refresh());
    }

    #[test]
    fn constructors_fill_in_coordinates() {
        let act = DramCommand::activate(bank(), 17);
        assert_eq!(act.kind, CommandKind::Activate);
        assert_eq!(act.row, 17);
        assert_eq!(act.row_addr(), Some(RowAddr { bank: bank(), row: 17 }));

        let pre = DramCommand::precharge(bank());
        assert_eq!(pre.kind, CommandKind::Precharge);
        assert_eq!(pre.row_addr(), None);

        let loc = DramLocation { channel: 0, bank: bank(), row: 5, column: 9 };
        let rd = DramCommand::read(loc);
        assert_eq!((rd.row, rd.column), (5, 9));
        let wr = DramCommand::write(loc);
        assert_eq!(wr.kind, CommandKind::Write);

        let reff = DramCommand::refresh(1);
        assert_eq!(reff.rank(), 1);

        let vrr = DramCommand::victim_refresh(RowAddr { bank: bank(), row: 33 });
        assert_eq!(vrr.kind, CommandKind::VictimRefresh);
        assert_eq!(vrr.row_addr().unwrap().row, 33);
    }

    #[test]
    fn display_is_informative() {
        let act = DramCommand::activate(bank(), 17);
        assert_eq!(act.to_string(), "ACT r0g1b1 row17");
        let rd = DramCommand::read(DramLocation { channel: 0, bank: bank(), row: 5, column: 9 });
        assert_eq!(rd.to_string(), "RD r0g1b1 row5 col9");
        let reff = DramCommand::refresh(1);
        assert_eq!(reff.to_string(), "REF rank1");
    }

    #[test]
    fn mnemonics_are_unique() {
        let kinds = [
            CommandKind::Activate,
            CommandKind::Precharge,
            CommandKind::PrechargeAll,
            CommandKind::Read,
            CommandKind::Write,
            CommandKind::Refresh,
            CommandKind::RefreshSameBank,
            CommandKind::RefreshManagement,
            CommandKind::VictimRefresh,
        ];
        let mut names: Vec<_> = kinds.iter().map(|k| k.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }
}
