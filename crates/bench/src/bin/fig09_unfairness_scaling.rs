//! Figure 9: unfairness (maximum slowdown of a benign application) of the
//! BreakHammer-paired mechanisms, with an attacker present, as N_RH decreases
//! — normalized to a baseline with no RowHammer mitigation.

use bh_bench::{maybe_print_config, mean_of, paper_config, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let baseline_cfg = paper_config(MechanismKind::None, scale.nrh_values[0], false, &scale);
    let baseline = campaign.run(&baseline_cfg, true);
    let baseline_unfairness = mean_of(&baseline.iter().collect::<Vec<_>>(), |r| r.max_slowdown);

    let mechanisms = MechanismKind::paper_mechanisms();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[true], /*attack=*/ true);

    let mut table = Table::new(["nrh", "config", "normalized_unfairness"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            let sel = select(&records, mech, nrh, true);
            if sel.is_empty() {
                continue;
            }
            let unfairness = mean_of(&sel, |r| r.max_slowdown);
            table.push_row([
                nrh.to_string(),
                format!("{mech}+BH"),
                fmt3(unfairness / baseline_unfairness),
            ]);
        }
    }
    print_results(
        "Figure 9: unfairness vs. N_RH with an attacker present (normalized to no mitigation)",
        &table,
    );
}
