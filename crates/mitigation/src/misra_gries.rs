//! Misra–Gries frequent-element counting, the tracker shared by Graphene and
//! AQUA.
//!
//! The Misra–Gries summary tracks the `capacity` most frequently activated
//! rows of a bank with a bounded error: any row activated more than
//! `spillover` times is guaranteed to be present in the table, and a tracked
//! row's counter is at most `spillover` below its true activation count. Both
//! Graphene and AQUA rely on this guarantee to never miss an aggressor.
//!
//! ## Storage layout
//!
//! This mirrors the CAM Graphene builds in hardware: a flat open-addressing
//! table (Fibonacci hashing, linear probing, backward-shift deletion) sized
//! at construction to at most 50% load, so it never rehashes or grows. The
//! original `HashMap` implementation found an eviction victim by iterating
//! the whole map and taking the minimum decayed row — an O(capacity) scan
//! with SipHash on every access. Here eviction candidates are tracked *in
//! table*: an entry's count can only fall to the spillover level through one
//! of three observable transitions (insertion-time spillover catch-up,
//! [`MisraGries::reset_row`], or a spillover increment), and each transition
//! pushes the row into a min-heap of decayed candidates, deduplicated by a
//! per-slot flag. `record` is therefore O(1) amortized — a probe plus, on
//! eviction, an O(log capacity) heap pop — and the only remaining full scan
//! runs when the spillover itself increments (at most once per
//! capacity-exceeding activation burst, the same event that forced the old
//! implementation's scan on *every* eviction).
//!
//! Behaviour is bit-identical to the `HashMap` version, including the
//! deterministic lowest-row-index victim rule; the `reference_equivalence`
//! proptest below drives both implementations with random operation streams
//! and asserts identical observable state at every step.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel row index marking an empty slot.
const EMPTY: u32 = u32::MAX;

/// Multiplier for Fibonacci hashing (2^64 / φ, odd).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A Misra–Gries summary over row indices.
///
/// Rows must fit in a `u32` below `u32::MAX` (row indices are bounded by
/// `rows_per_bank`, far below that).
#[derive(Debug, Clone)]
pub struct MisraGries {
    capacity: usize,
    /// `slots - 1`; slots is a power of two `>= 2 * capacity`.
    mask: usize,
    /// `64 - log2(slots)`.
    shift: u32,
    /// Row key per slot (`EMPTY` = vacant).
    rows: Box<[u32]>,
    /// Estimated activation count per slot.
    counts: Box<[u64]>,
    /// True if the slot's row currently has a copy in `decayed` (dedup flag;
    /// moves with the entry on backward-shift deletion).
    in_heap: Box<[bool]>,
    len: usize,
    spillover: u64,
    /// Min-heap (by row index) of candidate eviction victims: every row whose
    /// count equals the spillover has a copy here (the converse need not
    /// hold — stale copies are discarded lazily on pop).
    decayed: BinaryHeap<Reverse<u32>>,
}

impl MisraGries {
    /// Creates a summary that tracks up to `capacity` rows.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Misra-Gries capacity must be positive");
        let slots = (capacity * 2).max(8).next_power_of_two();
        MisraGries {
            capacity,
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            rows: vec![EMPTY; slots].into_boxed_slice(),
            counts: vec![0; slots].into_boxed_slice(),
            in_heap: vec![false; slots].into_boxed_slice(),
            len: 0,
            spillover: 0,
            decayed: BinaryHeap::new(),
        }
    }

    #[inline]
    fn home(&self, row: u32) -> usize {
        (u64::from(row).wrapping_mul(FIB) >> self.shift) as usize
    }

    /// `Ok(slot)` if `row` is present, `Err(slot)` with its insertion point.
    #[inline]
    fn probe(&self, row: u32) -> Result<usize, usize> {
        let mut i = self.home(row);
        loop {
            let r = self.rows[i];
            if r == row {
                return Ok(i);
            }
            if r == EMPTY {
                return Err(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Marks slot `i` as an eviction candidate (its count reached the
    /// spillover level), unless it already has a heap copy.
    #[inline]
    fn mark_decayed(&mut self, i: usize) {
        if !self.in_heap[i] {
            self.in_heap[i] = true;
            self.decayed.push(Reverse(self.rows[i]));
        }
    }

    /// Pops the lowest-row-index entry whose count still equals the
    /// spillover, discarding stale candidates. Returns its slot.
    fn pop_decayed(&mut self) -> Option<usize> {
        while let Some(Reverse(row)) = self.decayed.pop() {
            if let Ok(i) = self.probe(row) {
                self.in_heap[i] = false;
                if self.counts[i] == self.spillover {
                    return Some(i);
                }
            }
            // Absent rows are ghosts of removed entries; drop them.
        }
        None
    }

    /// Re-derives the eviction-candidate set after a spillover increment:
    /// entries whose count just fell to the (new) spillover level join the
    /// heap. This is the only O(capacity) path left in the structure.
    #[cold]
    fn rescan_decayed(&mut self) {
        for i in 0..self.rows.len() {
            if self.rows[i] != EMPTY && self.counts[i] == self.spillover {
                self.mark_decayed(i);
            }
        }
    }

    /// Removes the entry at slot `hole` (backward-shift deletion, so probe
    /// chains stay intact without tombstones).
    ///
    /// Mirrors `bh_dram::FlatMap::remove` — duplicated because this table
    /// moves the `in_heap` flag alongside each entry; keep the
    /// cyclic-interval rule in sync with the generic map's.
    fn remove_slot(&mut self, mut hole: usize) {
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let r = self.rows[i];
            if r == EMPTY {
                break;
            }
            let home = self.home(r);
            if (i.wrapping_sub(home) & self.mask) >= (i.wrapping_sub(hole) & self.mask) {
                self.rows[hole] = r;
                self.counts[hole] = self.counts[i];
                self.in_heap[hole] = self.in_heap[i];
                hole = i;
            }
        }
        self.rows[hole] = EMPTY;
        self.in_heap[hole] = false;
        self.len -= 1;
    }

    /// Inserts `row` at its probe position with the given count. The caller
    /// guarantees the row is absent and the table below capacity.
    fn insert(&mut self, row: u32, count: u64) {
        let i = self.probe(row).unwrap_err();
        self.rows[i] = row;
        self.counts[i] = count;
        self.in_heap[i] = false;
        self.len += 1;
        if count == self.spillover {
            self.mark_decayed(i);
        }
    }

    /// Records one activation of `row` and returns its estimated count.
    pub fn record(&mut self, row: usize) -> u64 {
        let row = row as u32;
        if let Ok(i) = self.probe(row) {
            // A decayed entry that gains a count leaves the candidate set;
            // its heap copy (if any) goes stale and is skipped on pop.
            self.counts[i] += 1;
            return self.counts[i];
        }
        if self.len < self.capacity {
            let count = self.spillover + 1;
            self.insert(row, count);
            return count;
        }
        // Table full: either replace an entry that has decayed to the
        // spillover level, or absorb the activation into the spillover.
        // The victim choice is deterministic (lowest row index) so that
        // simulations are exactly reproducible run to run.
        if let Some(victim) = self.pop_decayed() {
            self.remove_slot(victim);
            let count = self.spillover + 1;
            self.insert(row, count);
            count
        } else {
            self.spillover += 1;
            self.rescan_decayed();
            self.spillover
        }
    }

    /// Estimated activation count of `row` (the spillover if untracked).
    pub fn estimate(&self, row: usize) -> u64 {
        match self.probe(row as u32) {
            Ok(i) => self.counts[i],
            Err(_) => self.spillover,
        }
    }

    /// Resets the counter of `row` to the current spillover level, as Graphene
    /// does after issuing a preventive refresh for the row.
    pub fn reset_row(&mut self, row: usize) {
        if let Ok(i) = self.probe(row as u32) {
            self.counts[i] = self.spillover;
            self.mark_decayed(i);
        }
    }

    /// Removes `row` from the table entirely (AQUA does this after migrating
    /// the row away, because the quarantined copy starts cold).
    pub fn remove_row(&mut self, row: usize) {
        if let Ok(i) = self.probe(row as u32) {
            // A heap copy may survive as a ghost; pop discards it.
            self.remove_slot(i);
        }
    }

    /// Clears the whole summary (done at every reset window).
    pub fn clear(&mut self) {
        self.rows.fill(EMPTY);
        self.in_heap.fill(false);
        self.len = 0;
        self.spillover = 0;
        self.decayed.clear();
    }

    /// Number of tracked rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no row is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current spillover counter.
    pub fn spillover(&self) -> u64 {
        self.spillover
    }

    /// Iterates over `(row, estimated_count)` pairs of tracked rows.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.rows
            .iter()
            .zip(self.counts.iter())
            .filter(|(r, _)| **r != EMPTY)
            .map(|(r, c)| (*r as usize, *c))
    }
}

/// The original `HashMap`-backed implementation, kept as the executable
/// reference model: the `reference_equivalence` proptest drives it in
/// lockstep with the flat table and asserts identical observable behaviour,
/// including the deterministic lowest-row-index eviction rule.
#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
pub(crate) mod reference {
    use std::collections::HashMap;

    /// Reference Misra–Gries summary (see the module docs of
    /// [`super::MisraGries`] for semantics).
    #[derive(Debug, Clone)]
    pub struct HashMisraGries {
        capacity: usize,
        counts: HashMap<usize, u64>,
        spillover: u64,
    }

    impl HashMisraGries {
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "Misra-Gries capacity must be positive");
            HashMisraGries { capacity, counts: HashMap::with_capacity(capacity), spillover: 0 }
        }

        pub fn record(&mut self, row: usize) -> u64 {
            if let Some(c) = self.counts.get_mut(&row) {
                *c += 1;
                return *c;
            }
            if self.counts.len() < self.capacity {
                let count = self.spillover + 1;
                self.counts.insert(row, count);
                return count;
            }
            if let Some(&victim) =
                self.counts.iter().filter(|(_, c)| **c <= self.spillover).map(|(r, _)| r).min()
            {
                self.counts.remove(&victim);
                let count = self.spillover + 1;
                self.counts.insert(row, count);
                count
            } else {
                self.spillover += 1;
                self.spillover
            }
        }

        pub fn estimate(&self, row: usize) -> u64 {
            self.counts.get(&row).copied().unwrap_or(self.spillover)
        }

        pub fn reset_row(&mut self, row: usize) {
            if let Some(c) = self.counts.get_mut(&row) {
                *c = self.spillover;
            }
        }

        pub fn remove_row(&mut self, row: usize) {
            self.counts.remove(&row);
        }

        pub fn clear(&mut self) {
            self.counts.clear();
            self.spillover = 0;
        }

        pub fn len(&self) -> usize {
            self.counts.len()
        }

        pub fn spillover(&self) -> u64 {
            self.spillover
        }

        pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
            self.counts.iter().map(|(r, c)| (*r, *c))
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::reference::HashMisraGries;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tracks_up_to_capacity_exactly() {
        let mut mg = MisraGries::new(4);
        for row in 0..4 {
            for _ in 0..=row {
                mg.record(row);
            }
        }
        assert_eq!(mg.len(), 4);
        for row in 0..4usize {
            assert_eq!(mg.estimate(row), row as u64 + 1);
        }
        assert_eq!(mg.spillover(), 0);
    }

    #[test]
    fn never_underestimates_by_more_than_spillover() {
        let mut mg = MisraGries::new(4);
        let mut truth = std::collections::HashMap::new();
        // 8 distinct rows, so half of them spill.
        for i in 0..2000usize {
            let row = i % 8;
            mg.record(row);
            *truth.entry(row).or_insert(0u64) += 1;
        }
        for (row, true_count) in truth {
            let est = mg.estimate(row);
            assert!(
                est + mg.spillover() >= true_count,
                "row {row}: estimate {est} + spillover {} < true {true_count}",
                mg.spillover()
            );
        }
    }

    #[test]
    fn heavy_hitter_is_always_tracked() {
        let mut mg = MisraGries::new(2);
        // Interleave one heavy row with many light rows.
        for i in 0..1000usize {
            mg.record(9999);
            mg.record(i);
        }
        // The heavy row must be tracked and its estimate must cover at least
        // the true count minus the spillover (Misra-Gries guarantee).
        assert!(mg.estimate(9999) + mg.spillover() >= 1000);
        assert!(mg.iter().any(|(r, _)| r == 9999));
    }

    #[test]
    fn reset_and_remove() {
        let mut mg = MisraGries::new(2);
        for _ in 0..10 {
            mg.record(5);
        }
        assert_eq!(mg.estimate(5), 10);
        mg.reset_row(5);
        assert_eq!(mg.estimate(5), mg.spillover());
        mg.remove_row(5);
        assert!(mg.is_empty());
        for _ in 0..3 {
            mg.record(1);
        }
        mg.clear();
        assert!(mg.is_empty());
        assert_eq!(mg.spillover(), 0);
        assert_eq!(mg.capacity(), 2);
    }

    #[test]
    fn eviction_picks_the_lowest_decayed_row_index() {
        // Fill a capacity-3 table, decay every entry via reset_row, then
        // insert new rows: victims must leave in ascending row order.
        let mut mg = MisraGries::new(3);
        for row in [30, 10, 20] {
            mg.record(row);
            mg.reset_row(row);
        }
        mg.record(40); // evicts 10
        let mut tracked: Vec<usize> = mg.iter().map(|(r, _)| r).collect();
        tracked.sort_unstable();
        assert_eq!(tracked, vec![20, 30, 40]);
        mg.reset_row(40);
        mg.record(50); // evicts 20 (40 was reset after the others)
        let mut tracked: Vec<usize> = mg.iter().map(|(r, _)| r).collect();
        tracked.sort_unstable();
        assert_eq!(tracked, vec![30, 40, 50]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MisraGries::new(0);
    }

    /// Asserts every observable of the flat and reference implementations
    /// matches.
    fn assert_same_state(flat: &MisraGries, reference: &HashMisraGries, context: &str) {
        assert_eq!(flat.len(), reference.len(), "len after {context}");
        assert_eq!(flat.spillover(), reference.spillover(), "spillover after {context}");
        let mut flat_entries: Vec<(usize, u64)> = flat.iter().collect();
        flat_entries.sort_unstable();
        let mut ref_entries: Vec<(usize, u64)> = reference.iter().collect();
        ref_entries.sort_unstable();
        assert_eq!(flat_entries, ref_entries, "tracked entries after {context}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The flat table and the `HashMap` reference model agree on every
        /// `record` return value, every `estimate`, the tracked-row set and
        /// the spillover across random operation streams — i.e. the rewrite
        /// (including its in-table min-tracking eviction path) is
        /// bit-identical to the original, lowest-row-victim rule included.
        #[test]
        fn reference_equivalence(
            capacity in 1usize..6,
            ops in proptest::collection::vec((0u8..8, 0usize..24), 1..400),
        ) {
            let mut flat = MisraGries::new(capacity);
            let mut reference = HashMisraGries::new(capacity);
            for (i, (op, row)) in ops.iter().enumerate() {
                let context = format!("op {i} ({op}, row {row})");
                match op {
                    // Bias toward record: it is the only operation with a
                    // non-trivial (eviction/spillover) decision to compare.
                    0..=4 => {
                        let a = flat.record(*row);
                        let b = reference.record(*row);
                        prop_assert_eq!(a, b, "record return at {}", context);
                    }
                    5 => {
                        flat.reset_row(*row);
                        reference.reset_row(*row);
                    }
                    6 => {
                        flat.remove_row(*row);
                        reference.remove_row(*row);
                    }
                    _ => {
                        prop_assert_eq!(
                            flat.estimate(*row),
                            reference.estimate(*row),
                            "estimate at {}",
                            context
                        );
                    }
                }
                assert_same_state(&flat, &reference, &context);
                for probe_row in 0..24usize {
                    prop_assert_eq!(
                        flat.estimate(probe_row),
                        reference.estimate(probe_row),
                        "estimate of row {} after {}",
                        probe_row,
                        context
                    );
                }
            }
            flat.clear();
            reference.clear();
            assert_same_state(&flat, &reference, "clear");
        }
    }
}
