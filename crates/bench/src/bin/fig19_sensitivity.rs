//! Figure 19: BreakHammer's sensitivity to the TH_threat configuration
//! parameter, at three N_RH values, for workloads with and without an
//! attacker. Reported as box-plot statistics of the weighted speedup
//! normalized to the TH_threat = 4096 configuration (the least aggressive
//! setting), using Graphene as the representative paired mechanism.

use bh_bench::{maybe_print_config, paper_config, print_results, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, BoxPlot, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let threat_values = [32.0f64, 512.0, 4096.0];
    let nrh_values = [
        *scale.nrh_values.iter().max().expect("non-empty sweep"),
        scale.nrh_values[scale.nrh_values.len() / 2],
        *scale.nrh_values.iter().min().expect("non-empty sweep"),
    ];

    let mut table = Table::new([
        "workloads",
        "nrh",
        "th_threat",
        "ws_q1",
        "ws_median",
        "ws_q3",
        "normalized_median",
    ]);
    for attack in [true, false] {
        for &nrh in &nrh_values {
            // Baseline: TH_threat = 4096 (essentially never throttles).
            let mut per_threat: Vec<(f64, Vec<f64>)> = Vec::new();
            for &threat in &threat_values {
                let mut config = paper_config(MechanismKind::Graphene, nrh, true, &scale);
                let mut bh = config.effective_breakhammer_config();
                bh.threat_threshold = threat;
                config.breakhammer_config = Some(bh);
                let records = campaign.run(&config, attack);
                per_threat.push((threat, records.iter().map(|r| r.weighted_speedup).collect()));
            }
            let baseline_median =
                BoxPlot::from_samples(&per_threat.last().expect("three threat values").1).median;
            for (threat, samples) in &per_threat {
                let boxplot = BoxPlot::from_samples(samples);
                table.push_row([
                    if attack { "attack" } else { "benign" }.to_string(),
                    nrh.to_string(),
                    format!("{threat:.0}"),
                    fmt3(boxplot.q1),
                    fmt3(boxplot.median),
                    fmt3(boxplot.q3),
                    fmt3(boxplot.median / baseline_median),
                ]);
            }
        }
    }
    print_results(
        "Figure 19: sensitivity to TH_threat (Graphene+BreakHammer; weighted speedup normalized to TH_threat = 4096)",
        &table,
    );
}
