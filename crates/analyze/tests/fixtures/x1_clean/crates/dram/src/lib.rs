//! X1 negative: exhaustive destructures, unmarked structs with `..`, and
//! non-literal brace contexts (impl blocks, ranges) that must not fire.

// bh-exhaustive: `merge` must see every field.
pub struct Stats {
    pub activations: u64,
    pub refreshes: u64,
}

/// An unmarked struct: `..` stays legal at its use sites.
pub struct Loose {
    pub a: u64,
    pub b: u64,
}

impl Stats {
    pub fn total(&self) -> u64 {
        self.activations + self.refreshes
    }
}

pub fn merge(stats: &Stats) -> u64 {
    let Stats { activations, refreshes } = stats;
    let mut sum = 0;
    for i in 0..*activations {
        sum += i % 2;
    }
    sum + *refreshes
}

pub fn loose(l: &Loose) -> u64 {
    let Loose { a, .. } = l;
    *a
}
