//! Fundamental value types shared across the whole simulation stack.
//!
//! Everything in the simulator is expressed in terms of these small newtypes:
//! cycles of the DRAM command clock, hardware-thread identifiers, and physical
//! memory addresses. Keeping them as distinct types (rather than bare `u64`s)
//! prevents a whole class of unit-mixing bugs (e.g. adding a CPU-cycle count to
//! a DRAM-cycle deadline).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in time measured in **DRAM command-clock cycles** (nCK).
///
/// The whole memory subsystem is simulated in this clock domain; the CPU cores
/// run at a higher frequency and are ticked multiple times per memory cycle by
/// the system simulator.
pub type Cycle = u64;

/// A duration measured in DRAM command-clock cycles.
pub type CycleDelta = u64;

/// Identifier of a hardware thread (one per simulated core in the default
/// configuration).
///
/// BreakHammer maintains one RowHammer-preventive score per hardware thread,
/// so this is the granularity at which scores, activation attribution and
/// MSHR quotas are tracked.
///
/// # Examples
/// ```
/// use bh_dram::ThreadId;
/// let t = ThreadId(2);
/// assert_eq!(t.index(), 2);
/// assert_eq!(format!("{t}"), "T2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub usize);

impl ThreadId {
    /// Returns the zero-based index of this hardware thread.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(v: usize) -> Self {
        ThreadId(v)
    }
}

/// A physical byte address as seen by the memory controller.
///
/// The address-mapping scheme in `bh-mem` decomposes a `PhysAddr` into
/// channel / rank / bank-group / bank / row / column coordinates.
///
/// # Examples
/// ```
/// use bh_dram::PhysAddr;
/// let a = PhysAddr(0x4000);
/// assert_eq!(a.cache_line(64), 0x100);
/// assert_eq!(a.align_down(64).0, 0x4000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the cache-line index of this address for the given line size.
    ///
    /// # Panics
    /// Panics if `line_size` is zero.
    pub fn cache_line(self, line_size: u64) -> u64 {
        assert!(line_size > 0, "cache line size must be non-zero");
        self.0 / line_size
    }

    /// Rounds the address down to a multiple of `align` (must be a power of two).
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn align_down(self, align: u64) -> PhysAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        PhysAddr(self.0 & !(align - 1))
    }

    /// Returns the raw 64-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand read (load miss, instruction fetch miss, …).
    Read,
    /// A writeback / store miss that must eventually update DRAM.
    Write,
}

impl AccessKind {
    /// True if this access reads data from DRAM.
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// True if this access writes data to DRAM.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_display_and_index() {
        let t = ThreadId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.to_string(), "T7");
        assert_eq!(ThreadId::from(3), ThreadId(3));
    }

    #[test]
    fn phys_addr_cache_line() {
        assert_eq!(PhysAddr(0).cache_line(64), 0);
        assert_eq!(PhysAddr(63).cache_line(64), 0);
        assert_eq!(PhysAddr(64).cache_line(64), 1);
        assert_eq!(PhysAddr(0x1_0000).cache_line(64), 1024);
    }

    #[test]
    fn phys_addr_align_down() {
        assert_eq!(PhysAddr(0x1234).align_down(64).0, 0x1200);
        assert_eq!(PhysAddr(0x1240).align_down(64).0, 0x1240);
        assert_eq!(PhysAddr(0xffff).align_down(4096).0, 0xf000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn phys_addr_align_down_rejects_non_power_of_two() {
        let _ = PhysAddr(0x1234).align_down(100);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn phys_addr_display_is_hex() {
        assert_eq!(PhysAddr(255).to_string(), "0xff");
    }
}
