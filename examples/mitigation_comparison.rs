//! Compares all eight RowHammer mitigation mechanisms of the paper — with and
//! without BreakHammer — under the same attacked workload, reproducing the
//! qualitative ranking of Figs. 6 and 8 at example scale.
//!
//! Run with: `cargo run --release --example mitigation_comparison`

use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{Evaluator, SystemConfig};
use breakhammer_suite::stats::Table;
use breakhammer_suite::workloads::{MixBuilder, MixClass, TraceGenerator};

fn main() {
    let nrh = 128;
    let mut base = SystemConfig::fast_test(MechanismKind::None, nrh, false);
    base.geometry = breakhammer_suite::dram::DramGeometry::paper_ddr5();
    base.instructions_per_core = 20_000;

    let generator = TraceGenerator::new(base.geometry.clone(), AddressMapping::paper_default());
    let mut builder = MixBuilder::new(generator);
    builder.benign_entries = 4_000;
    builder.attacker_entries = 4_000;
    let mix = builder.build(MixClass::attack_classes()[0], 0, 11); // HHHA

    let mut table = Table::new([
        "mechanism",
        "WS without BH",
        "WS with BH",
        "BH gain",
        "actions w/o BH",
        "actions w/ BH",
    ]);
    for mechanism in MechanismKind::paper_mechanisms() {
        let mut results = Vec::new();
        for breakhammer in [false, true] {
            let mut config = SystemConfig::fast_test(mechanism, nrh, breakhammer);
            config.geometry = breakhammer_suite::dram::DramGeometry::paper_ddr5();
            config.instructions_per_core = 20_000;
            let mut evaluator = Evaluator::new(config);
            results.push(evaluator.evaluate(&mix));
        }
        table.push_row([
            mechanism.to_string(),
            format!("{:.3}", results[0].weighted_speedup),
            format!("{:.3}", results[1].weighted_speedup),
            format!("{:.2}x", results[1].weighted_speedup / results[0].weighted_speedup),
            results[0].preventive_actions().to_string(),
            results[1].preventive_actions().to_string(),
        ]);
    }
    println!("Attacked workload {} at N_RH = {nrh}\n", mix.name);
    println!("{}", table.to_text());
    println!("Mechanisms whose preventive actions are expensive (AQUA's migrations, PARA's");
    println!("frequent refreshes at low N_RH) benefit the most from throttling the attacker.");
}
