//! The sharded multi-channel memory system.
//!
//! [`MemorySystem`] owns one [`MemoryController`] (and therefore one DRAM
//! channel and one mitigation-mechanism instance) per memory channel, routes
//! demand requests to their channel via the address mapping's
//! [`ChannelInterleave`](crate::ChannelInterleave) policy, and exposes the
//! merged next-event horizon (the minimum across the per-channel controllers)
//! so the event-driven simulation kernel can drive N channels exactly like
//! one.
//!
//! BreakHammer is deliberately *not* per-channel: a single instance observes
//! the demand activations and preventive actions of every channel and
//! throttles threads on their system-wide score — exactly the paper's
//! memory-system-wide observer (§5, Table 1), mirroring how per-channel
//! trackers (Graphene, Hydra, BlockHammer, …) stay independent while the
//! throttling decision is global.
//!
//! With a single channel, every code path degenerates to the behaviour of a
//! lone [`MemoryController`] — and does so through a dedicated fast path:
//! the hot per-request and per-step entry points ([`MemorySystem::channel_of`],
//! [`MemorySystem::enqueue_or_defer`], [`MemorySystem::tick`],
//! [`MemorySystem::next_event`], [`MemorySystem::drain_responses_into`])
//! forward straight to the sole controller without consulting the address
//! mapping's channel bits or walking per-channel collections, so a
//! single-channel system pays no routing tax over driving the controller
//! directly (`crates/mem/tests/dispatch_overhead.rs` pins this). The digest
//! harness at the workspace root pins the behavioural equivalence
//! bit-for-bit.

use crate::config::MemControllerConfig;
use crate::controller::{BhEvent, BhEventKind, ControllerStats, MemoryController};
use crate::latency::LatencyHistogram;
use crate::pool::{advance_channel, ChannelPool, ChannelTask};
use crate::request::{MemRequest, MemResponse};
use bh_core::BreakHammer;
use bh_dram::{Cycle, DramChannel, DramGeometry, PhysAddr, ThreadId};
use bh_mitigation::TriggerMechanism;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters describing epoch-parallel channel stepping (see
/// [`MemorySystem::advance_epoch`]). All zeros under serial stepping.
// bh-exhaustive: `accumulate` destructures every field; bh_analyze rule X1
// rejects any `..` at a `SteppingStats { .. }` use site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteppingStats {
    /// Epochs executed (inline or pooled).
    pub epochs: u64,
    /// Epochs dispatched to the worker pool (the rest ran inline on the
    /// simulation thread because the span was too short to amortize a
    /// wake-up — a pure throughput heuristic, never a behavioural one).
    pub parallel_epochs: u64,
    /// DRAM cycles covered by epochs (the merged steps the serial schedule
    /// would have executed one by one).
    pub epoch_cycles: u64,
    /// Controller tick events processed inside epochs, across channels.
    pub channel_events: u64,
    /// Recorded BreakHammer events replayed at epoch merges.
    pub bh_events_replayed: u64,
}

impl SteppingStats {
    /// Adds another run's counters into this one (campaign aggregation).
    pub fn accumulate(&mut self, other: &SteppingStats) {
        // Exhaustive destructuring (no `..`): adding a counter without
        // aggregating it here is a compile error, not a silent zero in
        // campaign-level summaries.
        let SteppingStats {
            epochs,
            parallel_epochs,
            epoch_cycles,
            channel_events,
            bh_events_replayed,
        } = other;
        self.epochs += epochs;
        self.parallel_epochs += parallel_epochs;
        self.epoch_cycles += epoch_cycles;
        self.channel_events += channel_events;
        self.bh_events_replayed += bh_events_replayed;
    }
}

/// Epochs shorter than this run inline on the simulation thread instead of
/// waking the pool: the fixed cost of a generation dispatch only pays for
/// itself when every channel has a few events' worth of work. Purely a
/// throughput heuristic — inline and pooled execution are bit-identical.
const POOLED_EPOCH_MIN_SPAN: u64 = 24;

/// A multi-channel memory system: per-channel controllers + mitigation
/// instances behind one request-routing facade, with one shared BreakHammer.
pub struct MemorySystem {
    controllers: Vec<MemoryController>,
    /// The single system-wide BreakHammer observer (None when disabled).
    breakhammer: Option<BreakHammer>,
    /// Requests rejected by a full channel queue, one retry deque per
    /// channel: a saturated channel (e.g. one pinned by an attacker) must
    /// not head-of-line-block retries destined for idle channels, or the
    /// modeled cross-channel interference would exceed the hardware's.
    /// Within a channel, retries stay in arrival order.
    pending_enqueue: Vec<VecDeque<MemRequest>>,
    /// Total entries across `pending_enqueue` (cheap emptiness probe on the
    /// per-step fast path).
    pending_total: usize,
    /// True for a single-channel system: the hot entry points skip channel
    /// routing and per-channel iteration and forward straight to
    /// `controllers[0]`.
    single_channel: bool,
    /// Per-channel BreakHammer event recordings of the current epoch
    /// (cleared at each epoch start; merged in (cycle, channel) order after
    /// the barrier).
    bh_events: Vec<Vec<BhEvent>>,
    /// Per-channel tick-event counts of the current epoch (scratch).
    epoch_ticks: Vec<u64>,
    /// Per-channel cursors of the epoch-merge replay (scratch).
    merge_cursors: Vec<usize>,
    /// Reusable task list handed to the pool each epoch.
    task_buf: Vec<ChannelTask>,
    /// The persistent epoch worker pool, spawned lazily on the first epoch
    /// wide enough to use it.
    pool: Option<ChannelPool>,
    /// Epoch-stepping counters.
    stepping: SteppingStats,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("channels", &self.controllers.len())
            .field("breakhammer", &self.breakhammer.is_some())
            .field("pending_enqueue", &self.pending_enqueue.len())
            .finish_non_exhaustive()
    }
}

impl MemorySystem {
    /// Builds a memory system from one `(DRAM channel, mechanism)` pair per
    /// memory channel. All controllers share `config` (queue capacities and
    /// the address mapping are per channel, as in a real controller die).
    ///
    /// # Panics
    /// Panics if `channels` is empty or its length does not match the
    /// geometry's channel count.
    pub fn new(
        config: MemControllerConfig,
        channels: Vec<(DramChannel, Box<dyn TriggerMechanism>)>,
        mut breakhammer: Option<BreakHammer>,
    ) -> Self {
        assert!(!channels.is_empty(), "a memory system needs at least one channel");
        let declared = channels[0].0.geometry().channels.max(1);
        assert_eq!(
            channels.len(),
            declared,
            "got {} channel instances for a geometry declaring {} channels",
            channels.len(),
            declared
        );
        let controllers: Vec<MemoryController> = channels
            .into_iter()
            .enumerate()
            .map(|(index, (channel, mechanism))| {
                MemoryController::new(config.clone(), channel, mechanism).with_channel_index(index)
            })
            .collect();
        if let Some(bh) = breakhammer.as_mut() {
            bh.declare_channels(controllers.len());
        }
        let channels_len = controllers.len();
        let pending_enqueue: Vec<VecDeque<MemRequest>> =
            controllers.iter().map(|_| VecDeque::new()).collect();
        let bh_events = controllers.iter().map(|_| Vec::new()).collect();
        let epoch_ticks = vec![0; channels_len];
        let single_channel = channels_len == 1;
        MemorySystem {
            controllers,
            breakhammer,
            pending_enqueue,
            pending_total: 0,
            single_channel,
            bh_events,
            epoch_ticks,
            merge_cursors: vec![0; channels_len],
            task_buf: Vec::new(),
            pool: None,
            stepping: SteppingStats::default(),
        }
    }

    /// Number of memory channels.
    pub fn channel_count(&self) -> usize {
        self.controllers.len()
    }

    /// The per-channel controllers, in channel order.
    pub fn controllers(&self) -> &[MemoryController] {
        &self.controllers
    }

    /// The controller of one channel.
    pub fn controller(&self, channel: usize) -> &MemoryController {
        &self.controllers[channel]
    }

    /// The shared BreakHammer observer, if attached.
    pub fn breakhammer(&self) -> Option<&BreakHammer> {
        self.breakhammer.as_ref()
    }

    /// The geometry shared by every channel.
    pub fn geometry(&self) -> &DramGeometry {
        self.controllers[0].channel().geometry()
    }

    /// The channel a physical address routes to.
    pub fn channel_of(&self, addr: PhysAddr) -> usize {
        if self.single_channel {
            // Every interleave policy is the identity at one channel; skip
            // the mapping's channel-bit extraction on the per-request path.
            return 0;
        }
        let ctrl = &self.controllers[0];
        ctrl.config().mapping.channel_of(addr, ctrl.channel().geometry())
    }

    /// Routes `req` to its channel's controller.
    ///
    /// # Errors
    /// Returns the request back if that channel's queue is full.
    pub fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let channel = self.channel_of(req.addr);
        self.controllers[channel].try_enqueue(req)
    }

    /// Routes `req` to its channel, deferring it into that channel's retry
    /// queue if the channel's request queue is currently full.
    pub fn enqueue_or_defer(&mut self, req: MemRequest) {
        let channel = self.channel_of(req.addr);
        if let Err(rejected) = self.controllers[channel].try_enqueue(req) {
            self.pending_enqueue[channel].push_back(rejected);
            self.pending_total += 1;
        }
    }

    /// Retries deferred requests, per channel in arrival order, stopping at
    /// each channel's first request whose queue is still full. Channels are
    /// independent: a saturated channel never blocks another channel's
    /// retries.
    pub fn retry_pending(&mut self) {
        if self.pending_total == 0 {
            return;
        }
        for (channel, pending) in self.pending_enqueue.iter_mut().enumerate() {
            while let Some(req) = pending.front().copied() {
                if self.controllers[channel].try_enqueue(req).is_ok() {
                    pending.pop_front();
                    self.pending_total -= 1;
                } else {
                    break;
                }
            }
        }
    }

    /// True if some rejected request is still waiting to be retried.
    pub fn has_pending_enqueue(&self) -> bool {
        self.pending_total > 0
    }

    /// Number of rejected requests parked in `channel`'s enqueue-retry deque
    /// (diagnostic: feeds the forward-progress watchdog's livelock snapshot).
    pub fn pending_enqueue_depth(&self, channel: usize) -> usize {
        self.pending_enqueue[channel].len()
    }

    /// Records `n` skipped retry attempts per channel with a still-blocked
    /// deferred request (the event-driven kernel's bulk replay of the
    /// per-cycle kernel's one failed front retry per channel per cycle).
    pub fn absorb_enqueue_rejections(&mut self, n: u64) {
        for (channel, pending) in self.pending_enqueue.iter().enumerate() {
            if !pending.is_empty() {
                self.controllers[channel].absorb_enqueue_rejections(n);
            }
        }
    }

    /// Advances every channel independently from `from` up to (and
    /// excluding) `to` — one *epoch* of the parallel stepping kernel — then
    /// replays the channels' recorded BreakHammer events into the shared
    /// observer in (cycle, channel-index) order: exactly the order the
    /// serial schedule reports the same events in, since the serial kernel
    /// ticks channels in index order within each merged step. The caller
    /// performs the step at `to` itself through the normal serial path,
    /// which applies the remaining cross-channel effects (response draining,
    /// retry promotion, quota propagation) under the serial ordering.
    ///
    /// The epoch contract — the caller must guarantee that `to` does not
    /// exceed the earliest cross-channel synchronization point: the shared
    /// observer's next window edge (so window rotations never fall inside an
    /// epoch) and the earliest cycle a core could unstall and issue new
    /// traffic. Within those bounds the channels are fully independent, so
    /// pooled, inline, and serial execution are bit-identical; whether the
    /// worker pool is used (and with how many threads) is a pure throughput
    /// decision.
    pub fn advance_epoch(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(to > from + 1, "an epoch must cover at least one interior cycle");
        let record = self.breakhammer.is_some();
        let span = to - from;
        self.stepping.epochs += 1;
        self.stepping.epoch_cycles += span;
        for buf in &mut self.bh_events {
            buf.clear();
        }
        self.epoch_ticks.fill(0);
        let channels = self.controllers.len();
        let pooled = channels > 1 && span >= POOLED_EPOCH_MIN_SPAN;
        if pooled {
            self.stepping.parallel_epochs += 1;
            let pool = self.pool.get_or_insert_with(|| {
                // `BH_EPOCH_WORKERS` pins the participant count (the main
                // thread included); otherwise one participant per channel,
                // capped by the machine. A pure throughput knob — epoch
                // results are bit-identical at any worker count. A value that
                // is not a positive integer falls back to auto-detection with
                // a one-time warning rather than failing silently (the shared
                // parse/warn-once helper in `bh_core::knobs`).
                let participants =
                    bh_core::knobs::positive_usize("BH_EPOCH_WORKERS", "one worker per channel")
                        .unwrap_or_else(|| {
                            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                        })
                        .min(channels);
                ChannelPool::new(participants.saturating_sub(1))
            });
            let mut tasks = std::mem::take(&mut self.task_buf);
            tasks.clear();
            for (((ctrl, pending), events), ticks) in self
                .controllers
                .iter_mut()
                .zip(self.pending_enqueue.iter_mut())
                .zip(self.bh_events.iter_mut())
                .zip(self.epoch_ticks.iter_mut())
            {
                tasks.push(ChannelTask::new(ctrl, pending, events, ticks, record, from, to));
            }
            pool.dispatch(&mut tasks);
            self.task_buf = tasks;
        } else {
            for (((ctrl, pending), events), ticks) in self
                .controllers
                .iter_mut()
                .zip(self.pending_enqueue.iter_mut())
                .zip(self.bh_events.iter_mut())
                .zip(self.epoch_ticks.iter_mut())
            {
                *ticks = advance_channel(ctrl, pending, record.then_some(events), from, to);
            }
        }
        self.pending_total = self.pending_enqueue.iter().map(VecDeque::len).sum();
        self.stepping.channel_events += self.epoch_ticks.iter().sum::<u64>();
        if let Some(bh) = self.breakhammer.as_mut() {
            // K-way merge by (cycle, channel). Scanning channels in
            // ascending order with a strict `<` keeps the lowest channel on
            // cycle ties, and within one (cycle, channel) the buffer order
            // (activation first, then its preventive actions) is preserved —
            // both exactly as the live serial schedule observes them.
            let mut replayed = 0u64;
            self.merge_cursors.fill(0);
            loop {
                let mut best: Option<(Cycle, usize)> = None;
                for (channel, buf) in self.bh_events.iter().enumerate() {
                    if let Some(ev) = buf.get(self.merge_cursors[channel]) {
                        if best.is_none_or(|(cycle, _)| ev.cycle < cycle) {
                            best = Some((ev.cycle, channel));
                        }
                    }
                }
                let Some((_, channel)) = best else { break };
                let ev = self.bh_events[channel][self.merge_cursors[channel]];
                self.merge_cursors[channel] += 1;
                // Window rotations are pure no-ops inside an epoch (the
                // caller capped `to` at the window edge), so skipping the
                // live schedule's `advance_to` calls is behaviour-neutral.
                debug_assert!(ev.cycle < bh.next_window_end());
                match ev.kind {
                    BhEventKind::Activation(thread) => bh.on_activation(thread, ev.cycle),
                    BhEventKind::PreventiveAction => {
                        bh.on_preventive_action_from(channel, ev.cycle);
                    }
                }
                replayed += 1;
            }
            self.stepping.bh_events_replayed += replayed;
        }
    }

    /// Epoch-stepping counters (all zeros under serial stepping).
    pub fn stepping_stats(&self) -> &SteppingStats {
        &self.stepping
    }

    /// Advances every channel controller by one DRAM cycle. The shared
    /// BreakHammer instance observes all of them.
    pub fn tick(&mut self, cycle: Cycle) {
        if self.single_channel {
            self.controllers[0].tick(cycle, self.breakhammer.as_mut());
            return;
        }
        let breakhammer = &mut self.breakhammer;
        for controller in &mut self.controllers {
            controller.tick(cycle, breakhammer.as_mut());
        }
    }

    /// Earliest cycle strictly after `now` at which any channel's controller
    /// could make progress — the merged horizon driving the event-driven
    /// kernel (see [`MemoryController::next_event`] for the per-channel
    /// contract; the same undershoot-only guarantee holds for the minimum).
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if self.single_channel {
            return self.controllers[0].next_event(now);
        }
        self.controllers.iter().map(|c| c.next_event(now)).min().unwrap_or(now + 1)
    }

    /// True if any channel has a response waiting to be drained (the cheap
    /// per-step probe that lets the simulation loop skip the drain
    /// entirely on response-free steps).
    pub fn has_responses(&self) -> bool {
        if self.single_channel {
            return self.controllers[0].has_responses();
        }
        self.controllers.iter().any(MemoryController::has_responses)
    }

    /// Drains every channel's responses into `buf` (cleared first), in
    /// channel order. With one channel this is exactly
    /// [`MemoryController::drain_responses_into`] (a buffer swap, no copy).
    pub fn drain_responses_into(&mut self, buf: &mut Vec<MemResponse>) {
        if self.single_channel {
            self.controllers[0].drain_responses_into(buf);
            return;
        }
        buf.clear();
        for controller in &mut self.controllers {
            controller.append_responses_into(buf);
        }
    }

    /// Demand requests currently queued across all channels.
    pub fn queued_requests(&self) -> usize {
        self.controllers.iter().map(|c| c.queued_requests()).sum()
    }

    /// Pending preventive DRAM commands across all channels.
    pub fn pending_preventive_commands(&self) -> usize {
        self.controllers.iter().map(|c| c.pending_preventive_commands()).sum()
    }

    /// Controller statistics aggregated over all channels.
    pub fn aggregate_stats(&self) -> ControllerStats {
        let mut total = ControllerStats::default();
        for controller in &self.controllers {
            total.accumulate(controller.stats());
        }
        total
    }

    /// DRAM command statistics aggregated over all channels.
    pub fn aggregate_dram_stats(&self) -> bh_dram::DramStats {
        let mut total = bh_dram::DramStats::default();
        for controller in &self.controllers {
            total.accumulate(controller.channel().stats());
        }
        total
    }

    /// The read-latency histogram of `thread`, merged over all channels.
    pub fn latency_of(&self, thread: ThreadId) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for controller in &self.controllers {
            merged.merge(controller.latency_of(thread));
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{AddressMapping, ChannelInterleave};
    use bh_dram::{AccessKind, BankAddr, DramLocation, TimingParams};
    use bh_mitigation::MechanismKind;

    fn small_config(mapping: AddressMapping) -> MemControllerConfig {
        let mut c = MemControllerConfig::paper_table1(4);
        c.read_queue_capacity = 16;
        c.write_queue_capacity = 16;
        c.write_drain_high = 12;
        c.write_drain_low = 4;
        c.mapping = mapping;
        c
    }

    fn system(channels: usize, interleave: ChannelInterleave) -> MemorySystem {
        let geometry = DramGeometry::tiny().with_channels(channels);
        let timing = TimingParams::fast_test();
        let mapping = AddressMapping::paper_default().with_interleave(interleave);
        let instances = (0..channels)
            .map(|ch| {
                let mechanism = MechanismKind::Graphene.build(&geometry, &timing, 128, ch as u64);
                let channel = DramChannel::with_rowhammer(geometry.clone(), timing.clone(), 128);
                (channel, mechanism)
            })
            .collect();
        MemorySystem::new(small_config(mapping), instances, None)
    }

    /// Physical address of a location on `channel`.
    fn addr_on(mem: &MemorySystem, channel: usize, row: usize, column: usize) -> PhysAddr {
        let loc = DramLocation {
            channel,
            bank: BankAddr { rank: 0, bank_group: 0, bank: 0 },
            row,
            column,
        };
        let ctrl = mem.controller(0);
        ctrl.config().mapping.encode(&loc, ctrl.channel().geometry())
    }

    #[test]
    fn requests_route_to_their_mapped_channel() {
        let mut mem = system(2, ChannelInterleave::CacheLine);
        for channel in 0..2 {
            let addr = addr_on(&mem, channel, 5, 0);
            assert_eq!(mem.channel_of(addr), channel);
            mem.try_enqueue(MemRequest::read(channel as u64, ThreadId(0), addr, 0)).unwrap();
        }
        assert_eq!(mem.controller(0).queued_requests(), 1);
        assert_eq!(mem.controller(1).queued_requests(), 1);
        assert_eq!(mem.queued_requests(), 2);
    }

    #[test]
    fn responses_merge_across_channels() {
        let mut mem = system(2, ChannelInterleave::CacheLine);
        for channel in 0..2u64 {
            let addr = addr_on(&mem, channel as usize, 7, 0);
            mem.try_enqueue(MemRequest::read(channel, ThreadId(0), addr, 0)).unwrap();
        }
        let mut responses = Vec::new();
        let mut buf = Vec::new();
        for cycle in 0..10_000u64 {
            mem.tick(cycle);
            mem.drain_responses_into(&mut buf);
            responses.extend(buf.iter().copied());
            if responses.len() == 2 {
                break;
            }
        }
        assert_eq!(responses.len(), 2, "both channels must serve their read");
        let stats = mem.aggregate_stats();
        assert_eq!(stats.reads_served, 2);
        assert_eq!(stats.demand_activations, 2);
        assert_eq!(mem.aggregate_dram_stats().activates, 2);
    }

    #[test]
    fn merged_next_event_is_the_minimum_over_channels() {
        let mut mem = system(2, ChannelInterleave::CacheLine);
        // Load only channel 1; channel 0 idles until its refresh deadline.
        let addr = addr_on(&mem, 1, 3, 0);
        mem.try_enqueue(MemRequest::read(1, ThreadId(0), addr, 0)).unwrap();
        mem.tick(0);
        let merged = mem.next_event(0);
        let per_channel = (0..2).map(|c| mem.controller(c).next_event(0)).min().unwrap();
        assert_eq!(merged, per_channel);
        assert!(merged > 0);
    }

    #[test]
    fn deferred_requests_retry_on_their_own_channel() {
        let mut mem = system(2, ChannelInterleave::CacheLine);
        // Fill channel 0's read queue, then defer one more to it.
        let mut id = 0u64;
        while mem.controller(0).can_accept(AccessKind::Read) {
            let addr = addr_on(&mem, 0, id as usize % 64, 0);
            mem.try_enqueue(MemRequest::read(id, ThreadId(0), addr, 0)).unwrap();
            id += 1;
        }
        mem.enqueue_or_defer(MemRequest::read(id, ThreadId(0), addr_on(&mem, 0, 99, 0), 0));
        assert!(mem.has_pending_enqueue());
        // Channel 1 is unaffected: its requests enqueue directly.
        mem.enqueue_or_defer(MemRequest::read(id + 1, ThreadId(1), addr_on(&mem, 1, 5, 0), 0));
        assert_eq!(mem.controller(1).queued_requests(), 1);
        // Draining channel 0 lets the deferred request in.
        let mut buf = Vec::new();
        for cycle in 0..100_000u64 {
            mem.retry_pending();
            mem.tick(cycle);
            mem.drain_responses_into(&mut buf);
            if !mem.has_pending_enqueue() {
                break;
            }
        }
        assert!(!mem.has_pending_enqueue(), "the deferred request must eventually enqueue");
    }

    #[test]
    fn shared_breakhammer_aggregates_actions_from_all_channels() {
        use bh_core::{BreakHammer, BreakHammerConfig};
        let channels = 2usize;
        let geometry = DramGeometry::tiny().with_channels(channels);
        let timing = TimingParams::fast_test();
        let mapping = AddressMapping::paper_default();
        let instances: Vec<_> = (0..channels)
            .map(|ch| {
                let mechanism = MechanismKind::Graphene.build(&geometry, &timing, 64, ch as u64);
                let channel = DramChannel::with_rowhammer(geometry.clone(), timing.clone(), 64);
                (channel, mechanism)
            })
            .collect();
        let attribution = instances[0].1.attribution();
        let mut bh_cfg = BreakHammerConfig::fast_test(4, 16);
        bh_cfg.window_cycles = 1_000_000;
        let bh = BreakHammer::new(bh_cfg, attribution);
        let mut mem = MemorySystem::new(small_config(mapping), instances, Some(bh));

        // Thread 0 double-side hammers *both* channels; thread 1 stays quiet.
        let mut id = 0u64;
        let mut cycle = 0u64;
        for round in 0..1200u64 {
            for channel in 0..channels {
                let row = if round % 2 == 0 { 50 } else { 52 };
                let addr = addr_on(&mem, channel, row, (round % 4) as usize);
                let req = MemRequest::read(id, ThreadId(0), addr, cycle);
                id += 1;
                let mut r = mem.try_enqueue(req);
                while r.is_err() {
                    mem.tick(cycle);
                    cycle += 1;
                    r = mem.try_enqueue(req);
                }
            }
            for _ in 0..8 {
                mem.tick(cycle);
                cycle += 1;
            }
        }
        let bh = mem.breakhammer().expect("BreakHammer attached");
        let stats = bh.stats();
        assert!(stats.actions_observed > 0, "hammering must trigger Graphene");
        assert_eq!(stats.actions_per_channel.len(), channels);
        assert!(
            stats.actions_per_channel.iter().all(|&n| n > 0),
            "both channels' trackers must have contributed actions: {:?}",
            stats.actions_per_channel
        );
        assert_eq!(stats.actions_per_channel.iter().sum::<u64>(), stats.actions_observed);
        // The cross-channel score identified the hammering thread.
        assert!(bh.score(ThreadId(0)) > bh.score(ThreadId(1)));
    }

    #[test]
    #[should_panic(expected = "channel instances")]
    fn channel_count_mismatch_is_rejected() {
        let geometry = DramGeometry::tiny().with_channels(2);
        let timing = TimingParams::fast_test();
        let mechanism = MechanismKind::None.build(&geometry, &timing, 1024, 0);
        let channel = DramChannel::with_rowhammer(geometry, timing, 1024);
        let _ = MemorySystem::new(
            small_config(AddressMapping::paper_default()),
            vec![(channel, mechanism)],
            None,
        );
    }
}
