//! The data-oriented CPU front-end: every core's hot replay state in flat
//! contiguous storage, stepped in one pass per event epoch.
//!
//! [`CoreEngine`] replaces N per-object [`Core`](crate::Core)`::tick` calls
//! with a single [`CoreEngine::tick_epoch`] sweep over two flat vectors:
//!
//! * one fixed-size `Lane` row per core, holding every scalar the
//!   per-cycle loop touches — trace cursor, bubble countdown, window
//!   occupancy and ring indices, pending-miss (hard-stall) token, stall
//!   debt, retired count and the cycle/stall counters. A core's whole tick
//!   reads and writes one row (two or three cache lines, one bounds check),
//!   where per-object cores chased a heap pointer per core and per-field
//!   vectors would pay a checked index per field;
//! * one contiguous window arena of packed 8-byte entries (`Done`-run /
//!   `ReadyAt(cycle)` / `Pending(token)` in two tag bits), sliced per core
//!   as a fixed-capacity ring — the head-ready check is a shift-and-compare
//!   instead of a `VecDeque` front through an enum.
//!
//! Within an epoch (the CPU cycles of one simulation step), cores are
//! stepped in core-index order, so their LLC accesses drain as a
//! deterministically ordered batch: core *i*'s accesses observe exactly the
//! cache state left by cores *0..i* of the same cycle, like the per-object
//! loop they replace. This ordering is the engine's replay contract — the
//! differential suites pin that [`CoreEngine`] and the legacy
//! [`Core`](crate::Core) model produce bit-identical statistics for any
//! trace, stall pattern and cutoff.
//!
//! The legacy [`Core`](crate::Core) stays as the executable reference model:
//! `tick_core` below mirrors `Core::tick` statement by statement (and
//! `progress` mirrors `Core::progress`), and a differential proptest in this
//! module drives both over randomized traces, miss-completion schedules and
//! quota flips.

use crate::cache::{AccessOutcome, LastLevelCache, MissToken, RejectReason};
use crate::core::{CoreConfig, CoreProgress, CoreStats, StallInfo};
use crate::trace::CompiledTrace;
use bh_dram::{Cycle, PhysAddr, ThreadId};
use std::ops::Range;

/// Packed instruction-window entry: `payload << 2 | tag`.
///
/// * tag 0 — a run of `payload` already-complete instructions (the RLE `Done`
///   entry of the legacy window);
/// * tag 1 — an LLC hit whose data is ready at core cycle `payload`;
/// * tag 2 — an outstanding LLC miss with token `payload`.
///
/// Cycle values and miss tokens both fit comfortably in 62 bits (tokens are
/// a slot index plus a per-cache allocation serial), so the packing is
/// lossless; the ready check on a packed entry is a shift and a compare.
type PackedEntry = u64;

const TAG_DONE: u64 = 0;
const TAG_READY: u64 = 1;
const TAG_PENDING: u64 = 2;

#[inline]
fn pack(tag: u64, payload: u64) -> PackedEntry {
    debug_assert!(payload < (1 << 62));
    payload << 2 | tag
}

#[inline]
fn tag(e: PackedEntry) -> u64 {
    e & 3
}

#[inline]
fn payload(e: PackedEntry) -> u64 {
    e >> 2
}

/// Memoized outcome of a core's last rejected LLC access (the engine-side
/// mirror of the legacy core's `last_reject`): `(addr, uncached, stamp,
/// reason)`, see [`LastLevelCache::reject_memo_valid`].
type RejectMemo = (PhysAddr, bool, u64, RejectReason);

/// One core's complete hot replay state, kept as a single flat row so a
/// tick touches one bounds-checked location instead of one per field.
#[derive(Debug, Clone)]
struct Lane {
    /// Trace cursor (record index, kept strictly below the trace length).
    position: u32,
    /// Bubbles of the current record still to dispatch.
    bubbles_left: u32,
    /// Ring head index of the window (offset within the core's arena slice).
    win_head: u32,
    /// Number of ring entries (≤ window occupancy: `Done` runs coalesce).
    win_entries: u32,
    /// Instructions currently in the window (`Done` runs count their length).
    window_len: u32,
    /// True while the current record's memory access has not dispatched yet.
    access_pending: bool,
    /// True once the instruction budget has been retired.
    finished: bool,
    /// Hard-stall token: while `Some`, the core's window is full with this
    /// incomplete miss at its head and its ticks accrue as debt.
    stalled_on: Option<MissToken>,
    /// Deferred hard-stalled cycles, replayed in bulk on wake-up/settle.
    stall_debt: u64,
    /// Memoized rejected-access outcome (spinning-retry fast path).
    last_reject: Option<RejectMemo>,
    // --- statistics (the [`CoreStats`] fields, inline) ---
    retired_instructions: u64,
    cycles: u64,
    loads: u64,
    stores: u64,
    dispatch_stall_cycles: u64,
    retire_stall_cycles: u64,
}

/// The data-oriented front-end for all cores of a simulated system.
///
/// Indexing is by core: core `i` runs hardware thread `ThreadId(i)` and
/// replays `traces[i]` until `target_instructions` have retired, exactly
/// like a [`Core`](crate::Core) built per thread. Hard-stall bookkeeping
/// (the window-full-behind-a-miss fast path that the simulation kernel used
/// to track beside its `Vec<Core>`) is owned by the engine itself.
#[derive(Debug)]
pub struct CoreEngine {
    config: CoreConfig,
    traces: Vec<CompiledTrace>,
    target_instructions: u64,
    /// One hot-state row per core.
    lanes: Vec<Lane>,
    /// Window arena: `cores × window_size` packed entries; core `i` owns the
    /// slice `[i*window_size, (i+1)*window_size)` as a ring buffer.
    window: Vec<PackedEntry>,
}

/// Ring slot of entry `entry` of a lane's window slice. `win_head` is kept
/// `< window_size`, so the wrap is a compare-and-subtract, not a division
/// (this runs on every window touch of every core tick).
#[inline]
fn win_slot(lane: &Lane, window_size: u32, entry: u32) -> usize {
    let mut off = lane.win_head + entry;
    if off >= window_size {
        off -= window_size;
    }
    off as usize
}

/// Appends `n` complete instructions to the window, extending a trailing
/// `Done` run instead of growing the ring (the RLE that keeps bubble-heavy
/// traces from cycling one entry per instruction).
#[inline]
fn push_done(lane: &mut Lane, win: &mut [PackedEntry], window_size: u32, n: usize) {
    if lane.win_entries > 0 {
        let back = win_slot(lane, window_size, lane.win_entries - 1);
        let e = win[back];
        if tag(e) == TAG_DONE {
            win[back] = pack(TAG_DONE, payload(e) + n as u64);
            lane.window_len += n as u32;
            return;
        }
    }
    debug_assert!(lane.win_entries < window_size);
    let slot = win_slot(lane, window_size, lane.win_entries);
    win[slot] = pack(TAG_DONE, n as u64);
    lane.win_entries += 1;
    lane.window_len += n as u32;
}

impl CoreEngine {
    /// Builds the engine for one core per trace; core `i` runs
    /// `ThreadId(i)`.
    ///
    /// # Panics
    /// Panics if `traces` is empty or `target_instructions` is zero.
    pub fn new(config: CoreConfig, traces: Vec<CompiledTrace>, target_instructions: u64) -> Self {
        assert!(!traces.is_empty(), "the engine needs at least one core");
        assert!(target_instructions > 0, "the instruction budget must be positive");
        let n = traces.len();
        let lanes = traces
            .iter()
            .map(|t| Lane {
                position: 0,
                bubbles_left: t.entry(0).bubbles,
                win_head: 0,
                win_entries: 0,
                window_len: 0,
                access_pending: true,
                finished: false,
                stalled_on: None,
                stall_debt: 0,
                last_reject: None,
                retired_instructions: 0,
                cycles: 0,
                loads: 0,
                stores: 0,
                dispatch_stall_cycles: 0,
                retire_stall_cycles: 0,
            })
            .collect();
        CoreEngine {
            config,
            target_instructions,
            lanes,
            window: vec![0; n * config.window_size],
            traces,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.traces.len()
    }

    /// True once core `core` has retired its instruction budget.
    pub fn finished(&self, core: usize) -> bool {
        self.lanes[core].finished
    }

    /// Instructions retired by core `core` so far.
    pub fn retired_instructions(&self, core: usize) -> u64 {
        self.lanes[core].retired_instructions
    }

    /// Materialises core `core`'s statistics (gathered from its lane). Call
    /// [`CoreEngine::settle`] first to fold outstanding hard-stall debt in.
    pub fn stats(&self, core: usize) -> CoreStats {
        let lane = &self.lanes[core];
        CoreStats {
            retired_instructions: lane.retired_instructions,
            cycles: lane.cycles,
            loads: lane.loads,
            stores: lane.stores,
            dispatch_stall_cycles: lane.dispatch_stall_cycles,
            retire_stall_cycles: lane.retire_stall_cycles,
        }
    }

    /// Instructions per cycle achieved by core `core` so far.
    pub fn ipc(&self, core: usize) -> f64 {
        let lane = &self.lanes[core];
        if lane.cycles == 0 {
            0.0
        } else {
            lane.retired_instructions as f64 / lane.cycles as f64
        }
    }

    /// Folds every core's outstanding hard-stall debt into its counters
    /// (call before reading final statistics).
    pub fn settle(&mut self) {
        for lane in &mut self.lanes {
            let debt = std::mem::take(&mut lane.stall_debt);
            lane.cycles += debt;
            lane.retire_stall_cycles += debt;
        }
    }

    /// True while core `core` is hard-stalled on an incomplete miss (its
    /// deferred cycles replay when the miss completes). Exposed for tests.
    pub fn is_hard_stalled(&self, core: usize) -> bool {
        self.lanes[core].stalled_on.is_some()
    }

    /// Steps every core through the CPU cycles of one event epoch, in core
    /// index order within each cycle — the engine's deterministic Core→LLC
    /// batch order. Hard-stalled cores (window full behind an incomplete
    /// miss) are not stepped: their cycles accrue as debt and replay in bulk
    /// when their miss completes. The caller completes LLC fills *before*
    /// the epoch (so a completed miss is the only event that wakes a
    /// hard-stalled core) and drains the LLC's outgoing batch *after* it.
    pub fn tick_epoch(&mut self, cycles: Range<Cycle>, llc: &mut LastLevelCache) {
        let n = self.num_cores();
        for cpu_cycle in cycles {
            for core in 0..n {
                {
                    let lane = &mut self.lanes[core];
                    if lane.finished {
                        continue;
                    }
                    if let Some(token) = lane.stalled_on {
                        if !llc.is_completed(token) {
                            lane.stall_debt += 1;
                            continue;
                        }
                        let debt = std::mem::take(&mut lane.stall_debt);
                        lane.cycles += debt;
                        lane.retire_stall_cycles += debt;
                        lane.stalled_on = None;
                    }
                }
                self.tick_core(core, cpu_cycle, llc);
                // Re-derive the hard-stall token: window full with an
                // incomplete-looking miss at its head (the engine-side
                // mirror of `Core::window_full_on`).
                let ws = self.config.window_size as u32;
                let lane = &mut self.lanes[core];
                lane.stalled_on = if lane.window_len == ws && lane.win_entries > 0 {
                    let front =
                        self.window[self.config.window_size * core + lane.win_head as usize];
                    if tag(front) == TAG_PENDING {
                        Some(payload(front))
                    } else {
                        None
                    }
                } else {
                    None
                };
            }
        }
    }

    /// Advances one core by one cycle — the lane-based mirror of
    /// [`Core::tick`](crate::Core::tick), kept in lockstep with it statement
    /// by statement (the differential proptest below enforces this).
    fn tick_core(&mut self, core: usize, cycle: Cycle, llc: &mut LastLevelCache) {
        let CoreEngine { config, traces, target_instructions, lanes, window } = self;
        let ws = config.window_size as u32;
        let lane = &mut lanes[core];
        let win = &mut window[config.window_size * core..config.window_size * (core + 1)];
        let trace = &traces[core];
        let target = *target_instructions;

        lane.cycles += 1;

        // Retire in order (a `Done` run retires as many of its instructions
        // as the retire width and the instruction target allow).
        let mut retired = 0;
        while retired < config.retire_width {
            if lane.win_entries == 0 {
                break;
            }
            let front_slot = lane.win_head as usize;
            let e = win[front_slot];
            // Packed-entry ready check: `Done` runs are always ready,
            // `ReadyAt` compares the payload against the clock, `Pending`
            // asks the LLC's O(1) slot-token array.
            let run = match tag(e) {
                TAG_DONE => payload(e) as usize,
                TAG_READY if payload(e) <= cycle => 1,
                TAG_PENDING if llc.is_completed(payload(e)) => 1,
                t => {
                    if t == TAG_PENDING && retired == 0 {
                        lane.retire_stall_cycles += 1;
                    }
                    break;
                }
            };
            let budget =
                (config.retire_width - retired).min((target - lane.retired_instructions) as usize);
            let take = run.min(budget);
            if take == run {
                let head = lane.win_head + 1;
                lane.win_head = if head == ws { 0 } else { head };
                lane.win_entries -= 1;
            } else {
                win[front_slot] = pack(TAG_DONE, (run - take) as u64);
            }
            lane.window_len -= take as u32;
            lane.retired_instructions += take as u64;
            retired += take;
            if lane.retired_instructions >= target {
                lane.finished = true;
                return;
            }
        }

        // Dispatch up to `width` instructions into the window.
        let mut dispatched = 0;
        while dispatched < config.width && lane.window_len < ws {
            if lane.bubbles_left > 0 {
                // Dispatch the whole bubble run at once (bounded by the
                // dispatch width and the window space).
                let take = (lane.bubbles_left as usize)
                    .min(config.width - dispatched)
                    .min((ws - lane.window_len) as usize);
                lane.bubbles_left -= take as u32;
                push_done(lane, win, ws, take);
                dispatched += take;
                continue;
            }
            if !lane.access_pending {
                // The current record is fully dispatched; move on.
                advance_trace(lane, trace);
                continue;
            }
            let entry = trace.entries()[lane.position as usize];
            let thread = ThreadId(core);
            // Fast path for a spinning retry: while the LLC attests that the
            // rejection still holds, replay its counter effects without
            // re-walking the cache.
            if let Some((addr, uncached, stamp, reason)) = lane.last_reject {
                if addr == entry.addr
                    && uncached == entry.uncached
                    && llc.reject_memo_valid(thread, addr, reason, stamp)
                {
                    llc.absorb_rejected_probes(1, reason);
                    lane.dispatch_stall_cycles += 1;
                    break;
                }
            }
            let outcome = if entry.uncached {
                llc.access_bypass(thread, entry.addr, entry.is_write, cycle)
            } else {
                llc.access(thread, entry.addr, entry.is_write, cycle)
            };
            if !matches!(outcome, AccessOutcome::Rejected { .. }) {
                // The memo must not outlive one continuous rejection episode
                // (see `Core::tick` for the stale-revalidation hazard).
                lane.last_reject = None;
            }
            match outcome {
                AccessOutcome::Hit { ready_at } => {
                    if entry.is_write {
                        push_done(lane, win, ws, 1);
                        lane.stores += 1;
                    } else {
                        let slot = win_slot(lane, ws, lane.win_entries);
                        win[slot] = pack(TAG_READY, ready_at);
                        lane.win_entries += 1;
                        lane.window_len += 1;
                        lane.loads += 1;
                    }
                    lane.access_pending = false;
                    advance_trace(lane, trace);
                    dispatched += 1;
                }
                AccessOutcome::Miss { token, .. } => {
                    if entry.is_write {
                        push_done(lane, win, ws, 1);
                        lane.stores += 1;
                    } else {
                        let slot = win_slot(lane, ws, lane.win_entries);
                        win[slot] = pack(TAG_PENDING, token);
                        lane.win_entries += 1;
                        lane.window_len += 1;
                        lane.loads += 1;
                    }
                    lane.access_pending = false;
                    advance_trace(lane, trace);
                    dispatched += 1;
                }
                AccessOutcome::Rejected { reason } => {
                    // The LLC cannot take the access this cycle: stall.
                    lane.last_reject = Some((
                        entry.addr,
                        entry.uncached,
                        llc.reject_stamp(thread, reason),
                        reason,
                    ));
                    lane.dispatch_stall_cycles += 1;
                    break;
                }
            }
        }
    }

    /// Classifies what core `core`'s next tick (at CPU cycle `next_cycle`)
    /// would do, without mutating anything — the engine-side mirror of
    /// [`Core::progress`](crate::Core::progress), used by the event-driven
    /// kernel to find stall horizons. A hard-stalled core reports the same
    /// retire-stall classification the deferred ticks will replay.
    pub fn progress(&self, core: usize, llc: &LastLevelCache, next_cycle: Cycle) -> CoreProgress {
        let lane = &self.lanes[core];
        if lane.finished {
            return CoreProgress::Finished;
        }
        let ws = self.config.window_size as u32;
        // Would the retire stage make progress?
        let front = if lane.win_entries == 0 {
            None
        } else {
            Some(self.window[self.config.window_size * core + lane.win_head as usize])
        };
        let (retire_progress, wake_at, retire_stalled) = match front {
            Some(e) => match tag(e) {
                TAG_DONE => (true, None, false),
                TAG_READY => (payload(e) <= next_cycle, Some(payload(e)), false),
                _ => (llc.is_completed(payload(e)), None, true),
            },
            None => (false, None, false),
        };
        if retire_progress {
            return CoreProgress::Active;
        }
        // Would the dispatch stage make progress?
        let mut reject = None;
        if lane.window_len < ws {
            if lane.bubbles_left > 0 || !lane.access_pending {
                return CoreProgress::Active;
            }
            let entry = self.traces[core].entries()[lane.position as usize];
            let thread = ThreadId(core);
            if let Some((addr, uncached, stamp, reason)) = lane.last_reject {
                if addr == entry.addr
                    && uncached == entry.uncached
                    && llc.reject_memo_valid(thread, addr, reason, stamp)
                {
                    reject = Some(reason);
                    return CoreProgress::Stalled(StallInfo { wake_at, retire_stalled, reject });
                }
            }
            match llc.probe_reject(thread, entry.addr, entry.uncached) {
                None => return CoreProgress::Active,
                Some(reason) => reject = Some(reason),
            }
        }
        CoreProgress::Stalled(StallInfo { wake_at, retire_stalled, reject })
    }

    /// Replays `ticks` stalled cycles' counter increments for core `core` in
    /// bulk (the event-driven kernel's dead-cycle skip; see
    /// [`Core::absorb_stall_ticks`](crate::Core::absorb_stall_ticks)).
    ///
    /// Skipped cycles go straight into the counters — only *stepped* cycles
    /// of a hard-stalled core accrue as debt — exactly like the legacy
    /// front-end, so the two models agree cycle for cycle, not just in sum.
    pub fn absorb_stall_ticks(&mut self, core: usize, ticks: u64, stall: &StallInfo) {
        let lane = &mut self.lanes[core];
        lane.cycles += ticks;
        if stall.retire_stalled {
            lane.retire_stall_cycles += ticks;
        }
        if stall.reject.is_some() {
            lane.dispatch_stall_cycles += ticks;
        }
    }

    /// Batched progress classification for every core at once — the
    /// event-driven kernel's horizon scan. Returns `true` as soon as any
    /// core would be [`CoreProgress::Active`] (leaving `out` empty; the
    /// kernel steps the very next cycle and never reads the buffer in that
    /// case), otherwise fills `out` with every core's classification —
    /// bit-identical to calling [`CoreEngine::progress`] core by core.
    ///
    /// The common case on a throughput-bound system — some core's window
    /// head is a `Done` run or a hit whose data cycle has arrived — is
    /// answered by one pass over the gathered 8-byte head entries (AVX2 when
    /// the CPU has it, a scalar loop otherwise) without touching the LLC: a
    /// retire-ready head makes its core `Active` regardless of the dispatch
    /// stage. Only when no head is retire-ready does the per-core analysis
    /// (MSHR probes, reject-memo validation) run.
    pub fn progress_batch(
        &self,
        llc: &LastLevelCache,
        next_cycle: Cycle,
        out: &mut Vec<CoreProgress>,
    ) -> bool {
        out.clear();
        let n = self.num_cores();
        let ws = self.config.window_size;
        let mut base = 0;
        while base < n {
            let chunk = (n - base).min(HEAD_CHUNK);
            let mut heads = [HEAD_IDLE; HEAD_CHUNK];
            for (slot, head) in heads.iter_mut().enumerate().take(chunk) {
                let lane = &self.lanes[base + slot];
                if !lane.finished && lane.win_entries > 0 {
                    *head = self.window[ws * (base + slot) + lane.win_head as usize];
                }
            }
            if head_retire_ready_mask(&heads, next_cycle) != 0 {
                return true;
            }
            base += chunk;
        }
        for core in 0..n {
            let p = self.progress(core, llc, next_cycle);
            if matches!(p, CoreProgress::Active) {
                out.clear();
                return true;
            }
            out.push(p);
        }
        false
    }
}

/// Chunk width of the batched window-head scan: four packed 8-byte entries,
/// exactly one AVX2 vector.
const HEAD_CHUNK: usize = 4;

/// Sentinel head for finished or empty-window lanes. Its tag bits are `0b11`
/// — no valid entry tag — so the sentinel never reads as retire-ready.
const HEAD_IDLE: u64 = u64::MAX;

/// Bitmask (bit `i` = `heads[i]`) of gathered head entries that retire on a
/// tick at `next_cycle`: `Done` runs, and `ReadyAt` entries whose data cycle
/// has arrived. `Pending` heads need an MSHR probe and are never set here.
#[inline]
fn head_retire_ready_mask(heads: &[u64; HEAD_CHUNK], next_cycle: Cycle) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        // The AVX2 arm compares payloads as signed 64-bit lanes; payloads are
        // `entry >> 2 < 2^62`, so the clock must fit the same range (it
        // always does in practice — this is a defensive gate, not a limit).
        if next_cycle <= (i64::MAX >> 2) as u64 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability was verified at runtime on the line
            // above.
            return unsafe { head_retire_ready_mask_avx2(heads, next_cycle) };
        }
    }
    head_retire_ready_mask_scalar(heads, next_cycle)
}

fn head_retire_ready_mask_scalar(heads: &[u64; HEAD_CHUNK], next_cycle: Cycle) -> u32 {
    let mut mask = 0u32;
    for (i, &e) in heads.iter().enumerate() {
        let ready = match tag(e) {
            TAG_DONE => true,
            TAG_READY => payload(e) <= next_cycle,
            _ => false,
        };
        mask |= (ready as u32) << i;
    }
    mask
}

/// AVX2 arm of [`head_retire_ready_mask`]: tag extraction, both tag
/// compares and the payload-vs-clock compare run on all four packed heads at
/// once; the per-lane verdicts come back through the four `f64` sign bits.
///
/// # Safety
///
/// The caller must verify AVX2 support at runtime
/// (`is_x86_feature_detected!("avx2")`) before calling, and must pass
/// `next_cycle <= i64::MAX >> 2` so the signed 64-bit lane compare cannot
/// misread the payload-vs-clock ordering — both are checked by the sole
/// caller, [`head_retire_ready_mask`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn head_retire_ready_mask_avx2(heads: &[u64; HEAD_CHUNK], next_cycle: Cycle) -> u32 {
    use std::arch::x86_64::*;
    // SAFETY: `heads` is four contiguous `u64`s and `loadu` has no alignment
    // requirement.
    let entries = unsafe { _mm256_loadu_si256(heads.as_ptr() as *const __m256i) };
    let tags = _mm256_and_si256(entries, _mm256_set1_epi64x(0b11));
    let payloads = _mm256_srli_epi64::<2>(entries);
    let done = _mm256_cmpeq_epi64(tags, _mm256_set1_epi64x(TAG_DONE as i64));
    let ready_tag = _mm256_cmpeq_epi64(tags, _mm256_set1_epi64x(TAG_READY as i64));
    // `payload <= next_cycle` as `next_cycle + 1 > payload`; the caller
    // guarantees both sides are non-negative as signed 64-bit lanes.
    let arrived = _mm256_cmpgt_epi64(_mm256_set1_epi64x(next_cycle as i64 + 1), payloads);
    let retire = _mm256_or_si256(done, _mm256_and_si256(ready_tag, arrived));
    _mm256_movemask_pd(_mm256_castsi256_pd(retire)) as u32
}

/// Advances the lane to its next trace record (cyclic). `position` stays
/// strictly below the trace length, so record reads are direct slice
/// indexes (no cyclic modulo on the per-dispatch path).
#[inline]
fn advance_trace(lane: &mut Lane, trace: &CompiledTrace) {
    let mut next = lane.position as usize + 1;
    if next == trace.len() {
        next = 0;
    }
    lane.position = next as u32;
    lane.bubbles_left = trace.entries()[next].bubbles;
    lane.access_pending = true;
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::core::Core;
    use crate::trace::{Trace, TraceEntry};
    use proptest::prelude::*;

    /// The legacy per-object front-end, driven through the *shared*
    /// `tick_epoch_legacy`/`settle_legacy` drivers — the same code the
    /// simulator's `FrontEndKind::Legacy` path runs, so the contract this
    /// differential validates is the contract the simulator executes.
    struct LegacyFrontEnd {
        cores: Vec<Core>,
        stalled_on: Vec<Option<MissToken>>,
        stall_debt: Vec<u64>,
    }

    impl LegacyFrontEnd {
        fn new(config: CoreConfig, traces: &[Trace], target: u64) -> Self {
            let cores = traces
                .iter()
                .enumerate()
                .map(|(i, t)| Core::new(ThreadId(i), config, t.clone(), target))
                .collect::<Vec<_>>();
            let n = cores.len();
            LegacyFrontEnd { cores, stalled_on: vec![None; n], stall_debt: vec![0; n] }
        }

        fn tick_epoch(&mut self, cycles: Range<Cycle>, llc: &mut LastLevelCache) {
            crate::core::tick_epoch_legacy(
                &mut self.cores,
                &mut self.stalled_on,
                &mut self.stall_debt,
                cycles,
                llc,
            );
        }

        fn settle(&mut self) {
            crate::core::settle_legacy(&mut self.cores, &mut self.stall_debt);
        }
    }

    fn llc(mshrs: usize) -> LastLevelCache {
        LastLevelCache::new(CacheConfig { mshrs, ..CacheConfig::tiny_test() }, 4)
    }

    /// Converts one generated record list — per record: bubbles, a line from
    /// a small address space (so lines collide and merge), and the access
    /// kind — into a trace (the shim has no `prop_map`, so the conversion
    /// happens in the test body).
    fn trace_from(records: &[(u32, u64, u8)]) -> Trace {
        Trace::new(
            records
                .iter()
                .map(|&(bubbles, line, kind)| {
                    let addr = PhysAddr(line * 0x40);
                    match kind {
                        0 => TraceEntry::load(bubbles, addr),
                        1 => TraceEntry::store(bubbles, addr),
                        2 => TraceEntry::uncached_load(bubbles, addr),
                        _ => TraceEntry::load(bubbles * 3, addr),
                    }
                })
                .collect(),
        )
    }

    /// Drives both front-ends cycle by cycle with an identical miss
    /// completion schedule and identical mid-run quota flips, asserting
    /// equality of every observable after every epoch and after the final
    /// settle (the cutoff edge: the run ends while debt is outstanding).
    fn differential_run(
        traces: Vec<Trace>,
        target: u64,
        mshrs: usize,
        miss_latency: u64,
        quota_flips: Vec<(u64, usize, usize)>,
        max_cycles: u64,
        epoch: u64,
    ) {
        let config = CoreConfig { width: 4, window_size: 16, retire_width: 4 };
        let mut legacy = LegacyFrontEnd::new(config, &traces, target);
        let compiled = traces.iter().map(Trace::compile).collect();
        let mut engine = CoreEngine::new(config, compiled, target);
        let mut llc_a = llc(mshrs);
        let mut llc_b = llc(mshrs);

        let mut pending_a: Vec<(u64, MissToken)> = Vec::new();
        let mut pending_b: Vec<(u64, MissToken)> = Vec::new();
        let mut cycle = 0u64;
        while cycle < max_cycles {
            for &(at, thread, quota) in &quota_flips {
                if at == cycle {
                    llc_a.set_quota(ThreadId(thread), quota);
                    llc_b.set_quota(ThreadId(thread), quota);
                }
            }
            // Complete due fills before the core phase, like the kernel.
            pending_a.retain(|(ready, token)| {
                if cycle >= *ready {
                    llc_a.complete_miss(*token);
                    false
                } else {
                    true
                }
            });
            pending_b.retain(|(ready, token)| {
                if cycle >= *ready {
                    llc_b.complete_miss(*token);
                    false
                } else {
                    true
                }
            });
            let end = (cycle + epoch).min(max_cycles);
            legacy.tick_epoch(cycle..end, &mut llc_a);
            engine.tick_epoch(cycle..end, &mut llc_b);
            for out in llc_a.take_outgoing() {
                if let Some(token) = out.token {
                    pending_a.push((end + miss_latency, token));
                }
            }
            for out in llc_b.take_outgoing() {
                if let Some(token) = out.token {
                    pending_b.push((end + miss_latency, token));
                }
            }
            assert_eq!(llc_a.stats(), llc_b.stats(), "LLC stats diverged at cycle {cycle}");
            // The batched horizon scan must agree with the per-core scalar
            // classification at every epoch boundary (this covers the SIMD
            // head prefilter against live mid-run window states).
            let mut batch = Vec::new();
            let batch_active = engine.progress_batch(&llc_b, end, &mut batch);
            let mut scalar = Vec::new();
            let mut scalar_active = false;
            for i in 0..traces.len() {
                let p = engine.progress(i, &llc_b, end);
                if matches!(p, CoreProgress::Active) {
                    scalar_active = true;
                    break;
                }
                scalar.push(p);
            }
            assert_eq!(
                batch_active, scalar_active,
                "batched vs scalar Active verdict diverged at cycle {cycle}"
            );
            if !batch_active {
                assert_eq!(
                    batch, scalar,
                    "batched vs scalar classifications diverged at cycle {cycle}"
                );
            }
            for i in 0..traces.len() {
                assert_eq!(
                    legacy.cores[i].finished(),
                    engine.finished(i),
                    "finished flag diverged for core {i} at cycle {cycle}"
                );
                assert_eq!(
                    legacy.stalled_on[i].is_some(),
                    engine.is_hard_stalled(i),
                    "hard-stall state diverged for core {i} at cycle {cycle}"
                );
            }
            if (0..traces.len()).all(|i| engine.finished(i)) {
                break;
            }
            cycle = end;
        }
        // Cutoff edge: settle outstanding hard-stall debt on both sides and
        // compare the final statistics bit for bit.
        legacy.settle();
        engine.settle();
        for i in 0..traces.len() {
            assert_eq!(
                legacy.cores[i].stats(),
                &engine.stats(i),
                "final stats diverged for core {i}"
            );
            assert_eq!(legacy.cores[i].ipc(), engine.ipc(i));
            assert_eq!(legacy.cores[i].retired_instructions(), engine.retired_instructions(i));
        }
    }

    /// The SIMD and scalar arms of the head-ready mask agree on every tag ×
    /// payload shape, including the `HEAD_IDLE` sentinel and payloads right
    /// at the clock boundary. (On machines without AVX2 both calls take the
    /// scalar arm and the test degenerates to a tautology — the x86 CI
    /// runners exercise the interesting half.)
    #[test]
    fn head_mask_arms_agree() {
        let interesting = [
            HEAD_IDLE,
            pack(TAG_DONE, 0),
            pack(TAG_DONE, 7),
            pack(TAG_READY, 99),
            pack(TAG_READY, 100),
            pack(TAG_READY, 101),
            pack(TAG_PENDING, 5),
            pack(TAG_PENDING, 1 << 40),
        ];
        for &a in &interesting {
            for &b in &interesting {
                for &c in &interesting {
                    for &d in &interesting {
                        let heads = [a, b, c, d];
                        for next_cycle in [0u64, 99, 100, 1 << 40] {
                            assert_eq!(
                                head_retire_ready_mask(&heads, next_cycle),
                                head_retire_ready_mask_scalar(&heads, next_cycle),
                                "mask arms diverged for {heads:?} at {next_cycle}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn engine_matches_core_on_a_memory_bound_quad() {
        let traces: Vec<Trace> = (0..4)
            .map(|c| {
                Trace::new(
                    (0..32).map(|i| TraceEntry::load(2, PhysAddr((c * 64 + i) * 0x40))).collect(),
                )
            })
            .collect();
        differential_run(traces, 3_000, 4, 37, vec![(500, 1, 1), (2_500, 1, 4)], 60_000, 2);
    }

    #[test]
    fn engine_matches_core_under_hard_stall_and_cutoff() {
        // Never-completing misses: every core hard-stalls, and the run ends
        // at the cutoff with debt outstanding on both sides.
        let traces: Vec<Trace> = (0..2)
            .map(|c| {
                Trace::new(
                    (0..16).map(|i| TraceEntry::load(1, PhysAddr((c * 64 + i) * 0x1000))).collect(),
                )
            })
            .collect();
        differential_run(traces, 10_000, 2, 1 << 40, vec![], 5_000, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Randomized traces × stall patterns: the SoA engine and the legacy
        /// per-object cores must be bit-identical, including the hard-stall
        /// debt replay and the settle-at-cutoff edge.
        #[test]
        fn engine_is_bit_identical_to_core(
            raw_traces in proptest::collection::vec(
                proptest::collection::vec((0u32..6, 0u64..48, 0u8..4), 1..12),
                2..5,
            ),
            target in 200u64..2_000,
            mshrs in 1usize..5,
            miss_latency in 1u64..400,
            epoch in 1u64..4,
            quota in 0usize..3,
            flip_at in 50u64..1_000,
        ) {
            let traces: Vec<Trace> = raw_traces.iter().map(|r| trace_from(r)).collect();
            let quota_flips = vec![
                (flip_at, 0usize, quota),
                (flip_at.saturating_mul(3), 0usize, 16),
            ];
            differential_run(
                traces, target, mshrs, miss_latency, quota_flips, 40_000, epoch,
            );
        }
    }
}
