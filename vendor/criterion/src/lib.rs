//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the API subset its four benches use: `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size`/`finish`), `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's full statistical
//! machinery it runs a calibrated warm-up to pick an iteration count, times
//! a configurable number of samples, and prints the median ns/iteration —
//! enough to track hot-path regressions between PRs with stable numbers.
//!
//! Environment knobs: `BH_BENCH_SAMPLES` (default 10) and
//! `BH_BENCH_TARGET_MS` (per-sample time budget, default 50).

// Vendored benchmark harness: timing is its purpose.
#![allow(clippy::disallowed_methods)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `Bencher::iter_batched` amortises setup cost; mirrored from
/// criterion, where it controls batch sizing. The shim only uses it to pick
/// how many routine calls share one timing window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output: many routine calls per batch.
    SmallInput,
    /// Large setup output: one routine call per batch.
    LargeInput,
    /// One setup per routine call, timed individually.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over freshly `setup`-produced inputs, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn samples_from_env(default: usize) -> usize {
    std::env::var("BH_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn target_ms_from_env() -> u64 {
    std::env::var("BH_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50)
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    // Calibration pass: find an iteration count that fills the per-sample
    // time budget, starting from a single iteration.
    let target = Duration::from_millis(target_ms_from_env());
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            100
        } else {
            (target.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 100) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!("{id:<44} median {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {iters} iters x {samples} samples)");
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
    /// When true (under `cargo test` or `--test`), run each routine once
    /// instead of measuring, so benches double as smoke tests.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { samples: samples_from_env(10), test_mode }
    }
}

impl Criterion {
    /// Runs (or, in test mode, smoke-runs) one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{id}: ok (test mode)");
        } else {
            run_one(id, self.samples, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), samples: None }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group (id is prefixed with the group
    /// name, as in criterion's `group/function` convention).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("{full}: ok (test mode)");
        } else {
            let samples = self.samples.unwrap_or(self.parent.samples);
            run_one(&full, samples, &mut f);
        }
        self
    }

    /// Ends the group (kept for API compatibility; no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
