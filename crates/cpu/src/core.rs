//! Trace-driven out-of-order core model.
//!
//! Matches the processor of Table 1: a 4-wide core with a 128-entry
//! instruction window. Non-memory instructions retire one cycle after
//! dispatch; loads occupy the window until the LLC (and, on a miss, DRAM)
//! returns their data; stores retire without waiting. Instructions retire
//! in order, so a long-latency load at the head of the window eventually
//! stalls the core — which is how DRAM contention (and BreakHammer's MSHR
//! throttling) translates into reduced instructions-per-cycle.
//!
//! [`Core`] is the per-object **reference model** of this behaviour: the
//! simulator's default replay path is the data-oriented
//! [`CoreEngine`](crate::CoreEngine), whose `tick_core` mirrors
//! [`Core::tick`] statement by statement and is differentially tested
//! against it (a proptest in `crate::engine` and the front-end differential
//! suite at the workspace root). Behavioural changes must be made to *both*
//! models — the differentials will catch a one-sided edit.

use crate::cache::{AccessOutcome, LastLevelCache, MissToken, RejectReason};
use crate::trace::Trace;
use bh_dram::{Cycle, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Description of a core that cannot make architectural progress, produced by
/// [`Core::progress`]. While a core is stalled, each [`Core::tick`] is a pure
/// counter increment; the event-driven simulation kernel uses this analysis
/// to skip those dead cycles and replay the counters in bulk via
/// [`Core::absorb_stall_ticks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInfo {
    /// Earliest CPU cycle at which the core can make progress on its own
    /// (the head of the window is an LLC hit completing at this cycle).
    /// `None` means only an external event — an LLC fill completing or a
    /// BreakHammer quota change — can wake the core.
    pub wake_at: Option<Cycle>,
    /// The window head is an outstanding miss: every stalled tick counts as a
    /// retire-stall cycle.
    pub retire_stalled: bool,
    /// The core retries a rejected LLC access every tick (MSHRs full or the
    /// thread is over its BreakHammer quota): every stalled tick counts as a
    /// dispatch-stall cycle and performs one rejected LLC probe.
    pub reject: Option<RejectReason>,
}

/// Whether a core can make progress at its next tick (see [`Core::progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreProgress {
    /// The instruction budget has been retired; the core no longer ticks.
    Finished,
    /// The next tick retires or dispatches something: the core must be ticked
    /// every cycle.
    Active,
    /// The next tick is a pure counter increment; see [`StallInfo`] for when
    /// the core wakes and which counters each skipped tick accrues.
    Stalled(StallInfo),
}

/// Core configuration (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions dispatched per cycle.
    pub width: usize,
    /// Instruction-window (ROB) capacity.
    pub window_size: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
}

impl CoreConfig {
    /// The paper's core: 4-wide issue, 128-entry instruction window.
    pub fn paper_table1() -> Self {
        CoreConfig { width: 4, window_size: 128, retire_width: 4 }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper_table1()
    }
}

/// Per-core statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired_instructions: u64,
    /// Core cycles elapsed (while the core was still running).
    pub cycles: u64,
    /// Loads issued to the LLC.
    pub loads: u64,
    /// Stores issued to the LLC.
    pub stores: u64,
    /// Cycles in which dispatch was blocked because the LLC rejected an
    /// access (MSHRs full or quota exceeded).
    pub dispatch_stall_cycles: u64,
    /// Cycles in which nothing retired because the head load was pending.
    pub retire_stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instructions as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowEntry {
    /// A run of `n` consecutive already-complete instructions (non-memory
    /// instructions and stores). Run-length encoding keeps the window deque
    /// short: bubble-heavy traces would otherwise push and pop one entry per
    /// instruction on the simulator's per-cycle path.
    Done(u32),
    /// An LLC hit that completes at the given core cycle.
    ReadyAt(Cycle),
    /// An outstanding LLC miss.
    Pending(MissToken),
}

/// A trace-driven core for one hardware thread.
#[derive(Debug, Clone)]
pub struct Core {
    thread: ThreadId,
    config: CoreConfig,
    trace: Trace,
    position: usize,
    bubbles_left: u32,
    /// The memory access of the current trace record, once its bubbles have
    /// been dispatched.
    access_pending: bool,
    window: VecDeque<WindowEntry>,
    /// Instructions currently in the window (`Done` runs count their length),
    /// bounded by `config.window_size`.
    window_len: usize,
    target_instructions: u64,
    finished: bool,
    /// Memoized outcome of the last rejected LLC access:
    /// `(addr, uncached, llc_version, reason)`. While the LLC version is
    /// unchanged and the pending access is the same, a retry is guaranteed to
    /// be rejected for the same reason, so the retry's counter effects are
    /// replayed without re-walking the cache.
    last_reject: Option<(bh_dram::PhysAddr, bool, u64, crate::cache::RejectReason)>,
    stats: CoreStats,
}

impl Core {
    /// Creates a core for `thread` replaying `trace` until
    /// `target_instructions` have retired.
    ///
    /// # Panics
    /// Panics if `target_instructions` is zero.
    pub fn new(
        thread: ThreadId,
        config: CoreConfig,
        trace: Trace,
        target_instructions: u64,
    ) -> Self {
        assert!(target_instructions > 0, "the instruction budget must be positive");
        let bubbles_left = trace.entry(0).bubbles;
        Core {
            thread,
            config,
            trace,
            position: 0,
            bubbles_left,
            access_pending: true,
            window: VecDeque::with_capacity(config.window_size),
            window_len: 0,
            target_instructions,
            finished: false,
            last_reject: None,
            stats: CoreStats::default(),
        }
    }

    /// The hardware thread this core runs.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Core statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// True once the instruction budget has been retired.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Instructions retired so far.
    pub fn retired_instructions(&self) -> u64 {
        self.stats.retired_instructions
    }

    /// Instructions per cycle achieved so far.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    fn advance_trace(&mut self) {
        self.position = (self.position + 1) % self.trace.len();
        self.bubbles_left = self.trace.entry(self.position).bubbles;
        self.access_pending = true;
    }

    /// If the core is hard-stalled — instruction window full with an
    /// incomplete-looking miss at its head — returns that head's token. Until
    /// the token completes, every tick of this core is exactly one retire
    /// stall (no dispatch can run, no self-state can change), so the
    /// simulator may skip ticking it and replay the cycles in bulk via
    /// [`Core::absorb_hard_stall`]. The caller checks the token's completion.
    pub fn window_full_on(&self) -> Option<MissToken> {
        if self.window_len < self.config.window_size {
            return None;
        }
        match self.window.front() {
            Some(WindowEntry::Pending(token)) => Some(*token),
            _ => None,
        }
    }

    /// Replays `ticks` hard-stalled cycles (see [`Core::window_full_on`]):
    /// the per-cycle kernel would have counted each as one core cycle and one
    /// retire-stall cycle.
    pub fn absorb_hard_stall(&mut self, ticks: u64) {
        self.stats.cycles += ticks;
        self.stats.retire_stall_cycles += ticks;
    }

    /// Appends `n` complete instructions to the window, extending a trailing
    /// `Done` run instead of growing the deque.
    fn push_done(&mut self, n: usize) {
        if let Some(WindowEntry::Done(run)) = self.window.back_mut() {
            *run += n as u32;
        } else {
            self.window.push_back(WindowEntry::Done(n as u32));
        }
        self.window_len += n;
    }

    /// Classifies what the core's next tick (at CPU cycle `next_cycle`) would
    /// do, without mutating anything: make progress, stall on the window
    /// head, or spin on a rejected LLC access. The analysis mirrors
    /// [`Core::tick`] exactly and stays valid until an external event (an LLC
    /// fill completion or a quota change) occurs, because a stalled core
    /// cannot change its own inputs.
    pub fn progress(&self, llc: &LastLevelCache, next_cycle: Cycle) -> CoreProgress {
        if self.finished {
            return CoreProgress::Finished;
        }
        // Would the retire stage make progress?
        let (retire_progress, wake_at, retire_stalled) = match self.window.front() {
            Some(WindowEntry::Done(_)) => (true, None, false),
            Some(WindowEntry::ReadyAt(t)) => (*t <= next_cycle, Some(*t), false),
            Some(WindowEntry::Pending(token)) => (llc.is_completed(*token), None, true),
            None => (false, None, false),
        };
        if retire_progress {
            return CoreProgress::Active;
        }
        // Would the dispatch stage make progress?
        let mut reject = None;
        if self.window_len < self.config.window_size {
            if self.bubbles_left > 0 || !self.access_pending {
                return CoreProgress::Active;
            }
            let entry = self.trace.entry(self.position);
            if let Some((addr, uncached, stamp, reason)) = self.last_reject {
                if addr == entry.addr
                    && uncached == entry.uncached
                    && llc.reject_memo_valid(self.thread, addr, reason, stamp)
                {
                    reject = Some(reason);
                    return CoreProgress::Stalled(StallInfo { wake_at, retire_stalled, reject });
                }
            }
            match llc.probe_reject(self.thread, entry.addr, entry.uncached) {
                None => return CoreProgress::Active,
                Some(reason) => reject = Some(reason),
            }
        }
        CoreProgress::Stalled(StallInfo { wake_at, retire_stalled, reject })
    }

    /// Replays `ticks` stalled cycles' counter increments in bulk (the
    /// event-driven kernel's counterpart of calling [`Core::tick`] that many
    /// times while [`Core::progress`] reports [`CoreProgress::Stalled`]).
    /// The caller accounts for the rejected LLC probes separately via
    /// [`LastLevelCache::absorb_rejected_probes`].
    pub fn absorb_stall_ticks(&mut self, ticks: u64, stall: &StallInfo) {
        self.stats.cycles += ticks;
        if stall.retire_stalled {
            self.stats.retire_stall_cycles += ticks;
        }
        if stall.reject.is_some() {
            self.stats.dispatch_stall_cycles += ticks;
        }
    }

    /// Advances the core by one cycle, retiring and dispatching instructions.
    pub fn tick(&mut self, cycle: Cycle, llc: &mut LastLevelCache) {
        if self.finished {
            return;
        }
        self.stats.cycles += 1;

        // Retire in order (a `Done` run retires as many of its instructions
        // as the retire width and the instruction target allow).
        let mut retired = 0;
        while retired < self.config.retire_width {
            let run = match self.window.front() {
                Some(WindowEntry::Done(n)) => *n as usize,
                Some(WindowEntry::ReadyAt(t)) if cycle >= *t => 1,
                Some(WindowEntry::Pending(token)) if llc.is_completed(*token) => 1,
                other => {
                    if matches!(other, Some(WindowEntry::Pending(_))) && retired == 0 {
                        self.stats.retire_stall_cycles += 1;
                    }
                    break;
                }
            };
            let budget = (self.config.retire_width - retired)
                .min((self.target_instructions - self.stats.retired_instructions) as usize);
            let take = run.min(budget);
            if take == run {
                self.window.pop_front();
            } else if let Some(WindowEntry::Done(n)) = self.window.front_mut() {
                *n -= take as u32;
            }
            self.window_len -= take;
            self.stats.retired_instructions += take as u64;
            retired += take;
            if self.stats.retired_instructions >= self.target_instructions {
                self.finished = true;
                return;
            }
        }

        // Dispatch up to `width` instructions into the window.
        let mut dispatched = 0;
        while dispatched < self.config.width && self.window_len < self.config.window_size {
            if self.bubbles_left > 0 {
                // Dispatch the whole bubble run at once (bounded by the
                // dispatch width and the window space), coalescing it into
                // the window's trailing `Done` run.
                let take = (self.bubbles_left as usize)
                    .min(self.config.width - dispatched)
                    .min(self.config.window_size - self.window_len);
                self.bubbles_left -= take as u32;
                self.push_done(take);
                dispatched += take;
                continue;
            }
            if !self.access_pending {
                // The current record is fully dispatched; move on.
                self.advance_trace();
                continue;
            }
            let entry = self.trace.entry(self.position);
            // Fast path for a spinning retry: while the LLC attests that the
            // rejection still holds, replay its counter effects without
            // re-walking the cache.
            if let Some((addr, uncached, stamp, reason)) = self.last_reject {
                if addr == entry.addr
                    && uncached == entry.uncached
                    && llc.reject_memo_valid(self.thread, addr, reason, stamp)
                {
                    llc.absorb_rejected_probes(1, reason);
                    self.stats.dispatch_stall_cycles += 1;
                    break;
                }
            }
            let outcome = if entry.uncached {
                llc.access_bypass(self.thread, entry.addr, entry.is_write, cycle)
            } else {
                llc.access(self.thread, entry.addr, entry.is_write, cycle)
            };
            if !matches!(outcome, AccessOutcome::Rejected { .. }) {
                // The memo must not outlive the rejected episode: a stale
                // entry could re-validate much later (same trace address, no
                // thread-local events in between) even though the line has
                // since been installed by another thread's fill. Clearing on
                // every successful dispatch confines the memo to one
                // continuous rejection, where the stamp's invalidation
                // conditions are exhaustive.
                self.last_reject = None;
            }
            match outcome {
                AccessOutcome::Hit { ready_at } => {
                    if entry.is_write {
                        self.push_done(1);
                    } else {
                        self.window.push_back(WindowEntry::ReadyAt(ready_at));
                        self.window_len += 1;
                    }
                    if entry.is_write {
                        self.stats.stores += 1;
                    } else {
                        self.stats.loads += 1;
                    }
                    self.access_pending = false;
                    self.advance_trace();
                    dispatched += 1;
                }
                AccessOutcome::Miss { token, .. } => {
                    if entry.is_write {
                        self.push_done(1);
                    } else {
                        self.window.push_back(WindowEntry::Pending(token));
                        self.window_len += 1;
                    }
                    if entry.is_write {
                        self.stats.stores += 1;
                    } else {
                        self.stats.loads += 1;
                    }
                    self.access_pending = false;
                    self.advance_trace();
                    dispatched += 1;
                }
                AccessOutcome::Rejected { reason } => {
                    // The LLC cannot take the access this cycle (MSHRs full or
                    // the thread is over its BreakHammer quota): stall.
                    self.last_reject = Some((
                        entry.addr,
                        entry.uncached,
                        llc.reject_stamp(self.thread, reason),
                        reason,
                    ));
                    self.stats.dispatch_stall_cycles += 1;
                    break;
                }
            }
        }
    }
}

/// Drives legacy per-object cores through the CPU cycles of one event
/// epoch, exactly as the simulation kernel drives its reference front-end:
/// cores are ticked in index order within each cycle, and a hard-stalled
/// core (window full behind an incomplete miss, `stalled_on[i]` set) is not
/// ticked — its cycles accrue as debt in `stall_debt[i]` and replay via
/// [`Core::absorb_hard_stall`] when the miss completes.
///
/// This is *the* legacy epoch contract: the simulator's `FrontEndKind::
/// Legacy` path and the engine's differential tests both call it, so the
/// reference behaviour the differentials validate cannot drift from the
/// reference behaviour the simulator runs.
pub fn tick_epoch_legacy(
    cores: &mut [Core],
    stalled_on: &mut [Option<MissToken>],
    stall_debt: &mut [u64],
    cycles: std::ops::Range<Cycle>,
    llc: &mut LastLevelCache,
) {
    for cpu_cycle in cycles {
        for (i, core) in cores.iter_mut().enumerate() {
            if core.finished() {
                continue;
            }
            if let Some(token) = stalled_on[i] {
                if !llc.is_completed(token) {
                    stall_debt[i] += 1;
                    continue;
                }
                core.absorb_hard_stall(std::mem::take(&mut stall_debt[i]));
                stalled_on[i] = None;
            }
            core.tick(cpu_cycle, llc);
            stalled_on[i] = core.window_full_on();
        }
    }
}

/// Folds outstanding hard-stall debt into the legacy cores' counters (the
/// end-of-run counterpart of [`tick_epoch_legacy`]; see
/// [`Core::absorb_hard_stall`]).
pub fn settle_legacy(cores: &mut [Core], stall_debt: &mut [u64]) {
    for (i, core) in cores.iter_mut().enumerate() {
        let debt = std::mem::take(&mut stall_debt[i]);
        if debt > 0 {
            core.absorb_hard_stall(debt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::trace::TraceEntry;
    use bh_dram::PhysAddr;

    fn compute_trace() -> Trace {
        // Mostly bubbles: nearly no memory traffic.
        Trace::new(vec![TraceEntry::load(40, PhysAddr(0x100))])
    }

    fn memory_trace() -> Trace {
        // One load to a new line every few instructions.
        Trace::new((0..64).map(|i| TraceEntry::load(3, PhysAddr(i * 0x10000))).collect())
    }

    fn llc() -> LastLevelCache {
        LastLevelCache::new(CacheConfig::tiny_test(), 2)
    }

    /// Runs the core, completing every outstanding miss after `miss_latency`
    /// cycles, and returns the cycle count needed to finish.
    fn run_with_memory_latency(
        core: &mut Core,
        llc: &mut LastLevelCache,
        miss_latency: u64,
    ) -> u64 {
        let mut pending: Vec<(u64, MissToken)> = Vec::new();
        let mut cycle = 0u64;
        while !core.finished() && cycle < 2_000_000 {
            core.tick(cycle, llc);
            for out in llc.take_outgoing() {
                if let Some(token) = out.token {
                    pending.push((cycle + miss_latency, token));
                }
            }
            pending.retain(|(ready, token)| {
                if cycle >= *ready {
                    llc.complete_miss(*token);
                    false
                } else {
                    true
                }
            });
            cycle += 1;
        }
        assert!(core.finished(), "core did not finish");
        cycle
    }

    #[test]
    fn compute_bound_core_approaches_full_width_ipc() {
        let mut core = Core::new(ThreadId(0), CoreConfig::paper_table1(), compute_trace(), 50_000);
        let mut llc = llc();
        run_with_memory_latency(&mut core, &mut llc, 10);
        let ipc = core.ipc();
        assert!(ipc > 3.0, "compute-bound IPC should approach the 4-wide limit, got {ipc}");
        assert_eq!(core.retired_instructions(), 50_000);
    }

    #[test]
    fn memory_bound_core_is_sensitive_to_memory_latency() {
        let trace = memory_trace();
        let mut fast_core =
            Core::new(ThreadId(0), CoreConfig::paper_table1(), trace.clone(), 20_000);
        let mut slow_core = Core::new(ThreadId(0), CoreConfig::paper_table1(), trace, 20_000);
        let mut llc_fast = llc();
        let mut llc_slow = llc();
        let fast_cycles = run_with_memory_latency(&mut fast_core, &mut llc_fast, 20);
        let slow_cycles = run_with_memory_latency(&mut slow_core, &mut llc_slow, 400);
        assert!(
            slow_cycles > fast_cycles * 2,
            "400-cycle memory ({slow_cycles}) should be much slower than 20-cycle ({fast_cycles})"
        );
        assert!(slow_core.ipc() < fast_core.ipc());
    }

    #[test]
    fn window_limits_outstanding_memory_parallelism() {
        // With a 128-entry window and 4 bubbles per load, at most ~32 loads
        // can be in flight; with never-completing misses the core must stall
        // rather than run ahead.
        let mut core = Core::new(ThreadId(0), CoreConfig::paper_table1(), memory_trace(), 10_000);
        let mut cache =
            LastLevelCache::new(CacheConfig { mshrs: 64, ..CacheConfig::tiny_test() }, 1);
        for cycle in 0..10_000u64 {
            core.tick(cycle, &mut cache);
        }
        assert!(!core.finished());
        assert!(core.retired_instructions() < 200);
        assert!(core.stats().retire_stall_cycles > 5_000);
    }

    #[test]
    fn quota_throttling_slows_a_memory_bound_core() {
        let trace = memory_trace();
        let mut free_core =
            Core::new(ThreadId(0), CoreConfig::paper_table1(), trace.clone(), 8_000);
        let mut throttled_core = Core::new(ThreadId(0), CoreConfig::paper_table1(), trace, 8_000);
        let config = CacheConfig { mshrs: 16, ..CacheConfig::tiny_test() };
        let mut free_llc = LastLevelCache::new(config.clone(), 1);
        let mut throttled_llc = LastLevelCache::new(config, 1);
        throttled_llc.set_quota(ThreadId(0), 1);
        let free_cycles = run_with_memory_latency(&mut free_core, &mut free_llc, 200);
        let throttled_cycles =
            run_with_memory_latency(&mut throttled_core, &mut throttled_llc, 200);
        assert!(
            throttled_cycles > free_cycles * 2,
            "quota of 1 MSHR ({throttled_cycles}) should be much slower than 16 ({free_cycles})"
        );
        assert!(throttled_llc.stats().quota_rejections > 0);
        assert!(
            throttled_core.stats().dispatch_stall_cycles > free_core.stats().dispatch_stall_cycles
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let trace = Trace::new(vec![TraceEntry::store(1, PhysAddr(0x5000))]);
        let mut core = Core::new(ThreadId(0), CoreConfig::paper_table1(), trace, 5_000);
        let mut cache = llc();
        // Never complete any miss: stores must still retire.
        let mut cycle = 0;
        while !core.finished() && cycle < 200_000 {
            core.tick(cycle, &mut cache);
            let _ = cache.take_outgoing();
            cycle += 1;
        }
        assert!(core.finished(), "store-only trace must finish without memory responses");
        assert!(core.stats().stores > 0);
    }

    #[test]
    fn ipc_is_between_zero_and_width() {
        let mut core = Core::new(ThreadId(0), CoreConfig::paper_table1(), memory_trace(), 5_000);
        let mut cache = llc();
        run_with_memory_latency(&mut core, &mut cache, 50);
        let ipc = core.ipc();
        assert!(ipc > 0.0 && ipc <= 4.0, "ipc {ipc}");
        assert_eq!(core.thread(), ThreadId(0));
    }

    #[test]
    #[should_panic(expected = "instruction budget")]
    fn zero_budget_rejected() {
        let _ = Core::new(ThreadId(0), CoreConfig::default(), compute_trace(), 0);
    }
}
