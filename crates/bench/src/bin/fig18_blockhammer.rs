//! Figure 18: BreakHammer-paired mechanisms compared against BlockHammer, the
//! state-of-the-art throttling-based RowHammer mitigation, with an attacker
//! present, as N_RH decreases — normalized to a baseline with no mitigation.

use bh_bench::{
    geomean_speedup, maybe_print_config, paper_config, print_results, select, Campaign, Scale,
};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let baseline_cfg = paper_config(MechanismKind::None, scale.nrh_values[0], false, &scale);
    let baseline = campaign.run(&baseline_cfg, true);
    let baseline_ws = geomean_speedup(&baseline.iter().collect::<Vec<_>>());

    // The eight mechanisms paired with BreakHammer…
    let mechanisms = MechanismKind::paper_mechanisms();
    let mut records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[true], /*attack=*/ true);
    // …and BlockHammer on its own (it is itself a throttling mitigation).
    records.extend(campaign.run_matrix(
        &[MechanismKind::BlockHammer],
        &scale.nrh_values,
        &[false],
        true,
    ));

    let mut table = Table::new(["nrh", "config", "normalized_weighted_speedup"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            let sel = select(&records, mech, nrh, true);
            if !sel.is_empty() {
                table.push_row([
                    nrh.to_string(),
                    format!("{mech}+BH"),
                    fmt3(geomean_speedup(&sel) / baseline_ws),
                ]);
            }
        }
        let bl = select(&records, MechanismKind::BlockHammer, nrh, false);
        if !bl.is_empty() {
            table.push_row([
                nrh.to_string(),
                "BlockHammer".to_string(),
                fmt3(geomean_speedup(&bl) / baseline_ws),
            ]);
        }
    }
    print_results(
        "Figure 18: BreakHammer-paired mechanisms vs. BlockHammer with an attacker present (normalized to no mitigation)",
        &table,
    );
}
