//! E1 fixture registry: registers BH_FOO (and only BH_FOO).

pub struct Knob {
    pub name: &'static str,
    pub summary: &'static str,
    pub default: &'static str,
}

pub const KNOBS: &[Knob] = &[Knob {
    name: "BH_FOO",
    summary: "a registered fixture knob",
    default: "unset",
}];
