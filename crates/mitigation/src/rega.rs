//! REGA: Refresh-Generating Activations [Marazzi et al., S&P 2023].
//!
//! REGA modifies the DRAM chip itself: a second row buffer per subarray lets
//! the device refresh potential victim rows *in parallel* with serving normal
//! activations, at a rate of one protective refresh every `REGA_T`
//! activations. Because the refreshes happen inside the chip, REGA performs
//! no discrete memory-controller-visible preventive action; its cost instead
//! appears as inflated DRAM timing parameters (longer precharge / row cycle),
//! growing as the protected RowHammer threshold shrinks. The paper therefore
//! evaluates REGA "based on its impact on DRAM timing constraints" and
//! excludes it from the preventive-action-count figure (Fig. 10, footnote 10).
//!
//! Score attribution for BreakHammer is also special-cased (§4.1): a thread's
//! RowHammer-preventive score is incremented by one for every `REGA_T`
//! activations the thread performs.

use crate::action::{ActionSink, ActivationEvent, ScoreAttribution};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::TimingAdjustment;

/// The REGA mechanism.
#[derive(Debug)]
pub struct Rega {
    rega_t: u64,
    adjustment: TimingAdjustment,
    activations: u64,
}

impl Rega {
    /// Creates REGA configured to protect RowHammer threshold `nrh`.
    ///
    /// `REGA_T` (activations per refresh-generating activation) is set to
    /// `N_RH / 4`; the timing inflation grows inversely with `N_RH`,
    /// capturing the V=1..4 configurations of the REGA paper.
    ///
    /// # Panics
    /// Panics if `nrh < 4`.
    pub fn new(nrh: u64) -> Self {
        assert!(nrh >= 4, "N_RH must be at least 4");
        let rega_t = (nrh / 4).max(1);
        // Timing inflation model: protecting lower thresholds requires more
        // refresh-generating activations per row cycle, which lengthens the
        // precharge phase. ~0 extra cycles at N_RH >= 2K, growing to ~32
        // extra cycles (≈13 ns at DDR5-4800) at N_RH = 64.
        let extra = (2048 / nrh).min(32);
        let adjustment =
            TimingAdjustment { extra_t_rp: extra, extra_t_ras: extra / 2, extra_t_rfc: 0 };
        Rega { rega_t, adjustment, activations: 0 }
    }

    /// The `REGA_T` parameter (activations per protective refresh).
    pub fn rega_t(&self) -> u64 {
        self.rega_t
    }

    /// Total activations observed (for statistics).
    pub fn activations(&self) -> u64 {
        self.activations
    }
}

impl TriggerMechanism for Rega {
    fn name(&self) -> &'static str {
        "REGA"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Rega
    }

    fn on_activation(&mut self, _event: &ActivationEvent, _sink: &mut ActionSink) {
        // Refreshes happen inside the DRAM chip, in parallel with the
        // activation; no controller-visible action is generated.
        self.activations += 1;
    }

    fn timing_adjustment(&self) -> TimingAdjustment {
        self.adjustment
    }

    fn storage_bits(&self) -> u64 {
        // All state lives inside the modified DRAM chip.
        0
    }

    fn attribution(&self) -> ScoreAttribution {
        ScoreAttribution::PerActivationQuota { quota: self.rega_t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_dram::{BankAddr, RowAddr, ThreadId};

    fn event(cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row: 1 },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn never_emits_controller_visible_actions() {
        let mut r = Rega::new(64);
        for i in 0..1000 {
            assert!(r.on_activation_vec(&event(i)).is_empty());
        }
        assert_eq!(r.activations(), 1000);
    }

    #[test]
    fn timing_inflation_grows_as_nrh_shrinks() {
        let relaxed = Rega::new(4096);
        let strict = Rega::new(64);
        assert_eq!(relaxed.timing_adjustment().extra_t_rp, 0);
        assert!(strict.timing_adjustment().extra_t_rp > 0);
        assert!(
            strict.timing_adjustment().extra_t_rp >= Rega::new(256).timing_adjustment().extra_t_rp
        );
        assert_eq!(strict.timing_adjustment().extra_t_rp, 32);
    }

    #[test]
    fn attribution_uses_rega_t_quota() {
        let r = Rega::new(1024);
        assert_eq!(r.rega_t(), 256);
        assert_eq!(r.attribution(), ScoreAttribution::PerActivationQuota { quota: 256 });
    }

    #[test]
    fn metadata() {
        let r = Rega::new(128);
        assert_eq!(r.name(), "REGA");
        assert_eq!(r.kind(), MechanismKind::Rega);
        assert_eq!(r.storage_bits(), 0);
        assert!(!r.timing_adjustment().is_none());
    }
}
