//! D2 positive: wall-clock and ambient nondeterminism in simulation code.
use std::time::Instant;

pub fn timestamped() -> u64 {
    let start = Instant::now();
    let tid = std::thread::current().id();
    let seed = rand::thread_rng();
    let _ = (tid, seed);
    let label = format!("{:p}", &start);
    label.len() as u64
}
