//! Fixture-based self-tests of the `bh_analyze` rule engine.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace root (so
//! crate classification and test-path detection run for real). `*_fire`
//! fixtures must produce exactly the expected findings; `*_clean` fixtures
//! must produce none; the allowlist fixture must suppress its findings.
//! On top of the in-process checks, the compiled binary is exercised end to
//! end: `--deny` must exit nonzero on a firing fixture, zero on a clean one,
//! and zero on the real workspace (the same invocation CI gates on).

use bh_analyze::{analyze_root, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

fn run(name: &str) -> Vec<Diagnostic> {
    analyze_root(&fixture(name)).expect("fixture analyzes")
}

/// The `(rule, path)` pairs of the findings, for order-stable assertions.
fn rule_sites(diagnostics: &[Diagnostic]) -> Vec<(&str, &str)> {
    diagnostics.iter().map(|d| (d.rule, d.path.as_str())).collect()
}

#[test]
fn d1_fires_on_hash_collections_in_pinned_crates() {
    let diagnostics = run("d1_fire");
    assert!(!diagnostics.is_empty());
    assert!(diagnostics.iter().all(|d| d.rule == "D1"), "{diagnostics:?}");
    // One finding per HashMap/HashSet mention: the use line and the two
    // body mentions each count.
    assert!(diagnostics.len() >= 2, "{diagnostics:?}");
    assert!(diagnostics.iter().all(|d| d.path == "crates/mem/src/lib.rs"));
}

#[test]
fn d1_ignores_btreemap_tests_and_unpinned_crates() {
    assert_eq!(run("d1_clean"), vec![]);
}

#[test]
fn d1_allowlist_suppresses_with_reason() {
    assert_eq!(run("d1_allow"), vec![]);
}

#[test]
fn d2_fires_on_ambient_nondeterminism() {
    let diagnostics = run("d2_fire");
    assert!(diagnostics.iter().all(|d| d.rule == "D2"), "{diagnostics:?}");
    let messages: Vec<&str> = diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("Instant")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("thread_rng")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("scheduling identity")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("ASLR")), "{messages:?}");
}

#[test]
fn d2_exempts_bench_and_test_modules() {
    assert_eq!(run("d2_clean"), vec![]);
}

#[test]
fn s1_fires_on_bare_unsafe() {
    let diagnostics = run("s1_fire");
    assert_eq!(rule_sites(&diagnostics), vec![("S1", "crates/cpu/src/lib.rs")]);
}

#[test]
fn s1_accepts_safety_comments_doc_sections_and_trailing_markers() {
    assert_eq!(run("s1_clean"), vec![]);
}

#[test]
fn e1_fires_on_unregistered_reads_and_undocumented_knobs() {
    let diagnostics = run("e1_fire");
    let sites = rule_sites(&diagnostics);
    // The unregistered env::var("BH_BAR") read…
    assert!(sites.contains(&("E1", "crates/bench/src/lib.rs")), "{diagnostics:?}");
    // …and the registered-but-undocumented BH_FOO, anchored to the registry.
    assert!(sites.contains(&("E1", "crates/core/src/knobs.rs")), "{diagnostics:?}");
    assert_eq!(diagnostics.len(), 2, "{diagnostics:?}");
    assert!(diagnostics.iter().any(|d| d.message.contains("BH_BAR")));
    assert!(diagnostics.iter().any(|d| d.message.contains("BH_FOO")));
}

#[test]
fn e1_passes_registered_documented_knobs() {
    assert_eq!(run("e1_clean"), vec![]);
}

#[test]
fn x1_fires_on_rest_patterns_of_marked_structs() {
    let diagnostics = run("x1_fire");
    // Both the `..` pattern in `merge` and the functional-update `..base`.
    assert_eq!(
        rule_sites(&diagnostics),
        vec![("X1", "crates/dram/src/lib.rs"), ("X1", "crates/dram/src/lib.rs")]
    );
    assert!(diagnostics.iter().all(|d| d.message.contains("bh-exhaustive")));
}

#[test]
fn x1_ignores_exhaustive_sites_unmarked_structs_and_item_braces() {
    assert_eq!(run("x1_clean"), vec![]);
}

#[test]
fn a0_fires_on_malformed_allow_comments() {
    let diagnostics = run("a0_fire");
    assert_eq!(diagnostics.len(), 3, "{diagnostics:?}");
    assert!(diagnostics.iter().all(|d| d.rule == "A0"));
    let messages: Vec<&str> = diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("reason")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("unknown rule")), "{messages:?}");
    assert!(messages.iter().any(|m| m.contains("names no rules")), "{messages:?}");
}

fn bh_analyze_status(root: &Path, deny: bool) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bh_analyze"));
    cmd.arg("--root").arg(root);
    if deny {
        cmd.arg("--deny");
    }
    cmd.output().expect("bh_analyze runs").status
}

#[test]
fn deny_exits_nonzero_on_each_positive_fixture() {
    for name in ["d1_fire", "d2_fire", "s1_fire", "e1_fire", "x1_fire", "a0_fire"] {
        let status = bh_analyze_status(&fixture(name), true);
        assert!(!status.success(), "{name} should fail under --deny");
        // Findings without --deny are informational: exit 0.
        let status = bh_analyze_status(&fixture(name), false);
        assert!(status.success(), "{name} should pass without --deny");
    }
}

#[test]
fn deny_exits_zero_on_clean_fixtures() {
    for name in ["d1_clean", "d2_clean", "s1_clean", "e1_clean", "x1_clean", "d1_allow"] {
        let status = bh_analyze_status(&fixture(name), true);
        assert!(status.success(), "{name} should pass under --deny");
    }
}

/// The invariant CI gates on: the real workspace is clean under `--deny`.
#[test]
fn real_workspace_passes_deny() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {root:?}");
    let diagnostics = analyze_root(&root).expect("workspace analyzes");
    assert_eq!(diagnostics, vec![], "workspace must be bh_analyze-clean");
    assert!(bh_analyze_status(&root, true).success());
}
