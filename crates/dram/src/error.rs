//! Error types for the DRAM device model.

use crate::command::DramCommand;
use crate::types::Cycle;
use std::error::Error;
use std::fmt;

/// An error produced when the memory controller drives the device illegally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A command was issued before the timing constraints allow it.
    TimingViolation {
        /// The offending command.
        command: DramCommand,
        /// The cycle at which the command was issued.
        issued_at: Cycle,
        /// The earliest legal issue cycle.
        earliest: Cycle,
    },
    /// A command was issued while the targeted bank is in the wrong state
    /// (e.g. ACT to an already-open bank, RD to a closed bank).
    StateViolation {
        /// The offending command.
        command: DramCommand,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// The command addressed a bank, row or column outside the geometry.
    AddressOutOfRange {
        /// The offending command.
        command: DramCommand,
        /// Which coordinate was out of range.
        reason: String,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::TimingViolation { command, issued_at, earliest } => write!(
                f,
                "timing violation: {command} issued at cycle {issued_at}, earliest legal cycle is {earliest}"
            ),
            DramError::StateViolation { command, reason } => {
                write!(f, "state violation for {command}: {reason}")
            }
            DramError::AddressOutOfRange { command, reason } => {
                write!(f, "address out of range for {command}: {reason}")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankAddr;

    #[test]
    fn errors_format_reasonably() {
        let cmd = DramCommand::activate(BankAddr { rank: 0, bank_group: 0, bank: 0 }, 3);
        let e = DramError::TimingViolation { command: cmd, issued_at: 10, earliest: 20 };
        let s = e.to_string();
        assert!(s.contains("timing violation"));
        assert!(s.contains("earliest legal cycle is 20"));

        let e = DramError::StateViolation { command: cmd, reason: "bank already open".into() };
        assert!(e.to_string().contains("bank already open"));

        let e = DramError::AddressOutOfRange { command: cmd, reason: "row".into() };
        assert!(e.to_string().contains("out of range"));
    }
}
