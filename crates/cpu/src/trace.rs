//! Instruction-trace format for the trace-driven core model.
//!
//! A trace is a sequence of records, each describing a burst of non-memory
//! instructions ("bubbles") followed by one memory access — the same shape as
//! the memory traces the paper's artifact feeds to Ramulator. Traces replay
//! cyclically until the core reaches its instruction budget, so a compact
//! synthetic trace can drive an arbitrarily long simulation.

use bh_dram::PhysAddr;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One trace record: `bubbles` non-memory instructions, then one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Number of non-memory instructions preceding the access.
    pub bubbles: u32,
    /// Physical address of the memory access.
    pub addr: PhysAddr,
    /// True if the access is a store, false for a load.
    pub is_write: bool,
    /// True if the access bypasses the cache hierarchy (a `clflush`-style
    /// uncached access, the pattern RowHammer attackers use to guarantee that
    /// every access reaches DRAM).
    pub uncached: bool,
}

impl TraceEntry {
    /// Creates a load record.
    pub fn load(bubbles: u32, addr: PhysAddr) -> Self {
        TraceEntry { bubbles, addr, is_write: false, uncached: false }
    }

    /// Creates a store record.
    pub fn store(bubbles: u32, addr: PhysAddr) -> Self {
        TraceEntry { bubbles, addr, is_write: true, uncached: false }
    }

    /// Creates an uncached (cache-bypassing) load record, as used by
    /// RowHammer attack loops built around `clflush`.
    pub fn uncached_load(bubbles: u32, addr: PhysAddr) -> Self {
        TraceEntry { bubbles, addr, is_write: false, uncached: true }
    }

    /// Instructions represented by this record (bubbles plus the access).
    pub fn instructions(&self) -> u64 {
        self.bubbles as u64 + 1
    }
}

/// A cyclic instruction trace for one hardware thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates a trace from its records.
    ///
    /// # Panics
    /// Panics if `entries` is empty (a core cannot run an empty trace).
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        assert!(!entries.is_empty(), "a trace must contain at least one record");
        Trace { entries }
    }

    /// The trace records.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false (construction rejects empty traces); provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The record at `index` modulo the trace length (cyclic replay).
    pub fn entry(&self, index: usize) -> TraceEntry {
        self.entries[index % self.entries.len()]
    }

    /// Total instructions represented by one pass over the trace.
    pub fn instructions_per_pass(&self) -> u64 {
        self.entries.iter().map(TraceEntry::instructions).sum()
    }

    /// Memory accesses per kilo-instruction of this trace (its intrinsic
    /// memory intensity, before any cache filtering).
    pub fn accesses_per_kilo_instruction(&self) -> f64 {
        self.entries.len() as f64 * 1000.0 / self.instructions_per_pass() as f64
    }

    /// Serialises the trace to a compact binary representation
    /// (13 bytes per record).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.entries.len() * 13);
        buf.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            buf.put_u32(e.bubbles);
            buf.put_u64(e.addr.0);
            buf.put_u8(u8::from(e.is_write) | (u8::from(e.uncached) << 1));
        }
        buf.freeze()
    }

    /// Compiles the trace into its shareable replay representation (see
    /// [`CompiledTrace`]). Compile once per (mix, seed, geometry); every
    /// subsequent share is a reference-count bump.
    pub fn compile(&self) -> CompiledTrace {
        CompiledTrace::from(self)
    }

    /// Parses a trace previously produced by [`Trace::to_bytes`].
    ///
    /// # Errors
    /// Returns a descriptive error if the buffer is truncated or empty.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 8 {
            return Err("trace buffer too short for header".to_string());
        }
        let count = bytes.get_u64() as usize;
        if count == 0 {
            return Err("trace must contain at least one record".to_string());
        }
        if bytes.remaining() < count * 13 {
            return Err(format!(
                "trace buffer truncated: need {} bytes, have {}",
                count * 13,
                bytes.remaining()
            ));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let bubbles = bytes.get_u32();
            let addr = PhysAddr(bytes.get_u64());
            let flags = bytes.get_u8();
            entries.push(TraceEntry {
                bubbles,
                addr,
                is_write: flags & 0b01 != 0,
                uncached: flags & 0b10 != 0,
            });
        }
        Ok(Trace { entries })
    }
}

/// A compiled instruction trace: the records of a [`Trace`] in one flat,
/// immutable, atomically reference-counted slice.
///
/// Compilation is the split between workload *generation* and workload
/// *replay*: a [`Trace`] is built (or parsed) once per (mix, seed, geometry)
/// and compiled once, and the resulting `CompiledTrace` is shared by every
/// simulated system that replays it — across the configurations of a
/// campaign matrix, across repeated runs of the same mix, and across worker
/// threads. Cloning is a reference-count bump; no per-run deep copy of the
/// record vector ever happens. The record layout (and the 13-byte on-disk
/// format via [`Trace::to_bytes`] / [`Trace::from_bytes`]) is unchanged from
/// `Trace` — compilation freezes, it does not re-encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTrace {
    entries: Arc<[TraceEntry]>,
}

impl From<&Trace> for CompiledTrace {
    fn from(trace: &Trace) -> Self {
        CompiledTrace { entries: trace.entries().into() }
    }
}

impl CompiledTrace {
    /// Compiles raw records directly (without an intermediate [`Trace`]).
    ///
    /// # Panics
    /// Panics if `entries` is empty (a core cannot replay an empty trace).
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        assert!(!entries.is_empty(), "a trace must contain at least one record");
        CompiledTrace { entries: entries.into() }
    }

    /// The trace records.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false (construction rejects empty traces); provided for API
    /// completeness.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The record at `index` modulo the trace length (cyclic replay, same
    /// contract as [`Trace::entry`]).
    #[inline]
    pub fn entry(&self, index: usize) -> TraceEntry {
        self.entries[index % self.entries.len()]
    }

    /// True if `other` shares this trace's storage (compiled once, shared
    /// everywhere — the property the campaign-level trace cache relies on).
    pub fn shares_storage_with(&self, other: &CompiledTrace) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Reconstructs an owned [`Trace`] (for serialisation or mutation).
    pub fn to_trace(&self) -> Trace {
        Trace::new(self.entries.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            TraceEntry::load(3, PhysAddr(0x1000)),
            TraceEntry::store(0, PhysAddr(0x2000)),
            TraceEntry::uncached_load(10, PhysAddr(0x3000)),
        ])
    }

    #[test]
    fn instruction_accounting() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.instructions_per_pass(), 4 + 1 + 11);
        let apki = t.accesses_per_kilo_instruction();
        assert!((apki - 3.0 * 1000.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn cyclic_indexing_wraps() {
        let t = sample();
        assert_eq!(t.entry(0), t.entry(3));
        assert_eq!(t.entry(2), t.entry(5));
    }

    #[test]
    fn byte_roundtrip_preserves_the_trace() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_bytes_rejects_truncated_buffers() {
        let t = sample();
        let bytes = t.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(Trace::from_bytes(truncated).is_err());
        assert!(Trace::from_bytes(Bytes::from_static(&[0, 0])).is_err());
        let empty_header = Bytes::copy_from_slice(&0u64.to_be_bytes());
        assert!(Trace::from_bytes(empty_header).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_trace_rejected() {
        let _ = Trace::new(vec![]);
    }

    #[test]
    fn compiled_trace_preserves_records_and_shares_storage() {
        let t = sample();
        let compiled = t.compile();
        assert_eq!(compiled.len(), t.len());
        assert!(!compiled.is_empty());
        assert_eq!(compiled.entries(), t.entries());
        for i in 0..7 {
            assert_eq!(compiled.entry(i), t.entry(i), "cyclic indexing must match at {i}");
        }
        let shared = compiled.clone();
        assert!(shared.shares_storage_with(&compiled), "clone must be a refcount bump");
        assert_eq!(shared, compiled);
        // A recompile of the same trace is equal but not shared.
        let recompiled = t.compile();
        assert_eq!(recompiled, compiled);
        assert!(!recompiled.shares_storage_with(&compiled));
        assert_eq!(compiled.to_trace(), t);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_compiled_trace_rejected() {
        let _ = CompiledTrace::new(vec![]);
    }
}
