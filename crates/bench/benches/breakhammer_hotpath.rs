//! Criterion micro-benchmark: BreakHammer's hot path — attributing an
//! activation to a thread, and observing a preventive action (score update +
//! outlier detection), corresponding to the logic §6 shows fits in a 0.67 ns
//! pipeline stage in hardware.

use bh_core::{BreakHammer, BreakHammerConfig};
use bh_dram::{ThreadId, TimingParams};
use bh_mitigation::ScoreAttribution;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_breakhammer(c: &mut Criterion) {
    let timing = TimingParams::ddr5_4800();

    c.bench_function("breakhammer_on_activation", |b| {
        let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
        let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 30;
            bh.on_activation(black_box(ThreadId((cycle % 4) as usize)), cycle);
        });
    });

    c.bench_function("breakhammer_on_preventive_action", |b| {
        let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
        let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 500;
            for t in 0..4usize {
                for _ in 0..(t + 1) {
                    bh.on_activation(ThreadId(t), cycle);
                }
            }
            bh.on_preventive_action(black_box(cycle));
        });
    });
}

criterion_group!(benches, bench_breakhammer);
criterion_main!(benches);
