//! Table 3: workload characteristics of the eight most memory-intensive
//! benign applications — RBMPKI and the number of DRAM rows receiving more
//! than 512, 128 and 64 activations within an observation window.
//!
//! The observation window defaults to 2 M instructions (scaled down from the
//! paper's 64 ms ≈ hundreds of millions of instructions); set
//! `BH_TABLE3_WINDOW` to enlarge it.

use bh_stats::{fmt3, Table};
use bh_workloads::{characterize, BenignProfile, TraceGenerator};

fn main() {
    let window: u64 = bh_core::knobs::u64_value("BH_TABLE3_WINDOW", "the 2 M instruction window")
        .unwrap_or(2_000_000);
    let entries: usize = bh_core::knobs::parse_or_warn(
        "BH_TRACE_ENTRIES",
        |raw| raw.parse::<usize>().ok(),
        "is not a number",
        "50000 records",
    )
    .unwrap_or(50_000);

    let generator = TraceGenerator::paper_default();
    let mut table = Table::new(["workload", "rbmpki", "act_512+", "act_128+", "act_64+"]);
    let mut rbmpki_sum = 0.0;
    let mut counts = [0usize; 3];
    let profiles = BenignProfile::table3_profiles();
    for (i, profile) in profiles.iter().enumerate() {
        let trace = generator.benign(profile, entries, 1000 + i as u64);
        let c =
            characterize(profile.name, &trace, generator.geometry(), generator.mapping(), window);
        rbmpki_sum += c.rbmpki;
        counts[0] += c.rows_over_512;
        counts[1] += c.rows_over_128;
        counts[2] += c.rows_over_64;
        table.push_row([
            profile.name.to_string(),
            fmt3(c.rbmpki),
            c.rows_over_512.to_string(),
            c.rows_over_128.to_string(),
            c.rows_over_64.to_string(),
        ]);
    }
    let n = profiles.len();
    table.push_row([
        "Average".to_string(),
        fmt3(rbmpki_sum / n as f64),
        (counts[0] / n).to_string(),
        (counts[1] / n).to_string(),
        (counts[2] / n).to_string(),
    ]);
    bh_bench::print_results(
        &format!("Table 3: workload characteristics over a {window}-instruction window"),
        &table,
    );
}
