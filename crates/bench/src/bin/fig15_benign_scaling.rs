//! Figure 15: BreakHammer's impact on system performance for all-benign
//! workloads as N_RH decreases — normalized to the same mechanism without
//! BreakHammer.

use bh_bench::{geomean_speedup, maybe_print_config, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms = MechanismKind::paper_mechanisms();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[false, true], /*attack=*/ false);

    let mut table = Table::new(["nrh", "mechanism", "normalized_weighted_speedup"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            let with = select(&records, mech, nrh, true);
            let without = select(&records, mech, nrh, false);
            if with.is_empty() || without.is_empty() {
                continue;
            }
            table.push_row([
                nrh.to_string(),
                format!("{mech}+BH"),
                fmt3(geomean_speedup(&with) / geomean_speedup(&without)),
            ]);
        }
    }
    print_results(
        "Figure 15: normalized weighted speedup on all-benign workloads vs. N_RH",
        &table,
    );
}
