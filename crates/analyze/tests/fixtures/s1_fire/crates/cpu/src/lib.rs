//! S1 positive: `unsafe` without a SAFETY comment.

pub fn peek(values: &[u64]) -> u64 {
    unsafe { *values.get_unchecked(0) }
}
