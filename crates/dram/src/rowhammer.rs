//! RowHammer victim-disturbance model.
//!
//! This module tracks, for every DRAM row, how much read disturbance it has
//! accumulated since it was last refreshed (either by a directed preventive
//! refresh or by the periodic refresh sweep). A row whose accumulated
//! disturbance reaches the RowHammer threshold `N_RH` would experience
//! bitflips on real hardware; the tracker records such events so tests can
//! assert that a mitigation mechanism — with or without BreakHammer attached —
//! never lets one happen (the paper's "BreakHammer preserves the security
//! guarantees of the mitigation it is paired with" claim, §5.1).
//!
//! The tracker also maintains per-aggressor activation counts, which the
//! device uses to model the in-DRAM preventive refreshes performed during RFM
//! windows (the RFM and PRAC mechanisms).
//!
//! Both stores sit on the simulator's per-activation hot path (every ACT
//! command lands here), so they are flat rather than `HashMap`-backed: the
//! disturbance store is one dense `u32` array indexed by flat row (bank-base
//! plus row index — two adjacent array increments per activation at blast
//! radius 1), and the aggressor store is a per-bank [`FlatMap`] because only
//! RFM servicing ever iterates it. Steady-state activations perform no heap
//! allocation.

use crate::fault::{hash_coords, hash_unit, FaultModel};
use crate::flat::FlatMap;
use crate::geometry::{DramGeometry, RowAddr};
use crate::types::Cycle;
use serde::{Deserialize, Serialize};

/// Hash-domain tag separating per-row threshold sampling from flip draws.
const NRH_SAMPLE_TAG: u64 = 0x6e72_685f;

/// A (potential) RowHammer bitflip event: a victim row accumulated `N_RH`
/// disturbance before being refreshed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitflipEvent {
    /// The victim row that would have flipped.
    pub victim: RowAddr,
    /// Cycle at which the threshold was crossed.
    pub cycle: Cycle,
    /// The disturbance count at the moment of the event.
    pub disturbance: u64,
}

/// Tracks read disturbance per victim row and activations per aggressor row.
#[derive(Debug, Clone)]
pub struct RowHammerTracker {
    geometry: DramGeometry,
    nrh: u64,
    /// `nrh` as `u32` for the dense-store equality check. Zero disables the
    /// check: thresholds at or above `u32::MAX` can never be crossed before
    /// the dense counters saturate, so they are "effectively infinite" (tests
    /// use such thresholds to assert no bitflip is possible).
    nrh_u32: u32,
    blast_radius: usize,
    /// Dense per-row disturbance since the row's last refresh, indexed by
    /// `flat_bank * rows_per_bank + row`.
    disturbance: Box<[u32]>,
    /// Per flat bank: aggressor row -> activations since its victims were last
    /// preventively refreshed (used to service RFM windows).
    aggressor_acts: Vec<FlatMap<u64>>,
    /// The fault model turning threshold crossings into flip events.
    model: FaultModel,
    /// Seed for the probabilistic fault model's hash draws.
    fault_seed: u64,
    /// Channel index, a hash coordinate (per-channel trackers must draw
    /// independent flips even at the same bank/row).
    channel: u64,
    /// Per-row thresholds sampled at init (probabilistic model only; `0`
    /// marks a row whose sampled threshold exceeds the dense counter range
    /// and can therefore never be crossed).
    row_nrh: Option<Box<[u32]>>,
    /// Cumulative threshold crossings per flat row since init (probabilistic
    /// model only; sparse — only hammered rows ever cross).
    crossings: FlatMap<u64>,
    /// Recorded would-be bitflips.
    bitflips: Vec<BitflipEvent>,
    /// Total activations observed.
    total_activations: u64,
    /// Reusable scratch for [`RowHammerTracker::service_rfm`]'s hottest-rows
    /// sort.
    rfm_scratch: Vec<(usize, u64)>,
    /// Reusable output buffer for [`RowHammerTracker::service_rfm`].
    refreshed_buf: Vec<RowAddr>,
    /// Reusable scratch for range removals in
    /// [`RowHammerTracker::on_periodic_refresh`].
    retain_scratch: Vec<u64>,
}

impl RowHammerTracker {
    /// Creates a tracker for `geometry` with RowHammer threshold `nrh` and the
    /// given blast radius (how many physically adjacent rows an aggressor
    /// disturbs on each side; the paper and most defenses assume 1–2).
    ///
    /// # Panics
    /// Panics if `nrh` is zero or `blast_radius` is zero.
    pub fn new(geometry: DramGeometry, nrh: u64, blast_radius: usize) -> Self {
        Self::with_fault(geometry, nrh, blast_radius, FaultModel::Threshold, 0, 0)
    }

    /// Creates a tracker with an explicit [`FaultModel`]. `seed` and
    /// `channel` are hash coordinates for the probabilistic model's draws
    /// (ignored by [`FaultModel::Threshold`]); per-channel trackers must be
    /// given their channel index so they draw independent flips.
    ///
    /// # Panics
    /// Panics if `nrh` is zero or `blast_radius` is zero.
    pub fn with_fault(
        geometry: DramGeometry,
        nrh: u64,
        blast_radius: usize,
        model: FaultModel,
        seed: u64,
        channel: usize,
    ) -> Self {
        assert!(nrh > 0, "RowHammer threshold must be positive");
        assert!(blast_radius > 0, "blast radius must be positive");
        let banks = geometry.banks_per_channel();
        let rows = geometry.rows_per_channel();
        let row_nrh = match model {
            FaultModel::Threshold => None,
            FaultModel::Probabilistic { nrh_variation, .. } => {
                // Per-row thresholds, sampled once at init: a pure function
                // of (seed, channel, flat row), so every rebuild of the same
                // configuration sees the same per-row landscape.
                let rows_per_bank = geometry.rows_per_bank;
                Some(
                    (0..rows)
                        .map(|flat| {
                            let (bank, row) = (flat / rows_per_bank, flat % rows_per_bank);
                            let u = hash_unit(hash_coords(
                                seed,
                                channel as u64,
                                bank as u64,
                                row as u64,
                                NRH_SAMPLE_TAG,
                            ));
                            let factor = 1.0 - nrh_variation + 2.0 * nrh_variation * u;
                            let sampled = (nrh as f64 * factor).round().max(1.0);
                            // 0 disables the row, mirroring `nrh_u32`: a
                            // threshold past the dense counter range can
                            // never be crossed.
                            if sampled < u32::MAX as f64 {
                                sampled as u32
                            } else {
                                0
                            }
                        })
                        .collect(),
                )
            }
        };
        RowHammerTracker {
            geometry,
            nrh,
            nrh_u32: if nrh < u64::from(u32::MAX) { nrh as u32 } else { 0 },
            blast_radius,
            disturbance: vec![0; rows].into_boxed_slice(),
            aggressor_acts: (0..banks).map(|_| FlatMap::with_capacity(64)).collect(),
            model,
            fault_seed: seed,
            channel: channel as u64,
            row_nrh,
            crossings: FlatMap::with_capacity(64),
            bitflips: Vec::new(),
            total_activations: 0,
            rfm_scratch: Vec::new(),
            refreshed_buf: Vec::new(),
            retain_scratch: Vec::new(),
        }
    }

    /// The configured RowHammer threshold.
    pub fn nrh(&self) -> u64 {
        self.nrh
    }

    /// The configured blast radius.
    pub fn blast_radius(&self) -> usize {
        self.blast_radius
    }

    /// Records an activation of `row` at `cycle`: the row's neighbours gain
    /// one unit of disturbance each, and the row's aggressor count grows.
    pub fn on_activate(&mut self, row: RowAddr, cycle: Cycle) {
        self.total_activations += 1;
        let flat_bank = self.geometry.flat_bank(row.bank);
        *self.aggressor_acts[flat_bank].or_insert(row.row as u64, 0) += 1;

        let base = flat_bank * self.geometry.rows_per_bank;
        // Same victim order as `DramGeometry::neighbors`: d below, d above.
        for d in 1..=self.blast_radius {
            if row.row >= d {
                self.disturb(base, row.bank, row.row - d, cycle);
            }
            if row.row + d < self.geometry.rows_per_bank {
                self.disturb(base, row.bank, row.row + d, cycle);
            }
        }
    }

    #[inline]
    fn disturb(
        &mut self,
        bank_base: usize,
        bank: crate::geometry::BankAddr,
        row: usize,
        cycle: Cycle,
    ) {
        let flat = bank_base + row;
        let entry = &mut self.disturbance[flat];
        *entry = entry.saturating_add(1);
        let Some(row_nrh) = &self.row_nrh else {
            // Hard-threshold cliff (the default): one event, exactly at N_RH.
            if *entry == self.nrh_u32 {
                self.bitflips.push(BitflipEvent {
                    victim: RowAddr { bank, row },
                    cycle,
                    disturbance: self.nrh,
                });
            }
            return;
        };
        // Probabilistic model: every multiple of the row's sampled threshold
        // is a crossing (the saturated counter stops counting, so it can
        // never re-trigger). Each crossing draws one Bernoulli flip from a
        // hash of (seed, channel, bank, row, cumulative crossing count) —
        // a pure function of coordinates, independent of simulation order.
        let threshold = row_nrh[flat];
        if threshold == 0 || *entry == u32::MAX || !entry.is_multiple_of(threshold) {
            return;
        }
        let disturbance = u64::from(*entry);
        let crossing = self.crossings.or_insert(flat as u64, 0);
        *crossing += 1;
        let FaultModel::Probabilistic { flip_probability, .. } = self.model else {
            unreachable!("row_nrh is only sampled for the probabilistic model")
        };
        let draw = hash_unit(hash_coords(
            self.fault_seed,
            self.channel,
            (flat / self.geometry.rows_per_bank) as u64,
            row as u64,
            *crossing,
        ));
        if draw < flip_probability {
            self.bitflips.push(BitflipEvent { victim: RowAddr { bank, row }, cycle, disturbance });
        }
    }

    /// Records that `row` was refreshed (directed preventive refresh): its
    /// accumulated disturbance is cleared.
    pub fn on_row_refreshed(&mut self, row: RowAddr) {
        let flat_bank = self.geometry.flat_bank(row.bank);
        self.disturbance[flat_bank * self.geometry.rows_per_bank + row.row] = 0;
        // Refreshing a row also clears the "pending preventive work" of the
        // aggressors for which this row was the victim only partially; we keep
        // the aggressor counters untouched so RFM servicing stays conservative.
    }

    /// Records a periodic-refresh sweep covering rows `[row_start, row_end)`
    /// of every bank in `rank`: those rows are restored, so their accumulated
    /// disturbance is cleared.
    pub fn on_periodic_refresh(&mut self, rank: usize, row_start: usize, row_end: usize) {
        let rows_per_bank = self.geometry.rows_per_bank;
        let start = row_start.min(rows_per_bank);
        let end = row_end.min(rows_per_bank);
        for flat in self.geometry.rank_flat_range(rank) {
            let base = flat * rows_per_bank;
            self.disturbance[base + start..base + end].fill(0);
            self.retain_scratch.clear();
            for (row, _) in self.aggressor_acts[flat].iter() {
                if (row as usize) >= start && (row as usize) < end {
                    self.retain_scratch.push(row);
                }
            }
            for i in 0..self.retain_scratch.len() {
                self.aggressor_acts[flat].remove(self.retain_scratch[i]);
            }
        }
    }

    /// Models the in-DRAM preventive refreshes performed during one RFM (or
    /// PRAC back-off) window on `bank`: the `aggressors` most-activated rows
    /// have their neighbours refreshed and their counters reset.
    ///
    /// Returns the victim rows that were refreshed. The slice borrows an
    /// internal buffer that the next `service_rfm` call reuses.
    pub fn service_rfm(
        &mut self,
        bank: crate::geometry::BankAddr,
        aggressors: usize,
    ) -> &[RowAddr] {
        let flat = self.geometry.flat_bank(bank);
        self.rfm_scratch.clear();
        for (row, count) in self.aggressor_acts[flat].iter() {
            self.rfm_scratch.push((row as usize, count));
        }
        self.rfm_scratch.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.rfm_scratch.truncate(aggressors);

        self.refreshed_buf.clear();
        let base = flat * self.geometry.rows_per_bank;
        for i in 0..self.rfm_scratch.len() {
            let row = self.rfm_scratch[i].0;
            self.aggressor_acts[flat].remove(row as u64);
            for d in 1..=self.blast_radius {
                if row >= d {
                    self.disturbance[base + row - d] = 0;
                    self.refreshed_buf.push(RowAddr { bank, row: row - d });
                }
                if row + d < self.geometry.rows_per_bank {
                    self.disturbance[base + row + d] = 0;
                    self.refreshed_buf.push(RowAddr { bank, row: row + d });
                }
            }
        }
        &self.refreshed_buf
    }

    /// Current disturbance of a specific row.
    pub fn disturbance_of(&self, row: RowAddr) -> u64 {
        let flat = self.geometry.flat_bank(row.bank);
        u64::from(self.disturbance[flat * self.geometry.rows_per_bank + row.row])
    }

    /// Activation count of an aggressor row since its last RFM service.
    pub fn aggressor_activations(&self, row: RowAddr) -> u64 {
        let flat = self.geometry.flat_bank(row.bank);
        self.aggressor_acts[flat].get(row.row as u64).unwrap_or(0)
    }

    /// The largest disturbance currently accumulated by any row.
    pub fn max_disturbance(&self) -> u64 {
        u64::from(self.disturbance.iter().copied().max().unwrap_or(0))
    }

    /// All recorded would-be bitflips.
    pub fn bitflips(&self) -> &[BitflipEvent] {
        &self.bitflips
    }

    /// Number of recorded would-be bitflips.
    pub fn bitflip_count(&self) -> usize {
        self.bitflips.len()
    }

    /// Total number of activations observed.
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Geometry the tracker was built for.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// The fault model in use.
    pub fn fault_model(&self) -> &FaultModel {
        &self.model
    }

    /// The sampled threshold of a specific row: `nrh` under the hard
    /// threshold model, the per-row sample under the probabilistic one
    /// (`None` for a row whose sample exceeds the countable range).
    pub fn row_threshold(&self, row: RowAddr) -> Option<u64> {
        match &self.row_nrh {
            None => Some(self.nrh),
            Some(samples) => {
                let flat = self.geometry.flat_bank(row.bank);
                match samples[flat * self.geometry.rows_per_bank + row.row] {
                    0 => None,
                    t => Some(u64::from(t)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::BankAddr;

    fn tracker(nrh: u64) -> RowHammerTracker {
        RowHammerTracker::new(DramGeometry::tiny(), nrh, 1)
    }

    fn row(bank: usize, r: usize) -> RowAddr {
        RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank }, row: r }
    }

    #[test]
    fn activations_disturb_neighbors() {
        let mut t = tracker(100);
        t.on_activate(row(0, 10), 0);
        assert_eq!(t.disturbance_of(row(0, 9)), 1);
        assert_eq!(t.disturbance_of(row(0, 11)), 1);
        assert_eq!(t.disturbance_of(row(0, 10)), 0);
        assert_eq!(t.aggressor_activations(row(0, 10)), 1);
        assert_eq!(t.total_activations(), 1);
    }

    #[test]
    fn bitflip_recorded_exactly_at_threshold() {
        let mut t = tracker(8);
        for c in 0..7 {
            t.on_activate(row(0, 20), c);
        }
        assert_eq!(t.bitflip_count(), 0);
        t.on_activate(row(0, 20), 7);
        // Both neighbours (19 and 21) cross the threshold at the same time.
        assert_eq!(t.bitflip_count(), 2);
        assert_eq!(t.max_disturbance(), 8);
        assert!(t.bitflips().iter().all(|b| b.disturbance == 8));
    }

    #[test]
    fn directed_refresh_clears_disturbance() {
        let mut t = tracker(8);
        for c in 0..5 {
            t.on_activate(row(0, 20), c);
        }
        t.on_row_refreshed(row(0, 19));
        assert_eq!(t.disturbance_of(row(0, 19)), 0);
        assert_eq!(t.disturbance_of(row(0, 21)), 5);
        // Hammering can resume without flipping 19 until another N_RH acts.
        for c in 5..12 {
            t.on_activate(row(0, 20), c);
        }
        // Row 21 flipped (5+7=12 >= 8), row 19 did not (7 < 8).
        assert_eq!(t.bitflip_count(), 1);
        assert_eq!(t.bitflips()[0].victim, row(0, 21));
    }

    #[test]
    fn periodic_refresh_sweep_clears_covered_rows_of_the_rank() {
        let mut t = tracker(1000);
        t.on_activate(row(0, 20), 0);
        t.on_activate(row(1, 20), 0);
        // Row 20's victims are 19 and 21; sweep rows [0, 32) of rank 0.
        t.on_periodic_refresh(0, 0, 32);
        assert_eq!(t.disturbance_of(row(0, 19)), 0);
        assert_eq!(t.disturbance_of(row(1, 21)), 0);
        // A row outside the sweep keeps its disturbance.
        t.on_activate(row(0, 100), 1);
        t.on_periodic_refresh(0, 0, 32);
        assert_eq!(t.disturbance_of(row(0, 99)), 1);
    }

    #[test]
    fn periodic_refresh_clears_swept_aggressor_counters() {
        let mut t = tracker(1000);
        for c in 0..9 {
            t.on_activate(row(0, 20), c);
        }
        t.on_activate(row(0, 100), 9);
        t.on_periodic_refresh(0, 0, 32);
        assert_eq!(t.aggressor_activations(row(0, 20)), 0);
        assert_eq!(t.aggressor_activations(row(0, 100)), 1);
    }

    #[test]
    fn rfm_service_targets_hottest_aggressors() {
        let mut t = tracker(1000);
        for c in 0..50 {
            t.on_activate(row(0, 40), c);
        }
        for c in 0..10 {
            t.on_activate(row(0, 80), c);
        }
        let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let refreshed: Vec<RowAddr> = t.service_rfm(bank, 1).to_vec();
        // The hotter aggressor (row 40) is serviced: victims 39 and 41.
        assert_eq!(refreshed.len(), 2);
        assert!(refreshed.iter().all(|r| r.row == 39 || r.row == 41));
        assert_eq!(t.disturbance_of(row(0, 39)), 0);
        assert_eq!(t.aggressor_activations(row(0, 40)), 0);
        // The cooler aggressor is untouched.
        assert_eq!(t.disturbance_of(row(0, 79)), 10);
        assert_eq!(t.aggressor_activations(row(0, 80)), 10);
    }

    #[test]
    fn rfm_service_breaks_count_ties_by_lowest_row() {
        let mut t = tracker(1000);
        for c in 0..10 {
            t.on_activate(row(0, 80), c);
            t.on_activate(row(0, 40), c);
        }
        let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let refreshed: Vec<RowAddr> = t.service_rfm(bank, 1).to_vec();
        assert!(refreshed.iter().all(|r| r.row == 39 || r.row == 41), "{refreshed:?}");
    }

    #[test]
    fn blast_radius_two_disturbs_four_neighbors() {
        let mut t = RowHammerTracker::new(DramGeometry::tiny(), 100, 2);
        t.on_activate(row(0, 50), 0);
        for r in [48, 49, 51, 52] {
            assert_eq!(t.disturbance_of(row(0, r)), 1, "row {r}");
        }
        assert_eq!(t.disturbance_of(row(0, 47)), 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_is_rejected() {
        let _ = RowHammerTracker::new(DramGeometry::tiny(), 0, 1);
    }

    fn probabilistic(
        nrh: u64,
        p: f64,
        variation: f64,
        seed: u64,
        channel: usize,
    ) -> RowHammerTracker {
        RowHammerTracker::with_fault(
            DramGeometry::tiny(),
            nrh,
            1,
            FaultModel::Probabilistic { flip_probability: p, nrh_variation: variation },
            seed,
            channel,
        )
    }

    #[test]
    fn probability_one_flips_at_every_crossing() {
        let mut t = probabilistic(8, 1.0, 0.0, 42, 0);
        assert_eq!(t.row_threshold(row(0, 19)), Some(8));
        for c in 0..16 {
            t.on_activate(row(0, 20), c);
        }
        // Two crossings (at 8 and 16) of both neighbours, every draw flips.
        assert_eq!(t.bitflip_count(), 4);
        assert!(t.bitflips().iter().any(|b| b.disturbance == 8));
        assert!(t.bitflips().iter().any(|b| b.disturbance == 16));
    }

    #[test]
    fn probability_zero_never_flips() {
        let mut t = probabilistic(4, 0.0, 0.0, 42, 0);
        for c in 0..64 {
            t.on_activate(row(0, 20), c);
        }
        assert_eq!(t.bitflip_count(), 0);
        assert!(t.max_disturbance() >= 16, "crossings did occur");
    }

    #[test]
    fn probabilistic_flips_are_deterministic_per_seed_and_channel() {
        let run = |seed, channel| {
            let mut t = probabilistic(4, 0.5, 0.2, seed, channel);
            for c in 0..200 {
                t.on_activate(row(0, 20), c);
                t.on_activate(row(1, 50), c);
            }
            t.bitflips().to_vec()
        };
        assert_eq!(run(7, 0), run(7, 0), "same coordinates, same flips");
        assert_ne!(run(7, 0), run(8, 0), "the seed matters");
        assert_ne!(run(7, 0), run(7, 1), "the channel matters");
        assert!(!run(7, 0).is_empty(), "p=0.5 over 100 crossings must flip");
    }

    #[test]
    fn nrh_variation_spreads_per_row_thresholds() {
        let t = probabilistic(100, 1.0, 0.3, 42, 0);
        let thresholds: std::collections::BTreeSet<u64> =
            (0..64).map(|r| t.row_threshold(row(0, r)).expect("in range")).collect();
        assert!(thresholds.len() > 4, "variation must spread the samples: {thresholds:?}");
        assert!(thresholds.iter().all(|&v| (70..=130).contains(&v)), "{thresholds:?}");
        // Without variation every row sits exactly at N_RH.
        let flat = probabilistic(100, 1.0, 0.0, 42, 0);
        assert!((0..64).all(|r| flat.row_threshold(row(0, r)) == Some(100)));
    }

    #[test]
    fn default_constructor_keeps_the_hard_threshold_model() {
        let t = tracker(8);
        assert_eq!(*t.fault_model(), FaultModel::Threshold);
        assert_eq!(t.row_threshold(row(0, 5)), Some(8));
    }
}
