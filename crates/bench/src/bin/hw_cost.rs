//! §6 hardware complexity: BreakHammer's per-thread storage, area at 65 nm,
//! fraction of a high-end Xeon die, and per-decision latency compared with
//! the DRAM tRRD command spacing.

use bh_core::hw_cost::{HardwareCost, BITS_PER_THREAD, CLOCK_GHZ, PIPELINE_STAGES};
use bh_dram::TimingParams;
use bh_stats::Table;

fn main() {
    let mut table = Table::new([
        "threads",
        "channels",
        "storage_bits",
        "area_mm2",
        "xeon_fraction",
        "latency_ns",
    ]);
    for (threads, channels) in [(4, 1), (4, 4), (8, 2), (16, 4), (64, 8), (128, 8)] {
        let c = HardwareCost::estimate(threads, channels);
        table.push_row([
            threads.to_string(),
            channels.to_string(),
            c.storage_bits.to_string(),
            format!("{:.6}", c.area_mm2),
            format!("{:.7}%", c.xeon_area_fraction * 100.0),
            format!("{:.2}", c.latency_ns),
        ]);
    }
    bh_bench::print_results("Section 6: BreakHammer hardware complexity", &table);

    let paper = HardwareCost::paper_configuration();
    let ddr4 = TimingParams::ddr4_3200();
    let ddr5 = TimingParams::ddr5_4800();
    println!("per-thread state: {BITS_PER_THREAD} bits (two 32-bit scores, one 16-bit activation counter, two flags)");
    println!(
        "pipeline: {PIPELINE_STAGES} stages at {CLOCK_GHZ} GHz -> {:.2} ns per decision",
        paper.latency_ns
    );
    println!(
        "fits under tRRD? DDR4 ({:.2} ns): {}; DDR5 ({:.2} ns): {}",
        ddr4.cycles_to_ns(ddr4.t_rrd_s),
        paper.fits_under_trrd(ddr4.cycles_to_ns(ddr4.t_rrd_s)),
        ddr5.cycles_to_ns(ddr5.t_rrd_s),
        paper.fits_under_trrd(ddr5.cycles_to_ns(ddr5.t_rrd_s)),
    );
    println!(
        "paper configuration: {:.5} mm^2 total, {:.4}% of a high-end Xeon die (paper: 0.00042 mm^2, 0.0002%)",
        paper.area_mm2,
        paper.xeon_area_fraction * 100.0
    );
}
