//! Resume equivalence: an interrupted sweep plus a resume must produce the
//! same result set as one uninterrupted sweep.
//!
//! Interruption is simulated deterministically with the engine's
//! `cell_limit` budget (a real SIGKILL leaves the same store state minus any
//! line that was mid-write, which the resume parser already skips). Because
//! the simulator is deterministic, equivalence is checked at full strength:
//! the two stores hold byte-identical lines, modulo ordering.

// Test-only HashSets: completed-cell fixtures and assertion sets.
#![allow(clippy::disallowed_types)]

use bh_bench::campaign::{report_table, CampaignSpec, ResultStore};
use bh_bench::Scale;
use bh_mitigation::MechanismKind;
use std::collections::HashSet;
use std::path::PathBuf;

fn tiny_spec() -> CampaignSpec {
    let mut scale = Scale::quick();
    scale.instructions_per_core = 4_000;
    scale.benign_entries = 600;
    scale.attacker_entries = 600;
    scale.mixes_per_class = 1;
    scale.worker_threads = 2;
    let mut spec = CampaignSpec::from_scale(scale, vec![MechanismKind::Graphene], true);
    spec.nrh_values = vec![64];
    spec.breakhammer_options = vec![true];
    spec.seeds = vec![42, 43];
    spec
}

fn test_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bh-campaign-resume-{tag}-{}.jsonl", std::process::id()))
}

fn sorted_lines(path: &PathBuf) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .expect("store is readable")
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn interrupted_sweep_resumes_to_the_uninterrupted_result_set() {
    let spec = tiny_spec();
    let full_path = test_path("full");
    let chunked_path = test_path("chunked");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&chunked_path);

    // One uninterrupted sweep over the whole grid.
    let full_store = ResultStore::create(&full_path).expect("fresh store");
    let full = spec.run(&full_store, &HashSet::new(), None);
    assert!(full.complete(), "{full:?}");
    assert_eq!(full.evaluated_cells, full.total_cells);
    assert_eq!(full.skipped_cells + full.deferred_cells, 0);
    // 1 config × 6 attack mixes × 2 seeds.
    assert_eq!(full.total_cells, 12);

    // The same sweep "interrupted" after 5 cells (mid-way through the first
    // seed's grid)…
    let chunked_store = ResultStore::create(&chunked_path).expect("fresh store");
    let interrupted = spec.run(&chunked_store, &HashSet::new(), Some(5));
    drop(chunked_store);
    assert_eq!(interrupted.evaluated_cells, 5, "{interrupted:?}");
    assert_eq!(interrupted.deferred_cells, 7);
    assert!(!interrupted.complete());

    // …then resumed: the completed cells are loaded from the store and
    // skipped, the deferred ones run now.
    let completed = ResultStore::completed_cells(&chunked_path).expect("store parses");
    assert_eq!(completed.len(), 5);
    let resumed_store = ResultStore::append_to(&chunked_path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &completed, None);
    assert_eq!(resumed.skipped_cells, 5, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 7);
    assert!(resumed.complete());

    // The interrupted-then-resumed store equals the uninterrupted one,
    // byte for byte, modulo line order.
    assert_eq!(sorted_lines(&full_path), sorted_lines(&chunked_path));

    // And a second resume finds nothing left to do.
    let completed = ResultStore::completed_cells(&chunked_path).expect("store parses");
    let noop_store = ResultStore::append_to(&chunked_path).expect("store reopens");
    let noop = spec.run(&noop_store, &completed, None);
    assert_eq!(noop.evaluated_cells, 0, "{noop:?}");
    assert_eq!(noop.skipped_cells, noop.total_cells);

    // The store feeds the report aggregation.
    let records = ResultStore::load(&chunked_path).expect("store loads");
    assert_eq!(records.len(), 12);
    assert!(records.iter().all(|r| r.mechanism == "Graphene" && r.nrh == 64 && r.breakhammer));
    let seeds: HashSet<u64> = records.iter().map(|r| r.seed).collect();
    assert_eq!(seeds, HashSet::from([42, 43]));
    let table = report_table(&records);
    assert_eq!(table.len(), 1, "one configuration group");

    std::fs::remove_file(&full_path).expect("cleanup");
    std::fs::remove_file(&chunked_path).expect("cleanup");
}

/// A store corrupted mid-flight — interior garbage plus a half-overwritten
/// record — must not poison resume: the parser skips the damaged lines and a
/// resume reruns exactly the cells they belonged to.
#[test]
fn corrupted_store_lines_are_skipped_and_rerun_on_resume() {
    let spec = tiny_spec();
    let full_path = test_path("corrupt-full");
    let corrupt_path = test_path("corrupt");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&corrupt_path);

    // Reference: one clean uninterrupted sweep.
    let full_store = ResultStore::create(&full_path).expect("fresh store");
    let full = spec.run(&full_store, &HashSet::new(), None);
    assert!(full.complete());
    drop(full_store);

    // Corrupt a copy: replace one record with interior garbage and splice a
    // half-overwritten hybrid (the head of one record glued to the tail of
    // another — what a torn write plus a partial rewrite leaves behind).
    let clean_lines: Vec<String> = std::fs::read_to_string(&full_path)
        .expect("store is readable")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(clean_lines.len(), 12);
    let mut damaged = clean_lines.clone();
    damaged[3] = "x#!garbage not json at all".to_string();
    // 40 bytes cuts mid-way through the `"cell"` value, so the hybrid both
    // breaks the string structure and lacks the record's middle fields.
    let head = &clean_lines[7][..40];
    let tail = &clean_lines[8][clean_lines[8].len() / 2..];
    damaged[7] = format!("{head}{tail}");
    std::fs::write(&corrupt_path, format!("{}\n", damaged.join("\n"))).expect("write corrupt");

    // Exactly the two damaged cells are missing from the completed set…
    let completed = ResultStore::completed_cells(&corrupt_path).expect("parser skips damage");
    assert_eq!(completed.len(), 10, "{completed:?}");
    assert_eq!(ResultStore::load(&corrupt_path).expect("store loads").len(), 10);

    // …and a resume reruns exactly those two.
    let resumed_store = ResultStore::append_to(&corrupt_path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &completed, None);
    assert_eq!(resumed.skipped_cells, 10, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 2);
    assert!(resumed.complete());

    // After the resume, the store's well-formed records are equivalent to the
    // clean sweep's (the two corrupted lines stay in the file but parse to
    // nothing; their cells were re-appended byte-identically).
    assert_eq!(ResultStore::entries(&corrupt_path).expect("store parses").len(), 12);
    let mut expected = clean_lines;
    expected.sort();
    let mut recovered: Vec<String> = sorted_lines(&corrupt_path)
        .into_iter()
        .filter(|line| bh_bench::StoreEntry::parse(line).is_some())
        .collect();
    recovered.sort();
    assert_eq!(expected, recovered);

    std::fs::remove_file(&full_path).expect("cleanup");
    std::fs::remove_file(&corrupt_path).expect("cleanup");
}

/// A cell whose evaluation panics must not kill the sweep: it is recorded as
/// a `"failed"` line, surfaced in the summary, and retried by a later resume.
#[test]
fn panicking_cell_is_isolated_and_retried_on_resume() {
    let mut spec = tiny_spec();
    // Force every cell of one mix class to panic (2 seeds × 1 matching mix).
    spec.force_panic_mix = Some("HHHA".to_string());
    let path = test_path("panic");
    let _ = std::fs::remove_file(&path);

    let store = ResultStore::create(&path).expect("fresh store");
    let summary = spec.run(&store, &HashSet::new(), None);
    drop(store);
    assert_eq!(summary.failed_cells, 2, "{summary:?}");
    assert_eq!(summary.evaluated_cells + summary.failed_cells, summary.total_cells);
    assert!(!summary.complete(), "failed cells leave the grid incomplete");

    // The failures are in the store as failed lines, pending retry.
    let pending = ResultStore::failed_cells(&path).expect("store parses");
    assert_eq!(pending.len(), 2, "{pending:?}");
    assert!(pending.iter().all(|f| f.cell.contains("HHHA")), "{pending:?}");
    assert!(pending.iter().all(|f| f.error.contains("forced test panic")), "{pending:?}");
    let completed = ResultStore::completed_cells(&path).expect("store parses");
    assert_eq!(completed.len(), 10);

    // Resume without the fault injected: the failed cells rerun to success.
    spec.force_panic_mix = None;
    let resumed_store = ResultStore::append_to(&path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &completed, None);
    assert_eq!(resumed.skipped_cells, 10, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 2);
    assert_eq!(resumed.failed_cells, 0);
    assert!(resumed.complete());
    assert!(ResultStore::failed_cells(&path).expect("store parses").is_empty());
    assert_eq!(ResultStore::load(&path).expect("store loads").len(), 12);

    std::fs::remove_file(&path).expect("cleanup");
}
