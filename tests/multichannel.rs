//! Multi-channel memory-system tests: the event-driven and per-cycle kernels
//! must stay bit-identical at every channel count, request routing must
//! follow the channel-interleave policy, and BreakHammer's cross-channel
//! scoring must identify an attacker no matter how it places its traffic
//! over the channels.

use breakhammer_suite::cpu::Trace;
use breakhammer_suite::mem::{AddressMapping, ChannelInterleave};
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    SchedulerKind, SimulationResult, System, SystemConfig, TerminationReason,
};
use breakhammer_suite::workloads::AttackerProfile;

mod common;
use common::{attack_traces_with as attack_traces, benign_traces};

fn run_both(
    mut config: SystemConfig,
    traces: &[Trace],
    required: Vec<usize>,
) -> (SimulationResult, SimulationResult) {
    config.scheduler = SchedulerKind::PerCycle;
    let reference = System::new(config.clone(), traces, required.clone()).run();
    config.scheduler = SchedulerKind::EventDriven;
    let event_driven = System::new(config, traces, required).run();
    (reference, event_driven)
}

/// The core acceptance matrix: channels ∈ {1, 2, 4}, several mechanisms,
/// with and without BreakHammer — both kernels bit-identical per config.
#[test]
fn kernels_are_identical_across_channel_counts() {
    for channels in [1usize, 2, 4] {
        for (mechanism, breakhammer) in [
            (MechanismKind::Graphene, true),
            (MechanismKind::Para, false),
            (MechanismKind::BlockHammer, true),
        ] {
            let mut config =
                SystemConfig::fast_test(mechanism, 128, breakhammer).with_channels(channels);
            config.instructions_per_core = 6_000;
            let traces = attack_traces(&config, AttackerProfile::paper_default(), 2_000, 100);
            let label = format!("{} x{channels}ch", config.summary());
            let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2]);
            assert_eq!(reference, event_driven, "kernels diverged for {label}");
            assert_eq!(reference.per_channel.len(), channels, "{label}");
        }
    }
}

/// Interleave policies must also agree across kernels (they change the
/// routing, not the kernel contract).
#[test]
fn kernels_are_identical_across_interleave_policies() {
    for interleave in
        [ChannelInterleave::CacheLine, ChannelInterleave::Row, ChannelInterleave::Pinned]
    {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 128, true).with_channels(2);
        config.memctrl.mapping = AddressMapping::paper_default().with_interleave(interleave);
        config.instructions_per_core = 5_000;
        let traces = attack_traces(&config, AttackerProfile::paper_default(), 2_000, 7);
        let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2]);
        assert_eq!(reference, event_driven, "kernels diverged for {interleave:?}");
    }
}

/// The aggregate statistics must equal the sum of the per-channel
/// breakdowns, and with more than one channel the traffic must actually be
/// distributed (no silent single-channel fallback).
#[test]
fn per_channel_breakdown_sums_to_the_aggregate() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false).with_channels(2);
    config.instructions_per_core = 6_000;
    let traces = attack_traces(&config, AttackerProfile::paper_default(), 2_000, 3);
    let result = System::new(config, &traces, vec![0, 1, 2]).run();

    assert_eq!(result.per_channel.len(), 2);
    let acts: Vec<u64> = result.per_channel.iter().map(|c| c.dram.activates).collect();
    assert!(acts.iter().all(|&a| a > 0), "both channels must see activations: {acts:?}");
    assert_eq!(acts.iter().sum::<u64>(), result.dram.activates);
    let reads: Vec<u64> = result.per_channel.iter().map(|c| c.controller.reads_served).collect();
    assert_eq!(reads.iter().sum::<u64>(), result.controller.reads_served);
    let energy: f64 = result.per_channel.iter().map(|c| c.energy_nj).sum();
    assert!((energy - result.energy_nj).abs() < 1e-6);
    assert_eq!(result.per_channel.iter().map(|c| c.bitflips).sum::<usize>(), result.bitflips);
}

/// A channel-pinned attacker concentrates every preventive action on one
/// channel's tracker — and BreakHammer must still identify and throttle it
/// from its system-wide score (the cross-channel observer of §5).
#[test]
fn channel_pinned_attacker_is_caught_by_cross_channel_scoring() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, true).with_channels(2);
    config.instructions_per_core = 10_000;
    let mut bh = config.effective_breakhammer_config();
    bh.threat_threshold = 8.0;
    config.breakhammer_config = Some(bh);
    let attacker = AttackerProfile::paper_default().pinned_to_channel(1);
    let traces = attack_traces(&config, attacker, 3_000, 11);
    let result = System::new(config, &traces, vec![0, 1, 2]).run();

    // The pinned attacker's preventive actions all land on channel 1.
    let actions: Vec<u64> =
        result.per_channel.iter().map(|c| c.controller.preventive_actions_total()).collect();
    assert!(
        actions[1] > 0 && actions[1] > actions[0] * 4,
        "the attacked channel must dominate the preventive actions: {actions:?}"
    );
    assert!(result.ever_suspect[3], "the pinned attacker must be identified");
    assert!(!result.ever_suspect[0] && !result.ever_suspect[1], "benign threads stay clean");
    assert_eq!(result.bitflips, 0);

    let stats = result.breakhammer.expect("BreakHammer attached");
    assert_eq!(
        stats.actions_per_channel.iter().sum::<u64>(),
        stats.actions_observed,
        "per-channel action counts must sum to the total"
    );
}

/// A channel-interleaved attacker keeps every channel's tracker busy; the
/// shared BreakHammer aggregates all of them and still throttles the thread.
#[test]
fn channel_interleaved_attacker_is_caught_by_cross_channel_scoring() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, true).with_channels(2);
    config.instructions_per_core = 10_000;
    let mut bh = config.effective_breakhammer_config();
    bh.threat_threshold = 8.0;
    config.breakhammer_config = Some(bh);
    let attacker = AttackerProfile::paper_default().interleaved_channels();
    let traces = attack_traces(&config, attacker, 3_000, 11);
    let result = System::new(config, &traces, vec![0, 1, 2]).run();

    let actions: Vec<u64> =
        result.per_channel.iter().map(|c| c.controller.preventive_actions_total()).collect();
    assert!(
        actions.iter().all(|&a| a > 0),
        "an interleaved attacker must trigger every channel's tracker: {actions:?}"
    );
    assert!(result.ever_suspect[3], "the interleaved attacker must be identified");
    assert_eq!(result.bitflips, 0);
}

/// BreakHammer must reduce the preventive-action count under a multi-channel
/// attack just as it does on one channel (the paper's headline mechanism,
/// now aggregated across channels).
#[test]
fn breakhammer_still_reduces_actions_on_two_channels() {
    let mut base = SystemConfig::fast_test(MechanismKind::Graphene, 128, false).with_channels(2);
    base.instructions_per_core = 10_000;
    let attacker = AttackerProfile::paper_default().interleaved_channels();
    let traces = attack_traces(&base, attacker, 3_000, 23);
    let without = System::new(base.clone(), &traces, vec![0, 1, 2]).run();
    assert!(without.preventive_actions > 0, "the attacker must trigger Graphene");

    let mut with_bh = base;
    with_bh.breakhammer = true;
    let mut bh = with_bh.effective_breakhammer_config();
    bh.threat_threshold = 8.0;
    with_bh.breakhammer_config = Some(bh);
    let with = System::new(with_bh, &traces, vec![0, 1, 2]).run();
    assert!(
        with.preventive_actions < without.preventive_actions,
        "BreakHammer must reduce preventive actions across channels ({} vs {})",
        with.preventive_actions,
        without.preventive_actions
    );
    assert_eq!(with.bitflips, 0);
}

/// The forward-progress watchdog's verdict is part of the kernel contract:
/// a starvation livelock (chaos fault dropping every LLC fill) must yield
/// the same `Livelock` verdict and report at every channel count, on both
/// kernels.
#[test]
fn watchdog_livelock_verdict_is_identical_across_channel_counts() {
    for channels in [1usize, 2, 4] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 128, false).with_channels(channels);
        config.instructions_per_core = 50_000;
        config.chaos.drop_fills_after = Some(1_000);
        config.watchdog.epoch_cycles = 5_000;
        config.watchdog.stall_epochs = 4;
        let traces = benign_traces(&config, 2_000, 7);
        let (reference, event_driven) = run_both(config, &traces, vec![0, 1, 2, 3]);
        assert_eq!(reference.termination, TerminationReason::Livelock, "x{channels}ch");
        assert!(reference.livelock.is_some(), "x{channels}ch verdict carries a report");
        assert_eq!(reference, event_driven, "watchdog verdict diverged at x{channels}ch");
    }
}
