//! PARA: Probabilistic Adjacent Row Activation [Kim et al., ISCA 2014].
//!
//! PARA is stateless: on every row activation it flips a biased coin and, with
//! probability `p`, preventively refreshes one randomly chosen neighbour of
//! the activated row. `p` is scaled to the RowHammer threshold so that the
//! probability of an aggressor reaching `N_RH` activations without any of its
//! victims being refreshed is negligible. As `N_RH` drops, `p` approaches 1
//! and PARA refreshes a neighbour on almost every activation — which is why
//! the paper finds PARA degrades performance below the no-defense baseline at
//! very low thresholds even when the attacker is throttled (§8.1).

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::DramGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Target failure exponent: `p · N_RH ≈ 2·ln(10^15)`, i.e. the probability of
/// an aggressor escaping preventive refreshes over a full attack is ~1e-15.
const PROTECTION_CONSTANT: f64 = 69.0;

/// The PARA mechanism.
#[derive(Debug)]
pub struct Para {
    geometry: DramGeometry,
    probability: f64,
    blast_radius: usize,
    rng: StdRng,
    triggers: u64,
    activations: u64,
}

impl Para {
    /// Creates PARA configured to protect RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh` or `blast_radius` is zero.
    pub fn new(geometry: DramGeometry, nrh: u64, blast_radius: usize, seed: u64) -> Self {
        assert!(nrh > 0, "N_RH must be positive");
        assert!(blast_radius > 0, "blast radius must be positive");
        let probability = (PROTECTION_CONSTANT / nrh as f64).min(1.0);
        Para {
            geometry,
            probability,
            blast_radius,
            rng: StdRng::seed_from_u64(seed),
            triggers: 0,
            activations: 0,
        }
    }

    /// The per-activation refresh probability in use.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Number of preventive refreshes triggered so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }
}

impl TriggerMechanism for Para {
    fn name(&self) -> &'static str {
        "PARA"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Para
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        self.activations += 1;
        if self.rng.gen::<f64>() >= self.probability {
            return;
        }
        let neighbors = self.geometry.neighbors(event.row, self.blast_radius);
        let candidates = neighbors.clone().count();
        if candidates == 0 {
            return;
        }
        let pick = self.rng.gen_range(0..candidates);
        self.triggers += 1;
        sink.push_refresh_rows(neighbors.skip(pick).take(1));
    }

    fn storage_bits(&self) -> u64 {
        // PARA keeps no per-row state; only a small PRNG (modelled as 32 bits).
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, RowAddr, ThreadId};

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn probability_scales_inversely_with_nrh() {
        let g = DramGeometry::tiny();
        let hi = Para::new(g.clone(), 4096, 1, 1);
        let lo = Para::new(g.clone(), 64, 1, 1);
        assert!(hi.probability() < lo.probability());
        assert!(lo.probability() <= 1.0);
        assert!((hi.probability() - 69.0 / 4096.0).abs() < 1e-12);
        // At N_RH = 64 the scaled probability saturates at 1.
        assert_eq!(lo.probability(), 1.0);
    }

    #[test]
    fn trigger_rate_matches_probability_statistically() {
        let g = DramGeometry::tiny();
        let mut para = Para::new(g, 1024, 1, 42);
        let p = para.probability();
        let n = 40_000u64;
        let mut triggered = 0u64;
        for i in 0..n {
            if !para.on_activation_vec(&event(10, i)).is_empty() {
                triggered += 1;
            }
        }
        let rate = triggered as f64 / n as f64;
        assert!((rate - p).abs() < 0.015, "rate {rate} vs p {p}");
        assert_eq!(para.triggers(), triggered);
    }

    #[test]
    fn refreshed_row_is_a_neighbor_of_the_aggressor() {
        let g = DramGeometry::tiny();
        let mut para = Para::new(g, 64, 1, 7); // p == 1, always triggers
        for i in 0..100 {
            let actions = para.on_activation_vec(&event(50, i));
            assert_eq!(actions.len(), 1);
            match &actions[0] {
                PreventiveAction::RefreshRows(rows) => {
                    assert_eq!(rows.len(), 1);
                    assert!(rows[0].row == 49 || rows[0].row == 51);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let g = DramGeometry::tiny();
        let run = |seed: u64| -> Vec<usize> {
            let mut para = Para::new(g.clone(), 512, 1, seed);
            (0..500)
                .filter_map(|i| {
                    let a = para.on_activation_vec(&event(20, i));
                    match a.first() {
                        Some(PreventiveAction::RefreshRows(rows)) => Some(rows[0].row),
                        _ => None,
                    }
                })
                .collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn metadata() {
        let para = Para::new(DramGeometry::tiny(), 1024, 1, 0);
        assert_eq!(para.name(), "PARA");
        assert_eq!(para.kind(), MechanismKind::Para);
        assert_eq!(para.storage_bits(), 32);
    }
}
