//! Checkpoint/resume campaign engine.
//!
//! A campaign is a (configuration × mix × seed) grid of *cells*. The engine
//! streams each completed cell to a JSONL *result store* — one self-contained
//! JSON object per line, flushed as soon as the cell finishes — so a killed
//! sweep loses at most the cells in flight. Resuming parses the store,
//! collects the completed cell ids and skips them; an interrupted sweep
//! followed by a resume produces the same result set as an uninterrupted
//! sweep (cells are deterministic, only their order in the file differs).
//!
//! Cell identity is `"<config digest>/<mix name>/<seed>"`, where the digest
//! is FNV-1a-64 over the configuration's `Debug` representation — any
//! configuration change (mechanism, threshold, timing, scale) changes the
//! digest, so a store can never silently mix results from different sweeps.
//!
//! The JSONL reader/writer is hand-rolled (the workspace vendors no JSON
//! crate); it covers exactly the flat objects the engine emits.

use crate::experiments::{evaluate_jobs, paper_config, RunRecord, Scale};
use crate::Campaign;
use bh_mitigation::MechanismKind;
use bh_sim::SystemConfig;
use bh_stats::{fmt3, Table};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version tag written into every result line; bump on schema changes so
/// readers can reject stores written by an incompatible engine.
pub const SCHEMA_VERSION: u64 = 1;

// --- cell identity ----------------------------------------------------------

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest identifying a system configuration inside cell ids: FNV-1a-64 over
/// the `Debug` representation, which covers every field (timings, caches,
/// mechanism parameters — not just the mechanism/N_RH headline).
pub fn config_digest(config: &SystemConfig) -> String {
    format!("{:016x}", fnv1a64(format!("{config:?}").as_bytes()))
}

/// The identity of one campaign cell: configuration digest, mix name and
/// workload seed. This is what resume matches on.
pub fn cell_id(config: &SystemConfig, mix_name: &str, seed: u64) -> String {
    format!("{}/{mix_name}/{seed}", config_digest(config))
}

// --- minimal JSON -----------------------------------------------------------

/// A JSON scalar as it appears in a result line (the schema is flat: no
/// nested objects or arrays besides the latency triple, which is flattened
/// into three keys on write).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serialises one key/value pair into `out` (which must already hold the
/// object opener or a previous pair).
fn push_field(out: &mut String, key: &str, value: &Json) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\":");
    match value {
        Json::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        // `{}` on finite f64 round-trips exactly and never uses an exponent;
        // non-finite values are not valid JSON, so they degrade to null (the
        // line then fails record parsing and the cell reruns on resume).
        Json::Num(v) if v.is_finite() => out.push_str(&v.to_string()),
        Json::Num(_) | Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Option<()> {
        (self.bump()? == want).then_some(())
    }

    /// Parses a `"…"` string (the opening quote not yet consumed).
    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + (self.bump()? as char).to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        while self.peek().is_some_and(|n| n & 0xc0 == 0x80) {
                            self.pos += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'"' => Some(Json::Str(self.string()?)),
            b't' => self.literal("true").map(|_| Json::Bool(true)),
            b'f' => self.literal("false").map(|_| Json::Bool(false)),
            b'n' => self.literal("null").map(|_| Json::Null),
            _ => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(Json::Num)
            }
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Some(())
    }
}

/// Parses one result line into its key → value map. Returns `None` on any
/// syntax error (resume treats such lines as incomplete cells).
fn parse_object(line: &str) -> Option<HashMap<String, Json>> {
    let mut s = Scanner::new(line);
    s.skip_ws();
    s.expect(b'{')?;
    let mut map = HashMap::new();
    s.skip_ws();
    if s.peek() == Some(b'}') {
        s.bump();
    } else {
        loop {
            s.skip_ws();
            let key = s.string()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            map.insert(key, s.value()?);
            s.skip_ws();
            match s.bump()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
    }
    s.skip_ws();
    s.peek().is_none().then_some(map)
}

// --- result lines -----------------------------------------------------------

/// One completed cell parsed back from a result store.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Cell id (`"<config digest>/<mix>/<seed>"`).
    pub cell: String,
    /// Mechanism label (round-trips through [`MechanismKind::parse`]).
    pub mechanism: String,
    /// RowHammer threshold.
    pub nrh: u64,
    /// Whether BreakHammer was attached.
    pub breakhammer: bool,
    /// Workload-generation seed of the cell.
    pub seed: u64,
    /// Mix instance name.
    pub mix: String,
    /// Mix class label.
    pub mix_class: String,
    /// Attack-scenario tag (`None` for classic/benign mixes).
    pub scenario: Option<String>,
    /// Whether the sweep used the attack suite.
    pub attack: bool,
    /// Weighted speedup over the benign applications.
    pub weighted_speedup: f64,
    /// Maximum slowdown of a benign application.
    pub max_slowdown: f64,
    /// DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// RowHammer-preventive actions performed.
    pub preventive_actions: u64,
    /// Benign memory-latency percentiles in nanoseconds (p50, p90, p99).
    pub latency_ns: [f64; 3],
    /// True if the attacker thread was flagged as a suspect.
    pub attacker_identified: bool,
    /// True if a benign thread was flagged as a suspect.
    pub benign_misidentified: bool,
    /// Would-be RowHammer bitflips.
    pub bitflips: u64,
    /// Largest end-of-run disturbance of any watched victim row.
    pub max_victim_disturbance: u64,
}

/// Serialises one completed cell as a single JSONL line (no trailing
/// newline).
pub fn record_line(cell: &str, seed: u64, attack: bool, r: &RunRecord) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    push_field(&mut out, "schema", &Json::Num(SCHEMA_VERSION as f64));
    push_field(&mut out, "cell", &Json::Str(cell.to_string()));
    push_field(&mut out, "mechanism", &Json::Str(r.mechanism.to_string()));
    push_field(&mut out, "nrh", &Json::Num(r.nrh as f64));
    push_field(&mut out, "breakhammer", &Json::Bool(r.breakhammer));
    push_field(&mut out, "seed", &Json::Num(seed as f64));
    push_field(&mut out, "mix", &Json::Str(r.mix_name.clone()));
    push_field(&mut out, "mix_class", &Json::Str(r.mix_class.clone()));
    let scenario = match &r.scenario {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    };
    push_field(&mut out, "scenario", &scenario);
    push_field(&mut out, "attack", &Json::Bool(attack));
    push_field(&mut out, "weighted_speedup", &Json::Num(r.weighted_speedup));
    push_field(&mut out, "max_slowdown", &Json::Num(r.max_slowdown));
    push_field(&mut out, "energy_nj", &Json::Num(r.energy_nj));
    push_field(&mut out, "preventive_actions", &Json::Num(r.preventive_actions as f64));
    push_field(&mut out, "latency_p50_ns", &Json::Num(r.latency_ns[0]));
    push_field(&mut out, "latency_p90_ns", &Json::Num(r.latency_ns[1]));
    push_field(&mut out, "latency_p99_ns", &Json::Num(r.latency_ns[2]));
    push_field(&mut out, "attacker_identified", &Json::Bool(r.attacker_identified));
    push_field(&mut out, "benign_misidentified", &Json::Bool(r.benign_misidentified));
    push_field(&mut out, "bitflips", &Json::Num(r.bitflips as f64));
    push_field(&mut out, "max_victim_disturbance", &Json::Num(r.max_victim_disturbance as f64));
    out.push('}');
    out
}

impl CellRecord {
    /// Parses one store line; `None` for malformed or schema-mismatched
    /// lines (e.g. a line truncated by a kill mid-write).
    pub fn parse(line: &str) -> Option<Self> {
        let map = parse_object(line)?;
        let num = |key: &str| match map.get(key) {
            Some(Json::Num(v)) => Some(*v),
            _ => None,
        };
        let int = |key: &str| num(key).filter(|v| *v >= 0.0).map(|v| v as u64);
        let string = |key: &str| match map.get(key) {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let boolean = |key: &str| match map.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        };
        if int("schema")? != SCHEMA_VERSION {
            return None;
        }
        Some(CellRecord {
            cell: string("cell")?,
            mechanism: string("mechanism")?,
            nrh: int("nrh")?,
            breakhammer: boolean("breakhammer")?,
            seed: int("seed")?,
            mix: string("mix")?,
            mix_class: string("mix_class")?,
            scenario: match map.get("scenario")? {
                Json::Str(s) => Some(s.clone()),
                Json::Null => None,
                _ => return None,
            },
            attack: boolean("attack")?,
            weighted_speedup: num("weighted_speedup")?,
            max_slowdown: num("max_slowdown")?,
            energy_nj: num("energy_nj")?,
            preventive_actions: int("preventive_actions")?,
            latency_ns: [num("latency_p50_ns")?, num("latency_p90_ns")?, num("latency_p99_ns")?],
            attacker_identified: boolean("attacker_identified")?,
            benign_misidentified: boolean("benign_misidentified")?,
            bitflips: int("bitflips")?,
            max_victim_disturbance: int("max_victim_disturbance")?,
        })
    }
}

// --- result store -----------------------------------------------------------

/// Append-only JSONL store of completed cells, flushed per line so an
/// interrupted sweep checkpoints everything that finished.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl ResultStore {
    /// Creates a fresh store. Refuses a path that already holds data — a
    /// half-finished sweep must be continued with [`ResultStore::append_to`]
    /// (the CLI's `resume`), not silently truncated.
    pub fn create(path: &Path) -> io::Result<Self> {
        if path.exists() && std::fs::metadata(path)?.len() > 0 {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "result store {} already holds data; use resume (or remove it) instead of overwriting",
                    path.display()
                ),
            ));
        }
        let file = File::create(path)?;
        Ok(ResultStore { path: path.to_path_buf(), writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Opens an existing store for appending. Refuses a missing path — there
    /// is nothing to resume from.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("result store {} does not exist; run a sweep first", path.display()),
            ));
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(ResultStore { path: path.to_path_buf(), writer: Mutex::new(BufWriter::new(file)) })
    }

    /// The file backing the store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one line and flushes it — the per-cell checkpoint.
    ///
    /// # Panics
    /// Panics if the write fails: the store *is* the sweep's output, there
    /// is nothing sensible to degrade to.
    pub fn append(&self, line: &str) {
        let mut writer = self.writer.lock().expect("result store lock poisoned");
        writeln!(writer, "{line}")
            .and_then(|_| writer.flush())
            .expect("writing the campaign result store failed");
    }

    /// The set of completed cell ids recorded in a store. Malformed lines
    /// (e.g. truncated by a kill) are skipped — their cells rerun on resume.
    pub fn completed_cells(path: &Path) -> io::Result<HashSet<String>> {
        let mut cells = HashSet::new();
        for line in BufReader::new(File::open(path)?).lines() {
            if let Some(record) = CellRecord::parse(&line?) {
                cells.insert(record.cell);
            }
        }
        Ok(cells)
    }

    /// Every well-formed cell record of a store, in file order.
    pub fn load(path: &Path) -> io::Result<Vec<CellRecord>> {
        let mut records = Vec::new();
        for line in BufReader::new(File::open(path)?).lines() {
            if let Some(record) = CellRecord::parse(&line?) {
                records.push(record);
            }
        }
        Ok(records)
    }
}

// --- the sweep engine -------------------------------------------------------

/// The definition of a campaign sweep: the (mechanism × N_RH × ±BreakHammer)
/// configuration matrix crossed with the mix suite and the workload seeds.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Experiment scale; `scale.seed` is overridden per entry of `seeds`.
    pub scale: Scale,
    /// Mechanisms swept.
    pub mechanisms: Vec<MechanismKind>,
    /// RowHammer thresholds swept.
    pub nrh_values: Vec<u64>,
    /// BreakHammer off/on arms (the `None` mechanism never gets the `true`
    /// arm: BreakHammer needs a mechanism to observe).
    pub breakhammer_options: Vec<bool>,
    /// `true` sweeps the attack suite (plus scenarios), `false` the benign
    /// suite.
    pub attack: bool,
    /// Workload-generation seeds; each seed regenerates the full mix suite.
    pub seeds: Vec<u64>,
}

impl CampaignSpec {
    /// A spec covering `scale`'s N_RH sweep for the given mechanisms, both
    /// BreakHammer arms, and `scale.seed` as the only seed.
    pub fn from_scale(scale: Scale, mechanisms: Vec<MechanismKind>, attack: bool) -> Self {
        CampaignSpec {
            nrh_values: scale.nrh_values.clone(),
            seeds: vec![scale.seed],
            breakhammer_options: vec![false, true],
            mechanisms,
            attack,
            scale,
        }
    }

    /// The configuration matrix at a given scale (which carries the seed).
    fn configs(&self, scale: &Scale) -> Vec<SystemConfig> {
        let mut configs = Vec::new();
        for &mechanism in &self.mechanisms {
            for &nrh in &self.nrh_values {
                for &bh in &self.breakhammer_options {
                    if mechanism == MechanismKind::None && bh {
                        continue;
                    }
                    configs.push(paper_config(mechanism, nrh, bh, scale));
                }
            }
        }
        configs
    }

    /// Runs the sweep, streaming each completed cell to `store` and skipping
    /// the cells in `completed`. `cell_limit` caps how many cells this
    /// invocation evaluates (used to exercise interruption deterministically
    /// in tests and CI; a real interruption — SIGKILL, OOM — leaves the same
    /// store state, minus any cell that was mid-evaluation).
    pub fn run(
        &self,
        store: &ResultStore,
        completed: &HashSet<String>,
        cell_limit: Option<usize>,
    ) -> SweepSummary {
        let mut summary = SweepSummary::default();
        let mut budget = cell_limit.unwrap_or(usize::MAX);
        for &seed in &self.seeds {
            let mut scale = self.scale.clone();
            scale.seed = seed;
            // Mixes and alone baselines depend on the seed, so each seed
            // gets its own campaign (and its own alone-IPC cache: same app
            // name, different trace).
            let mut campaign = Campaign::new(scale.clone());
            let mixes = campaign.sweep_mixes(self.attack);
            let configs = self.configs(&scale);
            let mut jobs: Vec<(usize, usize)> = Vec::new();
            let mut cells: Vec<String> = Vec::new();
            for (c, config) in configs.iter().enumerate() {
                let digest = config_digest(config);
                for (m, mix) in mixes.iter().enumerate() {
                    summary.total_cells += 1;
                    let id = format!("{digest}/{}/{seed}", mix.name);
                    if completed.contains(&id) {
                        summary.skipped_cells += 1;
                    } else if budget == 0 {
                        summary.deferred_cells += 1;
                    } else {
                        budget -= 1;
                        jobs.push((c, m));
                        cells.push(id);
                    }
                }
            }
            if jobs.is_empty() {
                continue;
            }
            let cache = campaign.warmed_alone_cache().clone();
            let on_cell = |i: usize, record: &RunRecord| {
                store.append(&record_line(&cells[i], seed, self.attack, record));
            };
            evaluate_jobs(&configs, &mixes, &jobs, &cache, scale.worker_threads, &on_cell);
            summary.evaluated_cells += jobs.len();
        }
        summary
    }
}

/// What a sweep invocation did with each cell of the grid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Cells in the full (configuration × mix × seed) grid.
    pub total_cells: usize,
    /// Cells already present in the store (resume skipped them).
    pub skipped_cells: usize,
    /// Cells evaluated and appended by this invocation.
    pub evaluated_cells: usize,
    /// Cells left unevaluated because the `cell_limit` budget ran out.
    pub deferred_cells: usize,
}

impl SweepSummary {
    /// True when the store now covers the whole grid.
    pub fn complete(&self) -> bool {
        self.skipped_cells + self.evaluated_cells == self.total_cells
    }
}

// --- reporting --------------------------------------------------------------

/// Aggregates a result store into one row per (mechanism, N_RH, ±BreakHammer)
/// configuration: cell count, geomean weighted speedup, mean max slowdown,
/// mean energy, and the identification rates.
pub fn report_table(records: &[CellRecord]) -> Table {
    let mut groups: HashMap<(String, u64, bool), Vec<&CellRecord>> = HashMap::new();
    for record in records {
        groups
            .entry((record.mechanism.clone(), record.nrh, record.breakhammer))
            .or_default()
            .push(record);
    }
    let mut keys: Vec<(String, u64, bool)> = groups.keys().cloned().collect();
    keys.sort();
    let mut table = Table::new([
        "config",
        "nrh",
        "cells",
        "geomean_weighted_speedup",
        "mean_max_slowdown",
        "mean_energy_nj",
        "attacker_identified_rate",
        "benign_misidentified_rate",
        "bitflips",
    ]);
    for key in &keys {
        let set = &groups[key];
        let (mechanism, nrh, breakhammer) = key;
        let label = if *breakhammer { format!("{mechanism}+BH") } else { mechanism.clone() };
        let speedups: Vec<f64> = set.iter().map(|r| r.weighted_speedup).collect();
        let mean = |f: &dyn Fn(&CellRecord) -> f64| {
            set.iter().map(|r| f(r)).sum::<f64>() / set.len() as f64
        };
        table.push_row([
            label,
            nrh.to_string(),
            set.len().to_string(),
            fmt3(bh_stats::geometric_mean(&speedups)),
            fmt3(mean(&|r| r.max_slowdown)),
            format!("{:.0}", mean(&|r| r.energy_nj)),
            fmt3(mean(&|r| r.attacker_identified as u64 as f64)),
            fmt3(mean(&|r| r.benign_misidentified as u64 as f64)),
            set.iter().map(|r| r.bitflips).sum::<u64>().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        RunRecord {
            mechanism: MechanismKind::Graphene,
            nrh: 64,
            breakhammer: true,
            mix_class: "HHHA".to_string(),
            mix_name: "HHHA-00".to_string(),
            weighted_speedup: 3.25,
            max_slowdown: 1.5,
            energy_nj: 123456.75,
            preventive_actions: 42,
            latency_ns: [10.5, 20.25, 99.0],
            attacker_identified: true,
            benign_misidentified: false,
            bitflips: 0,
            scenario: Some("fuzz-nbr".to_string()),
            max_victim_disturbance: 17,
        }
    }

    #[test]
    fn record_lines_round_trip() {
        let record = sample_record();
        let line = record_line("deadbeef/HHHA-00/42", 42, true, &record);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.cell, "deadbeef/HHHA-00/42");
        assert_eq!(parsed.mechanism, "Graphene");
        assert_eq!(MechanismKind::parse(&parsed.mechanism), Some(MechanismKind::Graphene));
        assert_eq!(parsed.nrh, 64);
        assert!(parsed.breakhammer);
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.mix, "HHHA-00");
        assert_eq!(parsed.scenario.as_deref(), Some("fuzz-nbr"));
        assert!(parsed.attack);
        assert_eq!(parsed.weighted_speedup, 3.25);
        assert_eq!(parsed.latency_ns, [10.5, 20.25, 99.0]);
        assert_eq!(parsed.preventive_actions, 42);
        assert!(parsed.attacker_identified);
        assert!(!parsed.benign_misidentified);
        assert_eq!(parsed.max_victim_disturbance, 17);

        let mut benign = record;
        benign.scenario = None;
        let line = record_line("deadbeef/HHHH-00/7", 7, false, &benign);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.scenario, None);
        assert!(!parsed.attack);
    }

    #[test]
    fn malformed_and_foreign_lines_are_rejected() {
        assert_eq!(CellRecord::parse(""), None);
        assert_eq!(CellRecord::parse("{\"schema\":1,\"cell\":\"x"), None, "truncated line");
        assert_eq!(CellRecord::parse("not json"), None);
        // A well-formed line from a future schema is rejected, not misread.
        let line = record_line("c/m/1", 1, true, &sample_record()).replacen(
            "\"schema\":1",
            "\"schema\":2",
            1,
        );
        assert_eq!(CellRecord::parse(&line), None);
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let mut record = sample_record();
        record.mix_name = "m\"x\\w — tab\there\n".to_string();
        let line = record_line("c/m/1", 1, true, &record);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.mix, record.mix_name);
    }

    #[test]
    fn config_digest_separates_configurations() {
        let scale = Scale::quick();
        let a = paper_config(MechanismKind::Graphene, 64, true, &scale);
        let b = paper_config(MechanismKind::Graphene, 128, true, &scale);
        assert_eq!(config_digest(&a), config_digest(&a), "digest is stable");
        assert_ne!(config_digest(&a), config_digest(&b));
        assert_eq!(cell_id(&a, "HHHA-00", 42), format!("{}/HHHA-00/42", config_digest(&a)));
    }

    #[test]
    fn store_create_refuses_data_and_append_requires_it() {
        let path = test_path("store-semantics");
        let _ = std::fs::remove_file(&path);
        assert!(ResultStore::append_to(&path).is_err(), "nothing to resume from");
        {
            let store = ResultStore::create(&path).expect("fresh store");
            store.append("{\"schema\":1}");
        }
        assert!(ResultStore::create(&path).is_err(), "refuses to overwrite data");
        assert!(ResultStore::append_to(&path).is_ok());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn completed_cells_skips_malformed_lines() {
        let path = test_path("completed-cells");
        {
            let store = ResultStore::create(&path).expect("fresh store");
            store.append(&record_line("a/m/1", 1, true, &sample_record()));
            store.append("{\"schema\":1,\"cell\":\"trunc");
            store.append(&record_line("b/m/1", 1, true, &sample_record()));
        }
        let cells = ResultStore::completed_cells(&path).expect("store loads");
        assert_eq!(cells, HashSet::from(["a/m/1".to_string(), "b/m/1".to_string()]));
        assert_eq!(ResultStore::load(&path).expect("store loads").len(), 2);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn report_groups_by_configuration() {
        let line_a = record_line("a/m/1", 1, true, &sample_record());
        let mut other = sample_record();
        other.breakhammer = false;
        other.weighted_speedup = 1.0;
        let line_b = record_line("b/m/1", 1, true, &other);
        let records: Vec<CellRecord> =
            [line_a, line_b].iter().map(|l| CellRecord::parse(l).expect("parses")).collect();
        let table = report_table(&records);
        let csv = table.to_csv();
        assert!(csv.contains("Graphene+BH,64,1"), "{csv}");
        assert!(csv.contains("Graphene,64,1"), "{csv}");
    }

    fn test_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bh-campaign-{tag}-{}.jsonl", std::process::id()))
    }
}
