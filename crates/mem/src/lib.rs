//! # bh-mem — the memory controller
//!
//! The memory request scheduler of the BreakHammer reproduction, matching the
//! paper's Table 1 configuration:
//!
//! * 64-entry read and write request queues,
//! * FR-FCFS scheduling with a Cap of 4 on column-over-row reordering,
//! * MOP address mapping,
//! * watermark-driven write draining,
//! * periodic all-bank refresh (tREFI / tRFC),
//! * execution of RowHammer-preventive actions requested by the attached
//!   mitigation mechanism (victim refreshes, AQUA row migrations, RFM
//!   commands, Hydra table traffic) as real DRAM command sequences, and
//! * BreakHammer hooks: every demand activation is attributed to its hardware
//!   thread and every preventive action is reported for score attribution.
//!
//! ## Example
//!
//! ```
//! use bh_dram::{AccessKind, DramChannel, DramGeometry, PhysAddr, ThreadId, TimingParams};
//! use bh_mem::{MemControllerConfig, MemRequest, MemoryController};
//! use bh_mitigation::MechanismKind;
//!
//! let geometry = DramGeometry::paper_ddr5();
//! let timing = TimingParams::ddr5_4800();
//! let mechanism = MechanismKind::Graphene.build(&geometry, &timing, 1024, 0);
//! let channel = DramChannel::with_rowhammer(geometry, timing, 1024);
//! let mut controller =
//!     MemoryController::new(MemControllerConfig::paper_table1(4), channel, mechanism);
//!
//! controller.try_enqueue(MemRequest::read(0, ThreadId(0), PhysAddr(0x4000), 0)).unwrap();
//! let mut responses = Vec::new();
//! for cycle in 0..10_000u64 {
//!     controller.tick(cycle, None);
//!     responses.extend(controller.drain_responses());
//! }
//! assert_eq!(responses.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod controller;
pub mod latency;
pub mod mapping;
pub mod pool;
pub mod request;
pub mod system;

pub use config::MemControllerConfig;
pub use controller::{BhEvent, BhEventKind, BhSink, ControllerStats, MemoryController};
pub use latency::LatencyHistogram;
pub use mapping::{AddressMapping, ChannelInterleave, MappingScheme};
pub use pool::ChannelPool;
pub use request::{MemRequest, MemResponse};
pub use system::{MemorySystem, SteppingStats};
