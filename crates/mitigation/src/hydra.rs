//! Hydra: hybrid group/per-row RowHammer tracking [Qureshi et al., ISCA 2022].
//!
//! Hydra tracks activation counts at two granularities. A small on-chip Group
//! Count Table (GCT) counts activations of *groups* of rows; when a group's
//! count crosses the group threshold, Hydra switches that group to per-row
//! tracking in a Row Count Table (RCT) that lives **in DRAM**, with a small
//! Row Count Cache (RCC) in the memory controller. Per-row counts crossing
//! the refresh threshold trigger preventive refreshes of the row's
//! neighbours.
//!
//! The performance-relevant behaviours reproduced here are (a) the preventive
//! refreshes themselves and (b) the extra DRAM traffic caused by RCC misses
//! and evictions, both of which the paper counts as RowHammer-preventive
//! actions for score attribution (§4.1).

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::{Cycle, DramGeometry, FlatMap, RowAddr, TimingParams};

/// Rows per tracking group (Hydra uses 128 in the paper's configuration).
const GROUP_SIZE: usize = 128;
/// Row Count Cache capacity in entries across the whole controller.
const RCC_ENTRIES: usize = 4096;

/// The Hydra mechanism.
#[derive(Debug)]
pub struct Hydra {
    geometry: DramGeometry,
    blast_radius: usize,
    group_threshold: u64,
    refresh_threshold: u64,
    /// Dense per-group activation counters (the on-chip GCT), indexed by
    /// `flat_bank * groups_per_bank + group`.
    group_counts: Box<[u64]>,
    groups_per_bank: usize,
    /// Per bank: row -> per-row activation count (RCT, conceptually in DRAM;
    /// only escalated groups' rows appear, so the table stays sparse).
    row_counts: Vec<FlatMap<u64>>,
    /// Row Count Cache membership, keyed by `flat_bank << 32 | row`, with a
    /// fixed-size ring buffer providing the FIFO replacement order.
    rcc: FlatMap<()>,
    rcc_fifo: Box<[u64]>,
    rcc_head: usize,
    rcc_len: usize,
    window_cycles: Cycle,
    window_end: Cycle,
    refresh_triggers: u64,
    rcc_misses: u64,
}

impl Hydra {
    /// Creates Hydra for the given system and RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh < 8` or `blast_radius` is zero.
    pub fn new(
        geometry: DramGeometry,
        timing: &TimingParams,
        nrh: u64,
        blast_radius: usize,
    ) -> Self {
        assert!(nrh >= 8, "N_RH must be at least 8");
        assert!(blast_radius > 0, "blast radius must be positive");
        let refresh_threshold = (nrh / 4).max(2);
        let group_threshold = (refresh_threshold / 2).max(1);
        let banks = geometry.banks_per_channel();
        let groups_per_bank = geometry.rows_per_bank.div_ceil(GROUP_SIZE);
        Hydra {
            geometry,
            blast_radius,
            group_threshold,
            refresh_threshold,
            group_counts: vec![0; banks * groups_per_bank].into_boxed_slice(),
            groups_per_bank,
            row_counts: (0..banks).map(|_| FlatMap::with_capacity(64)).collect(),
            rcc: FlatMap::with_capacity(RCC_ENTRIES),
            rcc_fifo: vec![0; RCC_ENTRIES].into_boxed_slice(),
            rcc_head: 0,
            rcc_len: 0,
            window_cycles: timing.t_refw,
            window_end: timing.t_refw,
            refresh_triggers: 0,
            rcc_misses: 0,
        }
    }

    /// The per-row refresh threshold in use.
    pub fn refresh_threshold(&self) -> u64 {
        self.refresh_threshold
    }

    /// The group-escalation threshold in use.
    pub fn group_threshold(&self) -> u64 {
        self.group_threshold
    }

    /// Preventive refreshes triggered so far.
    pub fn refresh_triggers(&self) -> u64 {
        self.refresh_triggers
    }

    /// Row Count Cache misses so far (each costs DRAM traffic).
    pub fn rcc_misses(&self) -> u64 {
        self.rcc_misses
    }

    fn maybe_reset_window(&mut self, cycle: Cycle) {
        if cycle >= self.window_end {
            self.group_counts.fill(0);
            for m in &mut self.row_counts {
                m.clear();
            }
            self.rcc.clear();
            self.rcc_head = 0;
            self.rcc_len = 0;
            while cycle >= self.window_end {
                self.window_end += self.window_cycles;
            }
        }
    }

    /// Touches the RCC for `(bank, row)`, pushing the table-access action
    /// caused by a miss (a fill read, plus a write-back if an entry is
    /// evicted) into `sink`.
    fn access_rcc(&mut self, bank: usize, row: usize, sink: &mut ActionSink) {
        let key = (bank as u64) << 32 | row as u64;
        if self.rcc.contains_key(key) {
            return;
        }
        self.rcc_misses += 1;
        let evicting = self.rcc_len >= RCC_ENTRIES;
        if evicting {
            let old = self.rcc_fifo[self.rcc_head];
            self.rcc_head = (self.rcc_head + 1) % RCC_ENTRIES;
            self.rcc_len -= 1;
            self.rcc.remove(old);
        }
        self.rcc.insert(key, ());
        self.rcc_fifo[(self.rcc_head + self.rcc_len) % RCC_ENTRIES] = key;
        self.rcc_len += 1;
        // The RCT is stored in a reserved region of the same bank; model the
        // fill (and possible write-back) as one table access there.
        let table_row = RowAddr {
            bank: self.geometry.bank_from_flat(bank),
            row: self.geometry.rows_per_bank - 1 - (row % GROUP_SIZE),
        };
        sink.push_table_access(table_row, evicting);
    }
}

impl TriggerMechanism for Hydra {
    fn name(&self) -> &'static str {
        "Hydra"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Hydra
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        self.maybe_reset_window(event.cycle);
        let bank = self.geometry.flat_bank(event.row.bank);
        let group = event.row.row / GROUP_SIZE;

        let group_count = &mut self.group_counts[bank * self.groups_per_bank + group];
        if *group_count < self.group_threshold {
            // Aggregated tracking only: cheap, no DRAM-side table involved.
            *group_count += 1;
            return;
        }

        // Escalated group: per-row tracking through the RCC/RCT.
        self.access_rcc(bank, event.row.row, sink);
        let count = self.row_counts[bank].or_insert(event.row.row as u64, self.group_threshold);
        *count += 1;
        if *count >= self.refresh_threshold {
            *count = 0;
            self.refresh_triggers += 1;
            sink.push_refresh_rows(self.geometry.neighbors(event.row, self.blast_radius));
        }
    }

    fn storage_bits(&self) -> u64 {
        // On-chip storage: the GCT (one counter per group per bank) plus the
        // RCC (tag + counter per entry). The RCT itself lives in DRAM.
        let groups_per_bank = self.geometry.rows_per_bank.div_ceil(GROUP_SIZE) as u64;
        let counter_bits = 64 - self.refresh_threshold.leading_zeros() as u64 + 1;
        let gct_bits = groups_per_bank * counter_bits * self.geometry.banks_per_channel() as u64;
        let tag_bits = 32u64;
        let rcc_bits = RCC_ENTRIES as u64 * (tag_bits + counter_bits);
        gct_bits + rcc_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, ThreadId};

    fn mech(nrh: u64) -> Hydra {
        Hydra::new(DramGeometry::tiny(), &TimingParams::fast_test(), nrh, 1)
    }

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn group_tracking_is_silent_until_escalation() {
        let mut h = mech(256); // refresh threshold 64, group threshold 32
        assert_eq!(h.refresh_threshold(), 64);
        assert_eq!(h.group_threshold(), 32);
        for i in 0..32u64 {
            assert!(h.on_activation_vec(&event(10, i)).is_empty(), "i={i}");
        }
        // The next activation of the escalated group touches the RCT.
        let actions = h.on_activation_vec(&event(10, 32));
        assert!(actions.iter().any(|a| matches!(a, PreventiveAction::TableAccess { .. })));
        assert_eq!(h.rcc_misses(), 1);
    }

    #[test]
    fn hammering_triggers_refresh_of_neighbors() {
        let mut h = mech(64); // refresh threshold 16, group threshold 8
        let mut refreshed = false;
        for i in 0..40u64 {
            for a in h.on_activation_vec(&event(10, i)) {
                if let PreventiveAction::RefreshRows(rows) = a {
                    refreshed = true;
                    assert!(rows.iter().all(|r| r.row == 9 || r.row == 11));
                }
            }
        }
        assert!(refreshed);
        assert!(h.refresh_triggers() >= 1);
    }

    #[test]
    fn different_rows_of_same_group_share_group_counter() {
        let mut h = mech(256);
        // 32 activations spread over the group escalate it even though no
        // single row is hot.
        for i in 0..32u64 {
            assert!(h.on_activation_vec(&event((i % 8) as usize, i)).is_empty());
        }
        let actions = h.on_activation_vec(&event(3, 33));
        assert!(!actions.is_empty(), "escalated group must touch the RCT");
    }

    #[test]
    fn rcc_hits_do_not_cost_table_accesses() {
        let mut h = mech(64);
        // Escalate the group.
        for i in 0..8u64 {
            h.on_activation_vec(&event(10, i));
        }
        let first = h.on_activation_vec(&event(10, 8));
        assert!(first.iter().any(|a| matches!(a, PreventiveAction::TableAccess { .. })));
        let misses_after_first = h.rcc_misses();
        // Subsequent activations of the same row hit the RCC.
        let mut extra_misses = 0;
        for i in 9..14u64 {
            let acts = h.on_activation_vec(&event(10, i));
            if acts.iter().any(|a| matches!(a, PreventiveAction::TableAccess { .. })) {
                extra_misses += 1;
            }
        }
        assert_eq!(extra_misses, 0);
        assert_eq!(h.rcc_misses(), misses_after_first);
    }

    #[test]
    fn window_reset_clears_all_tracking() {
        let timing = TimingParams::fast_test();
        let mut h = Hydra::new(DramGeometry::tiny(), &timing, 64, 1);
        for i in 0..12u64 {
            h.on_activation_vec(&event(10, i));
        }
        assert!(h.rcc_misses() >= 1);
        let far = timing.t_refw + 5;
        // After the reset the group starts cold again: no table access.
        assert!(h.on_activation_vec(&event(10, far)).is_empty());
    }

    #[test]
    fn storage_is_modest_and_grows_with_lower_nrh() {
        let coarse = mech(4096);
        let fine = mech(64);
        // Counter width shrinks with the threshold, but both stay in the
        // kilobyte range (Hydra's selling point vs. per-row SRAM tracking).
        assert!(coarse.storage_bits() > 0);
        assert!(fine.storage_bits() > 0);
        assert!(coarse.storage_bits() < 64 * 1024 * 8 * 4);
    }

    #[test]
    fn metadata() {
        let h = mech(1024);
        assert_eq!(h.name(), "Hydra");
        assert_eq!(h.kind(), MechanismKind::Hydra);
    }
}
