//! D1 negative: BTreeMap in pinned code; HashMap only inside #[cfg(test)].
use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_map_is_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
