//! Central registry of the workspace's `BH_*` environment knobs.
//!
//! Every `BH_*` environment variable read anywhere in the workspace must be
//! registered in [`KNOBS`], and every registered knob must appear in the
//! README's knob table. Both halves are enforced statically by `bh_analyze`
//! rule **E1** (`cargo run -p bh_analyze -- --deny`), so a knob can neither
//! be added silently nor drift out of the documentation.
//!
//! The module also owns the *parse/warn-once* helper every scattered read
//! site shares: a set-but-unusable value (garbage where a number is needed,
//! `0` where a positive count is needed) falls back to its default with a
//! one-time stderr warning naming the variable, the rejected value and the
//! fallback used — one implementation instead of one `static Once` per site.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// One registered `BH_*` environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knob {
    /// Environment-variable name (always `BH_…`).
    pub name: &'static str,
    /// One-line meaning, mirrored by the README knob table.
    pub summary: &'static str,
    /// Human-readable default when the variable is unset.
    pub default: &'static str,
}

/// Every `BH_*` environment variable the workspace reads, sorted by name.
///
/// `bh_analyze` parses this table (rule E1): an `env::var("BH_…")` read of an
/// unregistered name is a lint error, and so is a registered name missing
/// from the README knob table.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "BH_ATTACKER_ENTRIES",
        summary: "trace records generated for the attacker",
        default: "8000",
    },
    Knob {
        name: "BH_BENCH_SAMPLES",
        summary: "samples per bench_hotpath measurement",
        default: "10",
    },
    Knob {
        name: "BH_BENCH_TARGET_MS",
        summary: "per-sample time budget of bench_hotpath (ms)",
        default: "50",
    },
    Knob {
        name: "BH_CELL_TIMEOUT_SECS",
        summary: "campaign overseer: warn when a cell runs longer (wall clock)",
        default: "unset (off)",
    },
    Knob { name: "BH_CHANNELS", summary: "memory channels (sharded memory system)", default: "1" },
    Knob {
        name: "BH_DIGEST_RECORD",
        summary: "set to re-record the golden digest files",
        default: "unset",
    },
    Knob {
        name: "BH_ECC",
        summary: "ECC scheme classifying flips: none | secded",
        default: "none",
    },
    Knob {
        name: "BH_EPOCH_WORKERS",
        summary: "participant count of the epoch-parallel channel pool",
        default: "one per channel",
    },
    Knob {
        name: "BH_FAULT_MODEL",
        summary: "bit-flip model: threshold | probabilistic",
        default: "threshold",
    },
    Knob {
        name: "BH_FIG_NRH",
        summary: "RowHammer threshold of the fixed-threshold figures",
        default: "per figure (paper: 1024)",
    },
    Knob {
        name: "BH_FLIP_PROBABILITY",
        summary: "per-crossing flip probability in [0, 1]",
        default: "0.5",
    },
    Knob {
        name: "BH_INSTRUCTIONS",
        summary: "instructions each benign core retires",
        default: "60000",
    },
    Knob {
        name: "BH_MIXES_PER_CLASS",
        summary: "workloads per mix class (paper: 15)",
        default: "1",
    },
    Knob {
        name: "BH_NRH_LIST",
        summary: "comma-separated N_RH sweep",
        default: "4096,1024,256,64",
    },
    Knob {
        name: "BH_NRH_VARIATION",
        summary: "per-row N_RH variation half-width in [0, 1)",
        default: "0.1",
    },
    Knob {
        name: "BH_SCENARIOS",
        summary: "attack-scenario names (all = whole catalog)",
        default: "none",
    },
    Knob { name: "BH_SEED", summary: "workload-generation seed", default: "42" },
    Knob {
        name: "BH_TABLE3_WINDOW",
        summary: "Table 3 observation window (instructions)",
        default: "2000000",
    },
    Knob {
        name: "BH_TEST_FORCE_PANIC_MIX",
        summary: "test hook: panic campaign cells whose mix name matches",
        default: "unset",
    },
    Knob {
        name: "BH_TEST_FORCE_SPIN_MIX",
        summary: "test hook: inject a livelock into campaign cells whose mix name matches",
        default: "unset",
    },
    Knob {
        name: "BH_THREADS",
        summary: "legacy spelling of BH_WORKERS (BH_WORKERS wins)",
        default: "all cores",
    },
    Knob {
        name: "BH_TRACE_ENTRIES",
        summary: "trace records per benign application",
        default: "20000",
    },
    Knob {
        name: "BH_WATCHDOG_EPOCH_CYCLES",
        summary: "watchdog epoch length (DRAM cycles; 0 = derive from BreakHammer window)",
        default: "0",
    },
    Knob {
        name: "BH_WATCHDOG_MAX_EPOCHS",
        summary: "per-run epoch budget (0 = unlimited)",
        default: "0",
    },
    Knob {
        name: "BH_WATCHDOG_MAX_PREVENTIVE",
        summary: "per-run preventive-action budget (0 = unlimited)",
        default: "0",
    },
    Knob {
        name: "BH_WATCHDOG_STALL_EPOCHS",
        summary: "consecutive zero-progress epochs before a livelock verdict",
        default: "8",
    },
    Knob {
        name: "BH_WORKERS",
        summary: "worker threads for parallel evaluation",
        default: "all cores",
    },
];

/// True if `name` is a registered knob.
pub fn is_registered(name: &str) -> bool {
    KNOBS.iter().any(|k| k.name == name)
}

/// The registered knob named `name`, if any.
pub fn find(name: &str) -> Option<&'static Knob> {
    KNOBS.iter().find(|k| k.name == name)
}

/// Reads a registered knob's raw value from the environment.
///
/// The debug assertion keeps runtime reads honest with the registry; release
/// binaries read the variable either way (the static E1 pass is the real
/// gate).
pub fn raw(name: &str) -> Option<String> {
    debug_assert!(is_registered(name), "`{name}` is not registered in bh_core::knobs::KNOBS");
    std::env::var(name).ok()
}

/// Emits `warning: {message}` on stderr at most once per knob name for the
/// lifetime of the process — the shared warn-once guard behind every parse
/// helper (one implementation instead of one `static Once` per read site).
fn warn_once(name: &str, message: &str) {
    static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut warned = WARNED.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    // Leak-free interning is not worth it for a bounded registry: look the
    // name up in the static table so the set holds `&'static str` only.
    let Some(knob) = find(name) else { return };
    if warned.insert(knob.name) {
        eprintln!("warning: {message}");
    }
}

/// Reads and parses a registered knob with a caller-supplied parser.
///
/// Returns `None` when the variable is unset. When it is set but `parse`
/// rejects it, warns once on stderr — naming the variable, the rejected
/// value (`problem` describes what was expected) and `fallback_desc` — and
/// returns `None` so the caller applies its default. This is the one
/// parse/warn-once implementation every knob read site shares.
pub fn parse_or_warn<T>(
    name: &str,
    parse: impl Fn(&str) -> Option<T>,
    problem: &str,
    fallback_desc: &str,
) -> Option<T> {
    let raw = raw(name)?;
    match parse(raw.trim()) {
        Some(value) => Some(value),
        None => {
            warn_once(name, &format!("{name}={raw:?} {problem}; falling back to {fallback_desc}"));
            None
        }
    }
}

/// Parses a knob as a positive count, warning once and returning `None` on
/// garbage or `0`.
pub fn positive_usize(name: &str, fallback_desc: &str) -> Option<usize> {
    parse_or_warn(
        name,
        |raw| raw.parse::<usize>().ok().filter(|&n| n > 0),
        "is not a positive integer",
        fallback_desc,
    )
}

/// Parses a knob as any `u64` (0 included), warning once and returning
/// `None` on garbage.
pub fn u64_value(name: &str, fallback_desc: &str) -> Option<u64> {
    parse_or_warn(name, |raw| raw.parse::<u64>().ok(), "is not a number", fallback_desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in KNOBS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "KNOBS must stay sorted and duplicate-free: {} >= {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn every_name_uses_the_bh_prefix() {
        for knob in KNOBS {
            assert!(knob.name.starts_with("BH_"), "{} must start with BH_", knob.name);
            assert!(!knob.summary.is_empty());
            assert!(!knob.default.is_empty());
        }
    }

    #[test]
    fn lookup_finds_registered_names_only() {
        assert!(is_registered("BH_WORKERS"));
        assert!(!is_registered("BH_NOT_A_KNOB"));
        assert_eq!(find("BH_SEED").unwrap().default, "42");
        assert!(find("BH_NOT_A_KNOB").is_none());
    }

    #[test]
    fn unset_knob_reads_none() {
        // BH_TEST_FORCE_PANIC_MIX is never set in the test environment.
        assert_eq!(raw("BH_TEST_FORCE_PANIC_MIX"), None);
        assert_eq!(positive_usize("BH_TEST_FORCE_PANIC_MIX", "default"), None);
    }
}
