//! # bh-dram — cycle-level DRAM device model
//!
//! This crate is the lowest layer of the BreakHammer (MICRO 2024)
//! reproduction: a from-scratch, cycle-level model of the DRAM devices behind
//! one memory channel. It provides
//!
//! * the DRAM organization ([`DramGeometry`], [`BankAddr`], [`RowAddr`]),
//! * the command set ([`DramCommand`], [`CommandKind`]),
//! * JEDEC-style timing constraints with DDR4-3200 and DDR5-4800 presets
//!   ([`TimingParams`]),
//! * the per-bank / per-bank-group / per-rank state machine and timing engine
//!   ([`DramChannel`]),
//! * an event-based DRAM energy model ([`EnergyParams`], [`EnergyCounters`]),
//! * and a RowHammer victim-disturbance tracker ([`RowHammerTracker`]) used to
//!   verify that mitigation mechanisms — with or without BreakHammer attached —
//!   never allow a row to accumulate `N_RH` activations without a refresh.
//!
//! The memory controller in `bh-mem` drives this model; the full-system
//! simulator lives in `bh-sim`.
//!
//! ## Example
//!
//! ```
//! use bh_dram::{BankAddr, DramChannel, DramCommand, DramGeometry, DramLocation, TimingParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut channel = DramChannel::new(DramGeometry::paper_ddr5(), TimingParams::ddr5_4800());
//! let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
//!
//! // Open a row, read a column, close the row — respecting tRCD/tRAS/tRP.
//! let act = DramCommand::activate(bank, 42);
//! channel.issue(&act, 0)?;
//! let loc = DramLocation { channel: 0, bank, row: 42, column: 3 };
//! let rd = DramCommand::read(loc);
//! let when = channel.earliest_issue(&rd);
//! let outcome = channel.issue(&rd, when)?;
//! assert!(outcome.data_ready_at.is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod device;
pub mod energy;
pub mod error;
pub mod fault;
pub mod flat;
pub mod geometry;
pub mod rowhammer;
pub mod timing;
pub mod types;

pub use bank::{BankGroupState, BankState, RankState, RowState};
pub use command::{CommandKind, DramCommand};
pub use device::{CommandOutcome, DeviceConfig, DramChannel, DramStats};
pub use energy::{EnergyCounters, EnergyParams};
pub use error::DramError;
pub use fault::{
    classify_flips, EccClassification, EccMode, FaultConfig, FaultModel, SuccessCriterion,
};
pub use flat::FlatMap;
pub use geometry::{BankAddr, DramGeometry, DramLocation, NeighborRows, RowAddr};
pub use rowhammer::{BitflipEvent, RowHammerTracker};
pub use timing::{TimingAdjustment, TimingParams};
pub use types::{AccessKind, Cycle, CycleDelta, PhysAddr, ThreadId};
