//! Offline stand-in for the `proptest` property-testing harness.
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the subset its property tests use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, range / tuple / [`strategy::Just`] / [`strategy::any`] /
//! `collection::vec` strategies, [`prop_oneof!`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Semantics versus the real crate: cases are generated from a
//! deterministic per-test seed (a hash of the test name), assertions fail
//! fast via `assert!` with the standard panic message, and there is **no
//! shrinking** — a failing case reports the inputs via the panic message of
//! the underlying assertion. For CI regression tests of a deterministic
//! simulator this preserves the guarantees that matter: uniform coverage of
//! the input space and reproducible failures.

#![warn(missing_docs)]

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case generator handed to strategies.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// The random source strategies draw from; seeded per test from the
    /// test's name so every run explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Creates the deterministic generator for the named test.
        pub fn deterministic(test_name: &str) -> Self {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut hasher);
            TestRng(StdRng::seed_from_u64(hasher.finish()))
        }
    }
}

/// Strategy trait and the built-in strategy combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`, mirroring
    /// `proptest::strategy::Strategy` (minus shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy that always yields a clone of one value, mirroring
    /// `proptest::strategy::Just`.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies; the expansion of
    /// [`crate::prop_oneof!`].
    #[derive(Debug, Clone)]
    pub struct OneOf<S: Strategy>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
            let index = rng.0.gen_range(0..self.0.len());
            self.0[index].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy, mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.0.gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy producing any value of `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec()`]: an exact `usize` or a
    /// (half-open or inclusive) range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length comes from `len`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of `proptest::prelude::prop` (module alias used for
    /// `prop::collection::vec` style paths).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition,
/// mirroring `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies, mirroring `prop_oneof!` (the shim
/// requires the alternatives to share one strategy type, which every
/// in-tree use satisfies).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($strategy),+])
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the form used in-tree: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name),
                ));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds; tuple strategies decompose.
        #[test]
        fn ranges_and_tuples(x in 3u32..10, pair in (0usize..4, 0.5f64..1.5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((0.5..1.5).contains(&pair.1));
        }

        /// Vec strategies honour their length specification.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0u64..100, 2..5), exact in crate::collection::vec(any::<bool>(), 3usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(exact.len(), 3);
        }

        /// prop_oneof and Just yield only the listed alternatives; assume
        /// filters cases.
        #[test]
        fn oneof_and_assume(choice in prop_oneof![Just(-1i64), Just(1i64)], n in 0u8..20) {
            prop_assume!(n % 2 == 0);
            prop_assert!(choice == -1 || choice == 1);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(choice, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-test");
        let mut b = TestRng::deterministic("same-test");
        let strat = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
