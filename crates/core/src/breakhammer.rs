//! The BreakHammer mechanism (§4 of the paper).
//!
//! BreakHammer divides time into *throttling windows* and, in each window,
//!
//! 1. **observes** RowHammer-preventive actions performed by the attached
//!    mitigation mechanism, attributing a per-thread *RowHammer-preventive
//!    score* proportionally to each thread's row activations since the last
//!    preventive action (§4.1, Alg. 1 lines 3–7);
//! 2. **identifies suspect threads** by thresholded deviation from the mean:
//!    a thread is a suspect if its score exceeds `TH_threat` *and* exceeds the
//!    mean score by a factor of `TH_outlier` (§4.2, Alg. 1 lines 8–18);
//! 3. **throttles** each suspect by shrinking its dynamic memory-request
//!    quota — the number of last-level-cache miss buffers (MSHRs) it may
//!    allocate (§4.3, Expression 1) — and restores the full quota once the
//!    thread stays benign for a whole window.
//!
//! The LLC (in `bh-cpu`) consults [`BreakHammer::quota`] before allocating a
//! miss buffer; the memory controller (in `bh-mem`) reports activations and
//! preventive actions.

use crate::config::BreakHammerConfig;
use crate::scores::InterleavedScores;
use bh_dram::{Cycle, ThreadId};
use bh_mitigation::ScoreAttribution;
use serde::{Deserialize, Serialize};

/// Running statistics exposed for experiments and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakHammerStats {
    /// Preventive actions observed.
    pub actions_observed: u64,
    /// Preventive actions observed per memory channel (indexed by channel;
    /// pre-sized to the system's channel count by
    /// [`BreakHammer::declare_channels`], so zero-action channels report an
    /// explicit 0 instead of being absent). The scores themselves are
    /// system-wide — this only records where the triggering tracker lived.
    #[serde(default)]
    pub actions_per_channel: Vec<u64>,
    /// Suspect identifications (at most one per thread per window).
    pub suspect_identifications: u64,
    /// Quota restorations after a clean window.
    pub quota_restorations: u64,
    /// Completed throttling windows.
    pub windows_completed: u64,
}

/// Per-thread throttling state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadState {
    /// Row activations performed since the last preventive action (Alg. 1's
    /// `Activations`); reset whenever scores are attributed.
    activations_since_action: u64,
    /// Progress toward the next per-activation-quota score increment (REGA).
    quota_progress: u64,
    /// Current dynamic request quota in MSHRs (`Q_i`).
    quota: usize,
    /// Was the thread identified as a suspect in the *previous* window
    /// (`recent_suspect_i`)?
    recent_suspect: bool,
    /// Has the thread been identified as a suspect in the *current* window?
    suspect_now: bool,
    /// Lifetime count of windows in which the thread was a suspect.
    suspect_windows: u64,
}

/// The BreakHammer throttling controller.
#[derive(Debug, Clone)]
pub struct BreakHammer {
    config: BreakHammerConfig,
    attribution: ScoreAttribution,
    scores: InterleavedScores,
    threads: Vec<ThreadState>,
    window_end: Cycle,
    stats: BreakHammerStats,
    /// Bumped whenever any thread's quota changes; lets the simulator skip
    /// re-propagating unchanged quotas into the LLC on its per-cycle path.
    quota_version: u64,
}

impl BreakHammer {
    /// Creates BreakHammer with the given configuration and the score
    /// attribution method of the attached mitigation mechanism.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`BreakHammerConfig::validate`]).
    pub fn new(config: BreakHammerConfig, attribution: ScoreAttribution) -> Self {
        config.validate().expect("invalid BreakHammer configuration");
        let threads = (0..config.num_threads)
            .map(|_| ThreadState {
                activations_since_action: 0,
                quota_progress: 0,
                quota: config.total_mshrs,
                recent_suspect: false,
                suspect_now: false,
                suspect_windows: 0,
            })
            .collect();
        let window_end = config.window_cycles;
        let scores = InterleavedScores::new(config.num_threads);
        BreakHammer {
            config,
            attribution,
            scores,
            threads,
            window_end,
            stats: BreakHammerStats::default(),
            quota_version: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BreakHammerConfig {
        &self.config
    }

    /// Running statistics.
    pub fn stats(&self) -> &BreakHammerStats {
        &self.stats
    }

    /// The current dynamic request quota (allowed in-flight LLC miss buffers)
    /// of `thread`.
    pub fn quota(&self, thread: ThreadId) -> usize {
        self.threads[thread.index()].quota
    }

    /// True if `thread` is currently marked as a suspect.
    pub fn is_suspect(&self, thread: ThreadId) -> bool {
        self.threads[thread.index()].suspect_now
    }

    /// True if `thread` was a suspect in the previous throttling window.
    pub fn was_recent_suspect(&self, thread: ThreadId) -> bool {
        self.threads[thread.index()].recent_suspect
    }

    /// Number of windows in which `thread` has been identified as a suspect.
    pub fn suspect_windows(&self, thread: ThreadId) -> u64 {
        self.threads[thread.index()].suspect_windows
    }

    /// Declares the number of memory channels whose trackers report to this
    /// instance: pre-sizes [`BreakHammerStats::actions_per_channel`] so every
    /// channel has an entry (zero-action channels included) and consumers can
    /// zip it against per-channel result breakdowns. Called by the memory
    /// system at construction; idempotent, never shrinks.
    pub fn declare_channels(&mut self, channels: usize) {
        if self.stats.actions_per_channel.len() < channels {
            self.stats.actions_per_channel.resize(channels, 0);
        }
    }

    /// Monotone counter that increments whenever any thread's quota changes
    /// (throttling or restoration). Consumers that mirror the quotas (the
    /// LLC) can skip refreshing them while the version is unchanged.
    pub fn quota_version(&self) -> u64 {
        self.quota_version
    }

    /// The cycle at which the current throttling window ends (i.e. the next
    /// cycle whose [`BreakHammer::advance_to`] rotates the counter sets and
    /// may restore quotas). The event-driven simulation kernel treats this
    /// window edge as a wake-up event so quota restorations become visible
    /// to the LLC at exactly the same cycle as under per-cycle ticking.
    pub fn next_window_end(&self) -> Cycle {
        self.window_end
    }

    /// The thread's RowHammer-preventive score in the active counter set.
    ///
    /// This is the value BreakHammer optionally exposes to system software
    /// (the "CR3-like" read-only register interface of §4).
    pub fn score(&self, thread: ThreadId) -> f64 {
        self.scores.score(thread)
    }

    /// Scores of all threads in the active counter set.
    pub fn scores(&self) -> &[f64] {
        self.scores.active_scores()
    }

    /// Advances the throttling-window state machine to `cycle`, rotating the
    /// counter sets and updating `recent_suspect` flags / quotas at each
    /// window boundary. Called internally by the event hooks; exposed so the
    /// simulator can also drive it when no events occur for a long time.
    pub fn advance_to(&mut self, cycle: Cycle) {
        while cycle >= self.window_end {
            for t in &mut self.threads {
                if t.suspect_now {
                    t.suspect_windows += 1;
                } else if t.quota != self.config.total_mshrs {
                    // A full clean window restores the thread's quota (§4.3).
                    t.quota = self.config.total_mshrs;
                    self.stats.quota_restorations += 1;
                    self.quota_version += 1;
                }
                t.recent_suspect = t.suspect_now;
                t.suspect_now = false;
            }
            self.scores.rotate();
            self.window_end += self.config.window_cycles;
            self.stats.windows_completed += 1;
        }
    }

    /// Reports that `thread` caused a row activation at `cycle`.
    ///
    /// For most mechanisms this only trains the activation-attribution
    /// counters; for per-activation-quota attribution (REGA) it may directly
    /// increment the thread's score and run suspect identification.
    pub fn on_activation(&mut self, thread: ThreadId, cycle: Cycle) {
        self.advance_to(cycle);
        let idx = thread.index();
        self.threads[idx].activations_since_action += 1;
        if let ScoreAttribution::PerActivationQuota { quota } = self.attribution {
            self.threads[idx].quota_progress += 1;
            if self.threads[idx].quota_progress >= quota {
                self.threads[idx].quota_progress = 0;
                self.scores.add(thread, 1.0);
                self.identify_suspects();
            }
        }
    }

    /// Reports that the attached mitigation mechanism performed one
    /// RowHammer-preventive action at `cycle`.
    ///
    /// Implements Alg. 1: the action's score (1.0) is split across threads
    /// proportionally to their activations since the previous action, the
    /// per-thread activation counters are reset, and suspect identification
    /// runs on the updated scores.
    ///
    /// Single-channel shorthand for
    /// [`BreakHammer::on_preventive_action_from`] with channel 0.
    pub fn on_preventive_action(&mut self, cycle: Cycle) {
        self.on_preventive_action_from(0, cycle);
    }

    /// Reports a preventive action performed by the tracker of memory
    /// `channel` at `cycle`.
    ///
    /// BreakHammer observes every channel's mitigation instance and
    /// aggregates all of them into the same system-wide per-thread scores
    /// (the paper's memory-system-wide observer, §5); the channel only feeds
    /// the per-channel statistics.
    pub fn on_preventive_action_from(&mut self, channel: usize, cycle: Cycle) {
        self.advance_to(cycle);
        self.stats.actions_observed += 1;
        if self.stats.actions_per_channel.len() <= channel {
            self.stats.actions_per_channel.resize(channel + 1, 0);
        }
        self.stats.actions_per_channel[channel] += 1;
        if matches!(self.attribution, ScoreAttribution::PerActivationQuota { .. }) {
            // REGA-style mechanisms have no discrete actions; nothing to do.
            return;
        }
        let total: u64 = self.threads.iter().map(|t| t.activations_since_action).sum();
        if total == 0 {
            return;
        }
        for (idx, t) in self.threads.iter_mut().enumerate() {
            if t.activations_since_action > 0 {
                let share = t.activations_since_action as f64 / total as f64;
                self.scores.add(ThreadId(idx), share);
                t.activations_since_action = 0;
            }
        }
        self.identify_suspects();
    }

    /// Alg. 1 lines 8–18: thresholded deviation from the mean.
    fn identify_suspects(&mut self) {
        let mean = self.scores.mean();
        let max_deviation = (1.0 + self.config.outlier_threshold) * mean;
        for idx in 0..self.threads.len() {
            let score = self.scores.score(ThreadId(idx));
            if score < self.config.threat_threshold {
                continue;
            }
            if score > max_deviation {
                self.mark_suspect(idx);
            }
        }
    }

    /// Marks thread `idx` as a suspect and applies Expression 1 (at most once
    /// per throttling window).
    fn mark_suspect(&mut self, idx: usize) {
        let t = &mut self.threads[idx];
        if t.suspect_now {
            return;
        }
        t.suspect_now = true;
        self.stats.suspect_identifications += 1;
        self.quota_version += 1;
        t.quota = if t.recent_suspect {
            t.quota.saturating_sub(self.config.old_suspect_penalty)
        } else {
            (t.quota / self.config.new_suspect_divisor).max(1)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakHammerConfig {
        BreakHammerConfig::fast_test(4, 64)
    }

    fn bh() -> BreakHammer {
        BreakHammer::new(config(), ScoreAttribution::ProportionalToActivations)
    }

    /// Drives one "attack round": the attacker performs `attacker_acts`
    /// activations, each benign thread performs `benign_acts`, then one
    /// preventive action is observed.
    fn round(b: &mut BreakHammer, cycle: Cycle, attacker_acts: u64, benign_acts: u64) {
        for _ in 0..attacker_acts {
            b.on_activation(ThreadId(0), cycle);
        }
        for t in 1..4 {
            for _ in 0..benign_acts {
                b.on_activation(ThreadId(t), cycle);
            }
        }
        b.on_preventive_action(cycle);
    }

    #[test]
    fn initial_state_gives_everyone_full_quota() {
        let b = bh();
        for t in 0..4 {
            assert_eq!(b.quota(ThreadId(t)), 64);
            assert!(!b.is_suspect(ThreadId(t)));
            assert_eq!(b.score(ThreadId(t)), 0.0);
        }
    }

    #[test]
    fn scores_are_attributed_proportionally_to_activations() {
        let mut b = bh();
        // Attacker does 75% of the activations, the three benign threads 25%.
        round(&mut b, 0, 30, 10 / 3);
        let attacker_score = b.score(ThreadId(0));
        let benign_score = b.score(ThreadId(1));
        assert!(attacker_score > benign_score);
        let total: f64 = b.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "one action distributes exactly one score unit");
    }

    #[test]
    fn attacker_is_identified_and_throttled() {
        let mut b = bh();
        // Attacker causes virtually all activations across many actions.
        for i in 0..10u64 {
            round(&mut b, i * 10, 100, 1);
        }
        assert!(b.is_suspect(ThreadId(0)), "attacker must be a suspect");
        assert!(!b.is_suspect(ThreadId(1)));
        // New suspect: quota divided by P_newsuspect (64 / 10 = 6).
        assert_eq!(b.quota(ThreadId(0)), 6);
        assert_eq!(b.quota(ThreadId(1)), 64);
        assert_eq!(b.stats().suspect_identifications, 1);
    }

    #[test]
    fn threat_threshold_prevents_marking_low_score_threads() {
        let mut b = bh();
        // Only 2 actions: even though the attacker dominates, its score (≈2)
        // is below TH_threat = 4, so nobody is marked.
        for i in 0..2u64 {
            round(&mut b, i, 100, 0);
        }
        assert!(!b.is_suspect(ThreadId(0)));
        assert_eq!(b.quota(ThreadId(0)), 64);
    }

    #[test]
    fn balanced_threads_are_never_suspects() {
        let mut b = bh();
        for i in 0..50u64 {
            round(&mut b, i * 10, 10, 10);
        }
        for t in 0..4 {
            assert!(!b.is_suspect(ThreadId(t)), "thread {t}");
            assert_eq!(b.quota(ThreadId(t)), 64);
        }
        assert_eq!(b.stats().suspect_identifications, 0);
    }

    #[test]
    fn persistent_attacker_loses_quota_gradually_across_windows() {
        let cfg = config();
        let window = cfg.window_cycles;
        let mut b = BreakHammer::new(cfg, ScoreAttribution::ProportionalToActivations);
        // Window 0: become a suspect -> quota 64/10 = 6.
        for i in 0..10u64 {
            round(&mut b, i, 100, 1);
        }
        assert_eq!(b.quota(ThreadId(0)), 6);
        // Window 1: still attacking -> recent suspect, quota 6 - 1 = 5.
        for i in 0..10u64 {
            round(&mut b, window + i, 100, 1);
        }
        assert_eq!(b.quota(ThreadId(0)), 5);
        assert!(b.was_recent_suspect(ThreadId(0)));
        // Window 2: keep attacking -> 4.
        for i in 0..10u64 {
            round(&mut b, 2 * window + i, 100, 1);
        }
        assert_eq!(b.quota(ThreadId(0)), 4);
        assert!(b.suspect_windows(ThreadId(0)) >= 2);
    }

    #[test]
    fn quota_is_restored_after_a_clean_window() {
        let cfg = config();
        let window = cfg.window_cycles;
        let mut b = BreakHammer::new(cfg, ScoreAttribution::ProportionalToActivations);
        for i in 0..10u64 {
            round(&mut b, i, 100, 1);
        }
        assert_eq!(b.quota(ThreadId(0)), 6);
        // The attacker goes quiet for two full windows (benign threads keep
        // running); its quota must be restored.
        for i in 0..10u64 {
            round(&mut b, window + i * 10, 0, 10);
        }
        b.advance_to(3 * window + 1);
        assert_eq!(b.quota(ThreadId(0)), 64);
        assert!(b.stats().quota_restorations >= 1);
        assert!(!b.is_suspect(ThreadId(0)));
    }

    #[test]
    fn quota_never_reaches_zero_on_first_identification() {
        let mut cfg = config();
        cfg.total_mshrs = 8;
        cfg.new_suspect_divisor = 100;
        let mut b = BreakHammer::new(cfg, ScoreAttribution::ProportionalToActivations);
        for i in 0..10u64 {
            round(&mut b, i, 100, 1);
        }
        assert_eq!(b.quota(ThreadId(0)), 1);
    }

    #[test]
    fn old_suspect_penalty_saturates_at_zero() {
        let cfg = config();
        let window = cfg.window_cycles;
        let mut b = BreakHammer::new(cfg, ScoreAttribution::ProportionalToActivations);
        // Keep attacking for many windows; quota goes 6,5,4,...,0 and stays 0.
        for w in 0..12u64 {
            for i in 0..10u64 {
                round(&mut b, w * window + i, 100, 1);
            }
        }
        assert_eq!(b.quota(ThreadId(0)), 0);
    }

    #[test]
    fn per_activation_quota_attribution_scores_without_actions() {
        let cfg = config();
        let mut b = BreakHammer::new(cfg, ScoreAttribution::PerActivationQuota { quota: 10 });
        for i in 0..1000u64 {
            b.on_activation(ThreadId(0), i);
        }
        // 1000 activations at quota 10 = score 100 for the lone aggressor.
        assert!((b.score(ThreadId(0)) - 100.0).abs() < 1e-9);
        assert!(b.is_suspect(ThreadId(0)));
        // Preventive-action reports are ignored under this attribution.
        b.on_preventive_action(1000);
        assert!((b.score(ThreadId(0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn multithreaded_rigging_requires_overwhelming_thread_share() {
        // Security property (§5.2): with 1 attack thread out of 4, the
        // attacker cannot stay below the outlier bound while triggering many
        // times the benign average.
        let mut b = bh();
        for i in 0..40u64 {
            round(&mut b, i * 10, 50, 10);
        }
        assert!(b.is_suspect(ThreadId(0)));

        // With 3 of 4 threads attacking equally, each attacker stays closer to
        // the mean and (depending on TH_outlier) may evade identification —
        // but the per-attacker score is then bounded by Expression 2.
        let mut b2 = bh();
        for i in 0..40u64 {
            for t in 0..3 {
                for _ in 0..50 {
                    b2.on_activation(ThreadId(t), i * 10);
                }
            }
            for _ in 0..10 {
                b2.on_activation(ThreadId(3), i * 10);
            }
            b2.on_preventive_action(i * 10);
        }
        let mean: f64 = b2.scores().iter().sum::<f64>() / 4.0;
        let bound = (1.0 + b2.config().outlier_threshold) * mean;
        for t in 0..3 {
            if !b2.is_suspect(ThreadId(t)) {
                assert!(b2.score(ThreadId(t)) <= bound + 1.0);
            }
        }
    }

    #[test]
    fn windows_completed_counts_rotations() {
        let cfg = config();
        let window = cfg.window_cycles;
        let mut b = BreakHammer::new(cfg, ScoreAttribution::ProportionalToActivations);
        b.advance_to(window * 5 + 1);
        assert_eq!(b.stats().windows_completed, 5);
    }
}
