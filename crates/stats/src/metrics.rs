//! System-level performance metrics used throughout the paper's evaluation.
//!
//! The paper reports *weighted speedup* [Eyerman & Eeckhout, Snavely &
//! Tullsen] as the system-performance metric and *maximum slowdown of a
//! benign application* as the unfairness metric. Both are computed from each
//! application's instructions-per-cycle when running *shared* (in the
//! multi-programmed mix) versus *alone* (single-core on the same system).

use serde::{Deserialize, Serialize};

/// Per-application performance sample: IPC alone and IPC in the shared mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppPerf {
    /// Instructions per cycle when the application runs alone.
    pub ipc_alone: f64,
    /// Instructions per cycle when the application runs in the mix.
    pub ipc_shared: f64,
}

impl AppPerf {
    /// Creates a sample, validating that both IPCs are positive and finite.
    ///
    /// # Panics
    /// Panics if either IPC is non-positive or non-finite.
    pub fn new(ipc_alone: f64, ipc_shared: f64) -> Self {
        assert!(ipc_alone.is_finite() && ipc_alone > 0.0, "ipc_alone must be positive");
        assert!(ipc_shared.is_finite() && ipc_shared > 0.0, "ipc_shared must be positive");
        AppPerf { ipc_alone, ipc_shared }
    }

    /// The application's normalized progress (shared / alone), i.e. its
    /// individual speedup contribution. At most ~1.0 in a well-behaved system.
    pub fn normalized_progress(&self) -> f64 {
        self.ipc_shared / self.ipc_alone
    }

    /// The application's slowdown (alone / shared), ≥ 1.0 when sharing hurts.
    pub fn slowdown(&self) -> f64 {
        self.ipc_alone / self.ipc_shared
    }
}

/// Weighted speedup of a workload mix: `Σ_i IPC_shared_i / IPC_alone_i`.
///
/// # Panics
/// Panics if `apps` is empty.
///
/// # Examples
/// ```
/// use bh_stats::{weighted_speedup, AppPerf};
/// let apps = [AppPerf::new(2.0, 1.0), AppPerf::new(1.0, 0.5)];
/// assert!((weighted_speedup(&apps) - 1.0).abs() < 1e-12);
/// ```
pub fn weighted_speedup(apps: &[AppPerf]) -> f64 {
    assert!(!apps.is_empty(), "weighted speedup of an empty mix is undefined");
    apps.iter().map(AppPerf::normalized_progress).sum()
}

/// Harmonic mean of per-application speedups — an alternative
/// fairness-sensitive system metric.
///
/// # Panics
/// Panics if `apps` is empty.
pub fn harmonic_speedup(apps: &[AppPerf]) -> f64 {
    assert!(!apps.is_empty(), "harmonic speedup of an empty mix is undefined");
    apps.len() as f64 / apps.iter().map(|a| 1.0 / a.normalized_progress()).sum::<f64>()
}

/// Unfairness metric used by the paper: the maximum slowdown experienced by
/// any (benign) application in the mix.
///
/// # Panics
/// Panics if `apps` is empty.
pub fn max_slowdown(apps: &[AppPerf]) -> f64 {
    assert!(!apps.is_empty(), "max slowdown of an empty mix is undefined");
    apps.iter().map(AppPerf::slowdown).fold(f64::MIN, f64::max)
}

/// Geometric mean of a sequence of positive values (used for the `geomean`
/// columns in Figs. 6, 7, 13 and 14).
///
/// # Panics
/// Panics if `values` is empty or contains a non-positive value.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty set is undefined");
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0 && v.is_finite(), "geometric mean requires positive finite values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of an empty set is undefined");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Normalizes every value in `values` to `baseline` (value / baseline).
///
/// # Panics
/// Panics if `baseline` is zero or non-finite.
pub fn normalize_to(values: &[f64], baseline: f64) -> Vec<f64> {
    assert!(baseline.is_finite() && baseline != 0.0, "baseline must be finite and non-zero");
    values.iter().map(|v| v / baseline).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_perf_derived_quantities() {
        let a = AppPerf::new(2.0, 1.0);
        assert!((a.normalized_progress() - 0.5).abs() < 1e-12);
        assert!((a.slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ipc_shared must be positive")]
    fn app_perf_rejects_zero_shared_ipc() {
        let _ = AppPerf::new(1.0, 0.0);
    }

    #[test]
    fn weighted_speedup_of_unimpeded_mix_equals_core_count() {
        let apps = vec![AppPerf::new(1.5, 1.5); 4];
        assert!((weighted_speedup(&apps) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_drops_with_interference() {
        let free = vec![AppPerf::new(1.0, 1.0); 4];
        let contended = vec![AppPerf::new(1.0, 0.25); 4];
        assert!(weighted_speedup(&contended) < weighted_speedup(&free));
        assert!((weighted_speedup(&contended) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_speedup_is_bounded_by_worst_app() {
        let apps = [AppPerf::new(1.0, 1.0), AppPerf::new(1.0, 0.1)];
        let hs = harmonic_speedup(&apps);
        assert!(hs > 0.1 && hs < 1.0);
        // Harmonic mean is below the arithmetic mean for unequal values.
        let ws_avg = weighted_speedup(&apps) / 2.0;
        assert!(hs < ws_avg);
    }

    #[test]
    fn max_slowdown_picks_the_most_hurt_app() {
        let apps = [
            AppPerf::new(1.0, 0.9),
            AppPerf::new(2.0, 0.5), // 4x slowdown
            AppPerf::new(1.0, 0.8),
        ];
        assert!((max_slowdown(&apps) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[0.5, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn geometric_mean_rejects_non_positive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn normalization_helpers() {
        assert_eq!(normalize_to(&[2.0, 4.0], 2.0), vec![1.0, 2.0]);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
