//! DRAM timing parameters (DDR4-3200 and DDR5-4800 presets) and helpers to
//! convert between wall-clock time and command-clock cycles.
//!
//! All values are expressed in DRAM command-clock cycles (nCK). The presets
//! follow the JEDEC speed-bin values closely enough that the relative costs of
//! activations, column accesses, refreshes and RFM commands — which is what
//! drives every result in the paper — are faithful.

use crate::types::{Cycle, CycleDelta};
use serde::{Deserialize, Serialize};

/// Complete set of timing constraints used by the device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// DRAM command-clock frequency in MHz (data rate is twice this).
    pub clock_mhz: f64,

    // --- intra-bank row timings -------------------------------------------
    /// ACT to internal read/write delay.
    pub t_rcd: CycleDelta,
    /// PRE to ACT delay of the same bank.
    pub t_rp: CycleDelta,
    /// ACT to PRE minimum row-open time.
    pub t_ras: CycleDelta,
    /// ACT to ACT of the same bank (row cycle time); normally tRAS + tRP.
    pub t_rc: CycleDelta,
    /// Read to precharge delay.
    pub t_rtp: CycleDelta,
    /// Write recovery time (end of write burst to precharge).
    pub t_wr: CycleDelta,

    // --- column timings ----------------------------------------------------
    /// CAS latency (read command to first data beat).
    pub cl: CycleDelta,
    /// CAS write latency.
    pub cwl: CycleDelta,
    /// Burst length in beats; a column transfer occupies `burst_length / 2`
    /// command-clock cycles on the data bus.
    pub burst_length: CycleDelta,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: CycleDelta,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: CycleDelta,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: CycleDelta,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: CycleDelta,

    // --- inter-bank activation timings -------------------------------------
    /// ACT to ACT delay, same bank group.
    pub t_rrd_l: CycleDelta,
    /// ACT to ACT delay, different bank group.
    pub t_rrd_s: CycleDelta,
    /// Four-activation window per rank.
    pub t_faw: CycleDelta,

    // --- refresh ------------------------------------------------------------
    /// All-bank refresh cycle time (command blocks the rank for this long).
    pub t_rfc: CycleDelta,
    /// Same-bank refresh cycle time.
    pub t_rfc_sb: CycleDelta,
    /// Average refresh interval (one REF per tREFI keeps the retention
    /// guarantee).
    pub t_refi: CycleDelta,
    /// Refresh window: every row is refreshed once per tREFW.
    pub t_refw: CycleDelta,
    /// Refresh-management command cycle time (RFM blocks the rank/bank).
    pub t_rfm: CycleDelta,
}

impl TimingParams {
    /// DDR5-4800 preset (2400 MHz command clock), matching Table 1.
    pub fn ddr5_4800() -> Self {
        let clock_mhz = 2400.0;
        let ns = |n: f64| -> CycleDelta { (n * clock_mhz / 1000.0).ceil() as CycleDelta };
        TimingParams {
            clock_mhz,
            t_rcd: ns(16.0), // ~38 nCK
            t_rp: ns(16.0),  // ~39 nCK
            t_ras: ns(32.0), // ~77 nCK
            t_rc: ns(48.0),  // ~116 nCK
            t_rtp: ns(7.5),
            t_wr: ns(30.0),
            cl: 40,
            cwl: 38,
            burst_length: 16,
            t_ccd_l: 16,
            t_ccd_s: 8,
            t_wtr_l: 24,
            t_wtr_s: 8,
            t_rrd_l: 12,
            t_rrd_s: 8,
            t_faw: 32,
            t_rfc: ns(295.0),
            t_rfc_sb: ns(130.0),
            t_refi: ns(3900.0),       // 3.9 us
            t_refw: ns(32_000_000.0), // 32 ms
            t_rfm: ns(195.0),
        }
    }

    /// DDR4-3200 preset (1600 MHz command clock).
    pub fn ddr4_3200() -> Self {
        let clock_mhz = 1600.0;
        let ns = |n: f64| -> CycleDelta { (n * clock_mhz / 1000.0).ceil() as CycleDelta };
        TimingParams {
            clock_mhz,
            t_rcd: ns(13.75),
            t_rp: ns(13.75),
            t_ras: ns(32.0),
            t_rc: ns(45.75),
            t_rtp: ns(7.5),
            t_wr: ns(15.0),
            cl: 22,
            cwl: 16,
            burst_length: 8,
            t_ccd_l: 8,
            t_ccd_s: 4,
            t_wtr_l: 12,
            t_wtr_s: 4,
            t_rrd_l: 8,
            t_rrd_s: 4,
            t_faw: 34,
            t_rfc: ns(350.0),
            t_rfc_sb: ns(160.0),
            t_refi: ns(7800.0),       // 7.8 us
            t_refw: ns(64_000_000.0), // 64 ms
            t_rfm: ns(350.0),
        }
    }

    /// A heavily-shortened timing set for unit tests: same constraint
    /// structure, tiny refresh windows, so tests touching the refresh path run
    /// in microseconds of simulated time.
    pub fn fast_test() -> Self {
        TimingParams {
            clock_mhz: 2400.0,
            t_rcd: 4,
            t_rp: 4,
            t_ras: 8,
            t_rc: 12,
            t_rtp: 2,
            t_wr: 4,
            cl: 4,
            cwl: 3,
            burst_length: 8,
            t_ccd_l: 4,
            t_ccd_s: 2,
            t_wtr_l: 4,
            t_wtr_s: 2,
            t_rrd_l: 3,
            t_rrd_s: 2,
            t_faw: 8,
            t_rfc: 32,
            t_rfc_sb: 16,
            t_refi: 256,
            t_refw: 256 * 64,
            t_rfm: 16,
        }
    }

    /// Picoseconds per command-clock cycle.
    pub fn tck_ps(&self) -> f64 {
        1_000_000.0 / self.clock_mhz
    }

    /// Converts a number of command-clock cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 * self.tck_ps() / 1000.0
    }

    /// Converts nanoseconds to command-clock cycles, rounding up.
    pub fn ns_to_cycles(&self, ns: f64) -> CycleDelta {
        (ns * self.clock_mhz / 1000.0).ceil() as CycleDelta
    }

    /// Converts milliseconds to command-clock cycles, rounding up.
    pub fn ms_to_cycles(&self, ms: f64) -> CycleDelta {
        self.ns_to_cycles(ms * 1_000_000.0)
    }

    /// Number of data-bus cycles occupied by one burst (BL/2).
    pub fn burst_cycles(&self) -> CycleDelta {
        self.burst_length / 2
    }

    /// Read latency from command issue to the last data beat.
    pub fn read_latency(&self) -> CycleDelta {
        self.cl + self.burst_cycles()
    }

    /// Write latency from command issue to the last data beat.
    pub fn write_latency(&self) -> CycleDelta {
        self.cwl + self.burst_cycles()
    }

    /// Number of all-bank REF commands needed per refresh window.
    pub fn refreshes_per_window(&self) -> u64 {
        (self.t_refw / self.t_refi).max(1)
    }

    /// Applies a mitigation-supplied timing adjustment (e.g. REGA inflates the
    /// row-precharge/row-cycle time to hide refresh-generating activations).
    pub fn with_adjustment(mut self, adj: &TimingAdjustment) -> Self {
        self.t_rp += adj.extra_t_rp;
        self.t_ras += adj.extra_t_ras;
        self.t_rc += adj.extra_t_rp + adj.extra_t_ras;
        self.t_rfc += adj.extra_t_rfc;
        self
    }

    /// Basic sanity checks tying the derived constraints together.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must cover tRAS ({}) + tRP ({})",
                self.t_rc, self.t_ras, self.t_rp
            ));
        }
        if self.t_ccd_l < self.t_ccd_s {
            return Err("tCCD_L must be >= tCCD_S".to_string());
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err("tRRD_L must be >= tRRD_S".to_string());
        }
        if self.t_refw < self.t_refi {
            return Err("tREFW must be >= tREFI".to_string());
        }
        if !self.burst_length.is_multiple_of(2) {
            return Err("burst length must be even".to_string());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr5_4800()
    }
}

/// Additive timing adjustment supplied by a mitigation mechanism (used by
/// REGA, which lengthens the row cycle so refresh-generating activations can
/// run in parallel with normal accesses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingAdjustment {
    /// Extra cycles added to tRP.
    pub extra_t_rp: CycleDelta,
    /// Extra cycles added to tRAS.
    pub extra_t_ras: CycleDelta,
    /// Extra cycles added to tRFC.
    pub extra_t_rfc: CycleDelta,
}

impl TimingAdjustment {
    /// The identity adjustment (no change).
    pub fn none() -> Self {
        TimingAdjustment::default()
    }

    /// True if this adjustment changes nothing.
    pub fn is_none(&self) -> bool {
        *self == TimingAdjustment::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(TimingParams::ddr5_4800().validate(), Ok(()));
        assert_eq!(TimingParams::ddr4_3200().validate(), Ok(()));
        assert_eq!(TimingParams::fast_test().validate(), Ok(()));
    }

    #[test]
    fn ddr5_paper_quantities() {
        let t = TimingParams::ddr5_4800();
        // tREFI of 3.9us at 2400MHz command clock
        assert!((t.cycles_to_ns(t.t_refi) - 3900.0).abs() < 2.0);
        // 32ms refresh window
        assert!((t.cycles_to_ns(t.t_refw) / 1_000_000.0 - 32.0).abs() < 0.01);
        // roughly 8192 REFs per window
        let refs = t.refreshes_per_window();
        assert!((8000..=8400).contains(&refs), "got {refs}");
        // tRRD below BreakHammer's 0.67ns pipeline latency bound (paper §6):
        // 2.5ns DDR4 / ~3.3ns DDR5 here; just check it is above 1.6ns.
        assert!(t.cycles_to_ns(t.t_rrd_s) > 1.6);
    }

    #[test]
    fn ddr4_refresh_window_is_64ms() {
        let t = TimingParams::ddr4_3200();
        assert!((t.cycles_to_ns(t.t_refw) / 1_000_000.0 - 64.0).abs() < 0.01);
        assert!((t.cycles_to_ns(t.t_refi) - 7800.0).abs() < 2.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let t = TimingParams::ddr5_4800();
        let cycles = t.ns_to_cycles(100.0);
        let ns = t.cycles_to_ns(cycles);
        assert!((100.0..101.0).contains(&ns));
        assert_eq!(t.ms_to_cycles(1.0), t.ns_to_cycles(1_000_000.0));
    }

    #[test]
    fn latencies_compose() {
        let t = TimingParams::ddr5_4800();
        assert_eq!(t.read_latency(), t.cl + t.burst_length / 2);
        assert_eq!(t.write_latency(), t.cwl + t.burst_length / 2);
        assert_eq!(t.burst_cycles(), 8);
    }

    #[test]
    fn adjustment_inflates_row_cycle() {
        let base = TimingParams::fast_test();
        let adj = TimingAdjustment { extra_t_rp: 3, extra_t_ras: 5, extra_t_rfc: 0 };
        let adjusted = base.clone().with_adjustment(&adj);
        assert_eq!(adjusted.t_rp, base.t_rp + 3);
        assert_eq!(adjusted.t_ras, base.t_ras + 5);
        assert_eq!(adjusted.t_rc, base.t_rc + 8);
        assert_eq!(adjusted.validate(), Ok(()));
        assert!(TimingAdjustment::none().is_none());
        assert!(!adj.is_none());
    }

    #[test]
    fn validation_rejects_inconsistent_sets() {
        let mut t = TimingParams::fast_test();
        t.t_rc = 1;
        assert!(t.validate().is_err());

        let mut t = TimingParams::fast_test();
        t.t_ccd_s = t.t_ccd_l + 1;
        assert!(t.validate().is_err());

        let mut t = TimingParams::fast_test();
        t.t_refw = t.t_refi - 1;
        assert!(t.validate().is_err());

        let mut t = TimingParams::fast_test();
        t.burst_length = 7;
        assert!(t.validate().is_err());
    }
}
