//! Property-based tests of the DRAM device model: for arbitrary legal command
//! sequences, the timing engine must never accept a command earlier than its
//! own `earliest_issue` bound, bank state must stay consistent, and the
//! RowHammer victim model must account for every activation.

use bh_dram::{
    BankAddr, CommandKind, DramChannel, DramCommand, DramGeometry, DramLocation, RowAddr,
    TimingParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drives `steps` random-but-legal row cycles (ACT, a few column accesses,
/// PRE) across random banks and returns the channel.
fn drive_random_row_cycles(seed: u64, steps: usize, nrh: u64) -> (DramChannel, u64) {
    let geometry = DramGeometry::tiny();
    let mut channel = DramChannel::with_rowhammer(geometry.clone(), TimingParams::fast_test(), nrh);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut activations = 0u64;
    for _ in 0..steps {
        let bank = geometry.bank_from_flat(rng.gen_range(0..geometry.banks_per_channel()));
        let row = rng.gen_range(0..geometry.rows_per_bank);
        let act = DramCommand::activate(bank, row);
        let at = channel.earliest_issue(&act);
        channel.issue(&act, at).expect("activate at its earliest-issue time must be legal");
        activations += 1;

        for _ in 0..rng.gen_range(0..3usize) {
            let column = rng.gen_range(0..geometry.columns_per_row);
            let loc = DramLocation { channel: 0, bank, row, column };
            let cmd =
                if rng.gen_bool(0.3) { DramCommand::write(loc) } else { DramCommand::read(loc) };
            let at = channel.earliest_issue(&cmd);
            channel.issue(&cmd, at).expect("column access at its earliest-issue time");
        }

        let pre = DramCommand::precharge(bank);
        let at = channel.earliest_issue(&pre);
        channel.issue(&pre, at).expect("precharge at its earliest-issue time");
    }
    (channel, activations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Issuing every command exactly at its `earliest_issue` time is always
    /// legal, regardless of the interleaving of banks and rows.
    #[test]
    fn earliest_issue_is_always_sufficient(seed in any::<u64>(), steps in 1usize..60) {
        let (channel, activations) = drive_random_row_cycles(seed, steps, 1_000_000);
        prop_assert_eq!(channel.stats().activates, activations);
        prop_assert_eq!(channel.stats().precharges, activations);
    }

    /// Issuing one cycle before `earliest_issue` is always rejected (when the
    /// bound is in the future), i.e. the bound is tight from below.
    #[test]
    fn one_cycle_early_is_rejected(seed in any::<u64>(), steps in 1usize..40) {
        let geometry = DramGeometry::tiny();
        let mut channel = DramChannel::new(geometry.clone(), TimingParams::fast_test());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            let bank = geometry.bank_from_flat(rng.gen_range(0..geometry.banks_per_channel()));
            let open = channel.open_row(bank);
            let cmd = match open {
                None => DramCommand::activate(bank, rng.gen_range(0..geometry.rows_per_bank)),
                Some(row) if rng.gen_bool(0.5) => DramCommand::read(DramLocation {
                    channel: 0,
                    bank,
                    row,
                    column: rng.gen_range(0..geometry.columns_per_row),
                }),
                Some(_) => DramCommand::precharge(bank),
            };
            let earliest = channel.earliest_issue(&cmd);
            if earliest > 0 {
                let early = channel.issue(&cmd, earliest - 1);
                prop_assert!(early.is_err(), "command {cmd} accepted {} before its bound", 1);
            }
            channel.issue(&cmd, earliest).expect("command at its bound");
        }
    }

    /// The RowHammer tracker's total activation count always matches the
    /// number of ACT commands issued, and the per-victim disturbance never
    /// exceeds the number of activations of its neighbouring rows.
    #[test]
    fn victim_model_accounts_for_every_activation(seed in any::<u64>(), steps in 1usize..60) {
        let (channel, activations) = drive_random_row_cycles(seed, steps, u64::MAX >> 1);
        let tracker = channel.rowhammer().expect("tracker attached");
        prop_assert_eq!(tracker.total_activations(), activations);
        prop_assert!(tracker.max_disturbance() <= 2 * activations);
        prop_assert_eq!(tracker.bitflip_count(), 0, "threshold is effectively infinite");
    }

    /// Victim refreshes always clear the targeted row's disturbance, whatever
    /// preceded them.
    #[test]
    fn victim_refresh_always_clears_disturbance(
        seed in any::<u64>(),
        hammer_count in 1u64..40,
        victim_offset in prop_oneof![Just(-1i64), Just(1i64)],
    ) {
        let geometry = DramGeometry::tiny();
        let mut channel =
            DramChannel::with_rowhammer(geometry.clone(), TimingParams::fast_test(), 1_000_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let aggressor = rng.gen_range(2..geometry.rows_per_bank - 2);
        for _ in 0..hammer_count {
            let act = DramCommand::activate(bank, aggressor);
            let at = channel.earliest_issue(&act);
            channel.issue(&act, at).unwrap();
            let pre = DramCommand::precharge(bank);
            let at = channel.earliest_issue(&pre);
            channel.issue(&pre, at).unwrap();
        }
        let victim_row = (aggressor as i64 + victim_offset) as usize;
        let victim = RowAddr { bank, row: victim_row };
        prop_assert_eq!(channel.rowhammer().unwrap().disturbance_of(victim), hammer_count);
        let vrr = DramCommand::victim_refresh(victim);
        let at = channel.earliest_issue(&vrr);
        channel.issue(&vrr, at).unwrap();
        prop_assert_eq!(channel.rowhammer().unwrap().disturbance_of(victim), 0);
    }

    /// Refresh-class commands never leave a row open, and data transfers are
    /// only ever reported for column commands.
    #[test]
    fn refresh_closes_everything(seed in any::<u64>(), steps in 1usize..30) {
        let geometry = DramGeometry::tiny();
        let mut channel = DramChannel::new(geometry.clone(), TimingParams::fast_test());
        let mut rng = StdRng::seed_from_u64(seed);
        // Open a few rows.
        for _ in 0..steps {
            let bank = geometry.bank_from_flat(rng.gen_range(0..geometry.banks_per_channel()));
            if channel.open_row(bank).is_none() {
                let act = DramCommand::activate(bank, rng.gen_range(0..geometry.rows_per_bank));
                let at = channel.earliest_issue(&act);
                channel.issue(&act, at).unwrap();
            }
        }
        for rank in 0..geometry.ranks {
            let prea = DramCommand::precharge_all(rank);
            let at = channel.earliest_issue(&prea);
            let outcome = channel.issue(&prea, at).unwrap();
            prop_assert!(outcome.data_ready_at.is_none());
            prop_assert!(channel.all_banks_closed(rank));
            let refresh = DramCommand::refresh(rank);
            let at = channel.earliest_issue(&refresh);
            let outcome = channel.issue(&refresh, at).unwrap();
            prop_assert!(outcome.data_ready_at.is_none());
            prop_assert_eq!(outcome.busy_until, at + channel.timing().t_rfc);
        }
        prop_assert_eq!(channel.stats().refreshes as usize, geometry.ranks);
        let kind = CommandKind::Refresh;
        prop_assert!(kind.is_refresh());
    }
}
