//! BlockHammer: blacklisting-based access throttling [Yağlıkçı et al., HPCA 2021].
//!
//! BlockHammer is the state-of-the-art *throttling-based* RowHammer
//! mitigation and the paper's head-to-head comparison point (§8.3). It tracks
//! per-row activation rates (with counting Bloom filters in the original
//! design; modelled here as exact per-row counters, which is strictly more
//! favourable to BlockHammer) and, once a row crosses the blacklisting
//! threshold, delays further activations of that row so it cannot reach
//! `N_RH` activations before the refresh window ends.
//!
//! Unlike BreakHammer, BlockHammer throttles *rows* regardless of which
//! thread accesses them — so at low `N_RH`, where even benign applications
//! activate rows tens or hundreds of times per window (Table 3), BlockHammer
//! ends up delaying benign accesses and its performance collapses (Fig. 18).

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::{Cycle, DramGeometry, FlatMap, RowAddr, TimingParams};

/// The BlockHammer mechanism.
#[derive(Debug)]
pub struct BlockHammer {
    geometry: DramGeometry,
    blacklist_threshold: u64,
    /// Maximum activations a single row may receive within one window; sized
    /// so that two aggressors straddling a window boundary (the worst case
    /// before the victim's periodic refresh) stay safely below `N_RH`.
    allowed_per_window: u64,
    window_cycles: Cycle,
    window_end: Cycle,
    /// Dense per-row activation counters for the current window, indexed by
    /// `flat_bank * rows_per_bank + row` (the software stand-in for the
    /// hardware's counting Bloom filters — exact, flat, and cleared once per
    /// window).
    counts: Box<[u32]>,
    /// Blacklisted rows, keyed by `flat_bank << 32 | row` -> earliest cycle
    /// the next activation is allowed. Only rows past the blacklisting
    /// threshold appear, so the table stays small and the per-request
    /// `is_blocked` probe stays O(1).
    next_allowed: FlatMap<Cycle>,
    blacklisted_total: u64,
}

impl BlockHammer {
    /// Creates BlockHammer for the given system and RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh < 4` or `blast_radius` is zero.
    pub fn new(
        geometry: DramGeometry,
        timing: &TimingParams,
        nrh: u64,
        blast_radius: usize,
    ) -> Self {
        assert!(nrh >= 4, "N_RH must be at least 4");
        assert!(blast_radius > 0, "blast radius must be positive");
        // A victim can be disturbed by two aggressors, each spreading its
        // activations over the two windows that precede the victim's periodic
        // refresh, so each row's per-window budget is N_RH / 8 (with margin).
        let allowed_per_window = (nrh / 8).max(2);
        let blacklist_threshold = (allowed_per_window / 2).max(1);
        let rows = geometry.rows_per_channel();
        BlockHammer {
            geometry,
            blacklist_threshold,
            allowed_per_window,
            window_cycles: timing.t_refw,
            window_end: timing.t_refw,
            counts: vec![0; rows].into_boxed_slice(),
            next_allowed: FlatMap::with_capacity(64),
            blacklisted_total: 0,
        }
    }

    /// The blacklisting threshold (N_BL) in use.
    pub fn blacklist_threshold(&self) -> u64 {
        self.blacklist_threshold
    }

    /// Number of rows that have been blacklisted so far (cumulative).
    pub fn blacklisted_total(&self) -> u64 {
        self.blacklisted_total
    }

    /// Number of currently-blacklisted rows.
    pub fn blacklisted_now(&self) -> usize {
        self.next_allowed.len()
    }

    fn maybe_reset_window(&mut self, cycle: Cycle) {
        if cycle >= self.window_end {
            self.counts.fill(0);
            self.next_allowed.clear();
            while cycle >= self.window_end {
                self.window_end += self.window_cycles;
            }
        }
    }

    #[inline]
    fn key(&self, flat_bank: usize, row: usize) -> u64 {
        (flat_bank as u64) << 32 | row as u64
    }
}

impl TriggerMechanism for BlockHammer {
    fn name(&self) -> &'static str {
        "BlockHammer"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::BlockHammer
    }

    fn on_activation(&mut self, event: &ActivationEvent, _sink: &mut ActionSink) {
        self.maybe_reset_window(event.cycle);
        let bank = self.geometry.flat_bank(event.row.bank);
        let count = &mut self.counts[bank * self.geometry.rows_per_bank + event.row.row];
        *count += 1;
        let count = u64::from(*count);
        if count >= self.blacklist_threshold {
            // Spread the row's remaining activation budget over the remaining
            // window so it can never exceed its per-window allowance. The
            // delay is floored at one cycle: near the window edge the integer
            // division `time_left / remaining_budget` truncates to zero
            // (time_left < remaining_budget), which would leave a blacklisted
            // row entirely unthrottled for the window's tail — a zero-spread
            // hole the edge regression test below pins shut. A row at or past
            // its allowance (`remaining_budget` saturated to 1) is pushed to
            // the window edge itself, where the reset re-admits it with fresh
            // counters.
            let remaining_budget = self.allowed_per_window.saturating_sub(count).max(1);
            let time_left = self.window_end.saturating_sub(event.cycle).max(1);
            let delay = (time_left / remaining_budget).max(1);
            let key = self.key(bank, event.row.row);
            if !self.next_allowed.contains_key(key) {
                self.blacklisted_total += 1;
            }
            self.next_allowed.insert(key, event.cycle + delay);
        }
        // BlockHammer's preventive action is the delay itself; it never issues
        // extra DRAM commands.
    }

    fn is_blocked(&self, row: RowAddr, cycle: Cycle) -> bool {
        let bank = self.geometry.flat_bank(row.bank);
        match self.next_allowed.get(self.key(bank, row.row)) {
            Some(allowed) => cycle < allowed,
            None => false,
        }
    }

    fn may_block(&self) -> bool {
        true
    }

    fn blocked_rows(&self) -> usize {
        self.blacklisted_now()
    }

    fn blocked_until(&self, row: RowAddr, cycle: Cycle) -> Cycle {
        let bank = self.geometry.flat_bank(row.bank);
        match self.next_allowed.get(self.key(bank, row.row)) {
            Some(allowed) => cycle.max(allowed),
            None => cycle,
        }
    }

    fn storage_bits(&self) -> u64 {
        // Two time-interleaved counting Bloom filters sized to distinguish
        // rows above the blacklisting threshold among the worst-case number of
        // activations per window, plus the row-activation history buffer whose
        // capacity grows as N_RH shrinks (the growth the paper highlights in
        // §8.3).
        let acts_per_window = (self.window_cycles / 50).max(1); // ~tRC at DDR5 speeds
        let cbf_counters = (acts_per_window / self.blacklist_threshold).max(1024);
        let cbf_bits = 2 * cbf_counters * 16;
        let history_entries = (self.window_cycles / (8 * self.allowed_per_window).max(1)).max(64);
        let history_bits = history_entries * 48;
        cbf_bits + history_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_dram::{BankAddr, ThreadId};

    fn mech(nrh: u64) -> BlockHammer {
        BlockHammer::new(DramGeometry::tiny(), &TimingParams::fast_test(), nrh, 1)
    }

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn cold_rows_are_never_blocked() {
        let mut b = mech(1024);
        for i in 0..100u64 {
            b.on_activation_vec(&event(i as usize, i));
        }
        assert_eq!(b.blacklisted_now(), 0);
        assert!(!b.is_blocked(event(5, 0).row, 101));
    }

    #[test]
    fn hot_row_gets_blacklisted_and_delayed() {
        let mut b = mech(64); // per-window allowance 8, blacklist threshold 4
        assert_eq!(b.blacklist_threshold(), 4);
        for i in 0..16u64 {
            b.on_activation_vec(&event(7, i));
        }
        assert_eq!(b.blacklisted_total(), 1);
        assert!(b.is_blocked(event(7, 0).row, 17));
        // Another row in the same bank is unaffected.
        assert!(!b.is_blocked(event(8, 0).row, 17));
    }

    #[test]
    fn delay_expires_eventually() {
        let mut b = mech(64);
        for i in 0..16u64 {
            b.on_activation_vec(&event(7, i));
        }
        let row = event(7, 0).row;
        assert!(b.is_blocked(row, 20));
        // The delay is bounded by the remaining window; far in the future the
        // row is allowed again (and the window itself resets).
        let timing = TimingParams::fast_test();
        assert!(!b.is_blocked(row, timing.t_refw * 2));
    }

    #[test]
    fn blocking_rate_limits_row_below_nrh_within_window() {
        let timing = TimingParams::fast_test();
        let nrh = 64u64;
        let mut b = BlockHammer::new(DramGeometry::tiny(), &timing, nrh, 1);
        let row = event(3, 0).row;
        // Simulate a controller that respects is_blocked: it only activates
        // when the row is not blocked, as fast as one activation per cycle.
        let mut activations_in_window = 0u64;
        let mut cycle = 0u64;
        while cycle < timing.t_refw {
            if !b.is_blocked(row, cycle) {
                b.on_activation_vec(&event(3, cycle));
                activations_in_window += 1;
            }
            cycle += 1;
        }
        assert!(
            activations_in_window < nrh,
            "row received {activations_in_window} activations, N_RH is {nrh}"
        );
    }

    #[test]
    fn window_reset_clears_blacklist() {
        let timing = TimingParams::fast_test();
        let mut b = BlockHammer::new(DramGeometry::tiny(), &timing, 64, 1);
        for i in 0..16u64 {
            b.on_activation_vec(&event(7, i));
        }
        assert_eq!(b.blacklisted_now(), 1);
        b.on_activation_vec(&event(1, timing.t_refw + 1));
        assert_eq!(b.blacklisted_now(), 0);
    }

    /// Window-edge regression: a row blacklisted at the very end of one
    /// window must (a) still be delayed by at least one cycle there (the
    /// integer spread `time_left / remaining_budget` used to truncate to a
    /// zero delay, leaving the row unthrottled for the window's tail), and
    /// (b) carry neither its stale delay nor its `blacklisted_total` dedup
    /// key into the next window — after the reset the row starts clean and a
    /// re-blacklisting is counted again.
    #[test]
    fn window_edge_carries_no_stale_delay_or_dedup_key() {
        let timing = TimingParams::fast_test();
        let mut b = BlockHammer::new(DramGeometry::tiny(), &timing, 64, 1);
        let window = timing.t_refw;
        let row = event(7, 0).row;

        // Cross the blacklist threshold (4) right at the window's edge, with
        // plenty of per-window budget left (allowance is 8), so
        // time_left (2) < remaining_budget and the old spread truncated to 0.
        for i in 0..4u64 {
            b.on_activation_vec(&event(7, window - 6 + i));
        }
        assert_eq!(b.blacklisted_total(), 1);
        // The last activation happened at `window - 3`; with the zero-spread
        // hole the row's next activation was allowed at that same cycle,
        // i.e. it was never blocked at all. The one-cycle floor pushes the
        // next allowed cycle strictly past the blacklisting activation.
        assert!(
            b.is_blocked(row, window - 3),
            "a row blacklisted at the window edge must not get a zero-spread delay"
        );
        assert!(b.blocked_until(row, window - 3) > window - 3);

        // First activation of the next window resets the window state: the
        // stale delay is dropped and the per-row counters restart.
        b.on_activation_vec(&event(7, window + 1));
        assert_eq!(b.blacklisted_now(), 0, "the old window's blacklist must be cleared");
        assert!(!b.is_blocked(row, window + 2), "no stale delay may leak into the new window");

        // The dedup key was cleared too: re-blacklisting the row in the new
        // window increments the cumulative counter again (the activation
        // above already counted 1 toward the new window's threshold).
        for i in 0..3u64 {
            b.on_activation_vec(&event(7, window + 2 + i));
        }
        assert_eq!(
            b.blacklisted_total(),
            2,
            "a re-blacklisted row must be counted once per window, not deduped forever"
        );
        assert!(b.is_blocked(row, window + 5));
    }

    #[test]
    fn storage_grows_as_nrh_decreases() {
        assert!(mech(64).storage_bits() > mech(4096).storage_bits());
    }

    #[test]
    fn never_issues_dram_commands() {
        let mut b = mech(64);
        for i in 0..200u64 {
            assert!(b.on_activation_vec(&event(7, i)).is_empty());
        }
    }

    #[test]
    fn metadata() {
        let b = mech(512);
        assert_eq!(b.name(), "BlockHammer");
        assert_eq!(b.kind(), MechanismKind::BlockHammer);
        assert!(b.storage_bits() > 0);
    }
}
