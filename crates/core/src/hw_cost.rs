//! Hardware-complexity model of BreakHammer (§6 of the paper).
//!
//! The paper implements BreakHammer in Chisel, synthesises it with a 65 nm
//! standard-cell library and evaluates storage with CACTI. The resulting
//! numbers are driven entirely by the amount of per-thread state — two 32-bit
//! score counters, one 16-bit activation counter and two 1-bit suspect flags
//! per hardware thread — plus a shallow pipeline. This module reproduces that
//! arithmetic so the §6 quantities can be regenerated.

use serde::{Deserialize, Serialize};

/// Bits of storage BreakHammer keeps per hardware thread.
pub const BITS_PER_THREAD: u64 = 2 * 32 + 16 + 2;

/// Area of the paper's 4-thread, per-channel instance at 65 nm (mm²), used to
/// calibrate the per-bit area constant.
const PAPER_AREA_PER_CHANNEL_MM2: f64 = 0.000105;
/// Threads in the paper's calibration instance.
const PAPER_THREADS: usize = 4;
/// Die area of the reference high-end Intel Xeon processor (mm²), chosen so
/// the paper's "0.0002% of chip area for 0.00042 mm²" statement holds.
pub const XEON_DIE_AREA_MM2: f64 = 210.0;
/// BreakHammer's pipeline depth (stages).
pub const PIPELINE_STAGES: u32 = 8;
/// Achievable clock frequency of the synthesised design (GHz).
pub const CLOCK_GHZ: f64 = 1.5;

/// Hardware cost estimate of one BreakHammer instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// Hardware threads tracked.
    pub threads: usize,
    /// Memory channels (one BreakHammer instance per channel).
    pub channels: usize,
    /// Total storage in bits.
    pub storage_bits: u64,
    /// Estimated area in mm² (65 nm).
    pub area_mm2: f64,
    /// Fraction of a high-end Xeon die this area represents.
    pub xeon_area_fraction: f64,
    /// Per-decision latency in nanoseconds (one pipeline stage).
    pub latency_ns: f64,
}

impl HardwareCost {
    /// Estimates the cost of BreakHammer for `threads` hardware threads and
    /// `channels` memory channels.
    ///
    /// # Panics
    /// Panics if `threads` or `channels` is zero.
    pub fn estimate(threads: usize, channels: usize) -> Self {
        assert!(threads > 0, "need at least one hardware thread");
        assert!(channels > 0, "need at least one memory channel");
        let storage_bits = BITS_PER_THREAD * threads as u64 * channels as u64;
        let area_per_bit =
            PAPER_AREA_PER_CHANNEL_MM2 / (BITS_PER_THREAD as f64 * PAPER_THREADS as f64);
        let area_mm2 = storage_bits as f64 * area_per_bit;
        HardwareCost {
            threads,
            channels,
            storage_bits,
            area_mm2,
            xeon_area_fraction: area_mm2 / XEON_DIE_AREA_MM2,
            latency_ns: 1.0 / CLOCK_GHZ,
        }
    }

    /// The paper's evaluated configuration: 4 hardware threads, and an area
    /// quoted for the processor chip (the paper reports 0.00042 mm² overall).
    pub fn paper_configuration() -> Self {
        HardwareCost::estimate(4, 4)
    }

    /// True if the per-decision latency fits under the given command-to-command
    /// spacing (the paper compares against tRRD: 2.5 ns in DDR4), i.e.
    /// BreakHammer stays off the critical path of request scheduling.
    pub fn fits_under_trrd(&self, trrd_ns: f64) -> bool {
        self.latency_ns < trrd_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_thread_state_matches_section6() {
        assert_eq!(BITS_PER_THREAD, 82);
    }

    #[test]
    fn calibration_instance_matches_paper_area() {
        let c = HardwareCost::estimate(4, 1);
        assert!((c.area_mm2 - 0.000105).abs() < 1e-9, "got {}", c.area_mm2);
    }

    #[test]
    fn paper_configuration_matches_headline_numbers() {
        let c = HardwareCost::paper_configuration();
        // ~0.00042 mm^2 and ~0.0002% of a Xeon die.
        assert!((c.area_mm2 - 0.00042).abs() < 1e-6, "area {}", c.area_mm2);
        assert!((c.xeon_area_fraction - 0.000002).abs() < 1e-7);
        // 0.67 ns latency, under DDR4's 2.5 ns tRRD and DDR5's 3.3 ns.
        assert!((c.latency_ns - 0.6667).abs() < 0.01);
        assert!(c.fits_under_trrd(2.5));
        assert!(c.fits_under_trrd(3.33));
        assert!(!c.fits_under_trrd(0.5));
    }

    #[test]
    fn cost_scales_linearly_with_threads_and_channels() {
        let small = HardwareCost::estimate(4, 1);
        let more_threads = HardwareCost::estimate(8, 1);
        let more_channels = HardwareCost::estimate(4, 2);
        assert!((more_threads.area_mm2 / small.area_mm2 - 2.0).abs() < 1e-9);
        assert!((more_channels.area_mm2 / small.area_mm2 - 2.0).abs() < 1e-9);
        assert_eq!(more_threads.storage_bits, 2 * small.storage_bits);
    }

    #[test]
    #[should_panic(expected = "at least one hardware thread")]
    fn zero_threads_rejected() {
        let _ = HardwareCost::estimate(0, 1);
    }

    #[test]
    fn even_a_big_server_stays_negligible() {
        // 128 threads, 8 channels: still well under 0.1% of a Xeon die.
        let c = HardwareCost::estimate(128, 8);
        assert!(c.xeon_area_fraction < 0.001);
    }
}
