//! Aggressor placement — the *allocator* axis of the composable attacker
//! framework.
//!
//! An [`AggressorPlacement`] decides **where** a hammering pattern lands:
//! which banks hold aggressor rows, which row indices those aggressors use,
//! and which memory channels the pattern walks. The *what* (the temporal
//! access schedule over the placed rows) is the
//! [`AccessPattern`](crate::pattern::AccessPattern)'s job; the two compose
//! through [`ComposedAttacker`](crate::compose::ComposedAttacker).
//!
//! The placement subsumes the channel dimension that used to live in
//! [`ChannelTarget`]: a placement yields the
//! ordered list of channels the pattern sweeps, so "pinned to channel 2" and
//! "interleave over every channel" are just two channel lists.

use crate::attacker::ChannelTarget;
use bh_dram::{BankAddr, DramGeometry};
use std::fmt;

/// First row index used for aggressor rows (kept away from the benign
/// generators' hot rows and footprints so the attacker does not accidentally
/// share rows with victims' data).
pub(crate) const AGGRESSOR_BASE: usize = 20_000;

/// What an [`AccessPattern`](crate::pattern::AccessPattern) asks the
/// placement layer for: the bank/aggressor footprint its schedule cycles
/// through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementRequest {
    /// Number of banks the pattern hammers in parallel (clamped to the
    /// geometry's banks per channel by the placement).
    pub banks: usize,
    /// Aggressor rows the pattern cycles within each bank.
    pub aggressors_per_bank: usize,
}

/// The placed aggressor grid: an ordered channel walk × a bank set × the
/// aggressor rows within each bank.
///
/// Patterns index the grid with *steps* (`channel_step`, `bank_step`,
/// `aggressor_step`); the grid translates steps into concrete channels,
/// [`BankAddr`]s and raw row indices. Row indices are stored un-reduced —
/// callers reduce them modulo the geometry's `rows_per_bank` at encode time,
/// so tiny test geometries alias exactly like the pre-framework generator
/// did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggressorGrid {
    channels: Vec<usize>,
    banks: Vec<BankAddr>,
    /// Bank-major raw rows: `rows[bank_step * aggressors_per_bank + a]`.
    rows: Vec<usize>,
    aggressors_per_bank: usize,
}

impl AggressorGrid {
    /// Builds a grid from an ordered channel walk, a bank set and bank-major
    /// aggressor rows.
    ///
    /// # Panics
    /// Panics if any dimension is empty or `rows` does not hold exactly
    /// `aggressors_per_bank` rows per bank.
    pub fn new(
        channels: Vec<usize>,
        banks: Vec<BankAddr>,
        rows: Vec<usize>,
        aggressors_per_bank: usize,
    ) -> Self {
        assert!(!channels.is_empty(), "a grid needs at least one channel");
        assert!(!banks.is_empty(), "a grid needs at least one bank");
        assert!(aggressors_per_bank >= 1, "a grid needs at least one aggressor per bank");
        assert_eq!(
            rows.len(),
            banks.len() * aggressors_per_bank,
            "rows must be bank-major with aggressors_per_bank rows per bank"
        );
        AggressorGrid { channels, banks, rows, aggressors_per_bank }
    }

    /// Number of channel steps in the walk.
    pub fn channel_steps(&self) -> usize {
        self.channels.len()
    }

    /// Number of banks in the grid.
    pub fn bank_steps(&self) -> usize {
        self.banks.len()
    }

    /// Number of aggressor rows per bank.
    pub fn aggressor_steps(&self) -> usize {
        self.aggressors_per_bank
    }

    /// The channels of the walk, in sweep order.
    pub fn channels(&self) -> &[usize] {
        &self.channels
    }

    /// Channel of the given sweep step (wraps around the walk).
    pub fn channel(&self, step: usize) -> usize {
        self.channels[step % self.channels.len()]
    }

    /// Bank of the given bank step (wraps around the bank set).
    pub fn bank(&self, step: usize) -> BankAddr {
        self.banks[step % self.banks.len()]
    }

    /// Raw (un-reduced) aggressor row for a bank/aggressor step pair.
    pub fn row(&self, bank_step: usize, aggressor_step: usize) -> usize {
        let b = bank_step % self.banks.len();
        let a = aggressor_step % self.aggressors_per_bank;
        self.rows[b * self.aggressors_per_bank + a]
    }

    /// Every placed aggressor as `(bank, raw_row)`, bank-major (the order
    /// [`AttackerProfile::aggressor_rows`](crate::AttackerProfile::aggressor_rows)
    /// has always reported).
    pub fn aggressor_rows(&self) -> Vec<(BankAddr, usize)> {
        let mut out = Vec::with_capacity(self.banks.len() * self.aggressors_per_bank);
        for (b, bank) in self.banks.iter().enumerate() {
            for a in 0..self.aggressors_per_bank {
                out.push((*bank, self.rows[b * self.aggressors_per_bank + a]));
            }
        }
        out
    }
}

/// The allocator axis: turns a pattern's [`PlacementRequest`] into a
/// concrete [`AggressorGrid`] for a geometry.
///
/// # Example
///
/// ```
/// use bh_dram::DramGeometry;
/// use bh_workloads::{AggressorPlacement, NeighborPlacement, PlacementRequest};
///
/// let geometry = DramGeometry::paper_ddr5();
/// let request = PlacementRequest { banks: 2, aggressors_per_bank: 3 };
/// let grid = NeighborPlacement::new().place(&request, &geometry);
/// assert_eq!(grid.bank_steps(), 2);
/// assert_eq!(grid.aggressor_steps(), 3);
/// // Aggressors are spaced two rows apart, sandwiching victims.
/// assert_eq!(grid.row(0, 1) - grid.row(0, 0), 2);
/// ```
pub trait AggressorPlacement: fmt::Debug + Send + Sync {
    /// Short label used in scenario names (e.g. `"nbr"`, `"spr"`).
    fn label(&self) -> &'static str;

    /// Places the requested bank/aggressor footprint on `geometry`.
    fn place(&self, request: &PlacementRequest, geometry: &DramGeometry) -> AggressorGrid;
}

/// Mapping-aware neighbor targeting: aggressors occupy the first requested
/// banks (flat bank order) and rows spaced two apart from
/// `AGGRESSOR_BASE`, so every consecutive aggressor pair sandwiches a victim
/// row. This is the placement the pre-framework
/// [`AttackerProfile`](crate::AttackerProfile) always used, including its
/// channel targeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NeighborPlacement {
    channels: ChannelTarget,
}

impl NeighborPlacement {
    /// Neighbor targeting on channel 0 (the single-channel default).
    pub fn new() -> Self {
        NeighborPlacement { channels: ChannelTarget::default() }
    }

    /// Neighbor targeting with an explicit channel target.
    pub fn with_channels(channels: ChannelTarget) -> Self {
        NeighborPlacement { channels }
    }

    /// Neighbor targeting pinned to one channel.
    pub fn pinned(channel: usize) -> Self {
        NeighborPlacement::with_channels(ChannelTarget::pinned(channel))
    }

    /// Neighbor targeting replicated over every channel.
    pub fn interleaved() -> Self {
        NeighborPlacement::with_channels(ChannelTarget::interleave())
    }
}

/// The ordered channel walk a [`ChannelTarget`] denotes on `geometry`.
pub(crate) fn channel_walk(channels: ChannelTarget, geometry: &DramGeometry) -> Vec<usize> {
    let channel_count = geometry.channels.max(1);
    match channels {
        ChannelTarget::Pinned(channel) => vec![channel % channel_count],
        ChannelTarget::Interleave => (0..channel_count).collect(),
    }
}

impl AggressorPlacement for NeighborPlacement {
    fn label(&self) -> &'static str {
        "nbr"
    }

    fn place(&self, request: &PlacementRequest, geometry: &DramGeometry) -> AggressorGrid {
        let banks = request.banks.min(geometry.banks_per_channel()).max(1);
        let bank_addrs: Vec<BankAddr> = (0..banks).map(|b| geometry.bank_from_flat(b)).collect();
        let rows: Vec<usize> = (0..banks)
            .flat_map(|_| (0..request.aggressors_per_bank).map(|a| AGGRESSOR_BASE + 2 * a))
            .collect();
        AggressorGrid::new(
            channel_walk(self.channels, geometry),
            bank_addrs,
            rows,
            request.aggressors_per_bank,
        )
    }
}

/// Bank/channel spreading: banks are strided across the flat bank space (so
/// consecutive bank steps land in different bank groups and ranks), each bank
/// hammers a different row region, and the pattern interleaves over every
/// channel by default — the placement that maximises how thinly the
/// mitigation's per-bank and per-channel state is stretched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpreadPlacement {
    channels: ChannelTarget,
    /// Row offset between consecutive banks' aggressor regions.
    bank_row_stride: usize,
}

impl SpreadPlacement {
    /// Spreading over every channel with the default per-bank row stride.
    pub fn new() -> Self {
        SpreadPlacement { channels: ChannelTarget::interleave(), bank_row_stride: 64 }
    }

    /// Spreading with an explicit channel target.
    pub fn with_channels(mut self, channels: ChannelTarget) -> Self {
        self.channels = channels;
        self
    }

    /// Overrides the row offset between consecutive banks' aggressor regions.
    pub fn with_bank_row_stride(mut self, stride: usize) -> Self {
        self.bank_row_stride = stride.max(2);
        self
    }
}

impl Default for SpreadPlacement {
    fn default() -> Self {
        SpreadPlacement::new()
    }
}

impl AggressorPlacement for SpreadPlacement {
    fn label(&self) -> &'static str {
        "spr"
    }

    fn place(&self, request: &PlacementRequest, geometry: &DramGeometry) -> AggressorGrid {
        let total = geometry.banks_per_channel();
        let banks = request.banks.min(total).max(1);
        // Stride through the flat bank space so consecutive bank steps land
        // as far apart as possible (different bank groups / ranks).
        let stride = (total / banks).max(1);
        let bank_addrs: Vec<BankAddr> =
            (0..banks).map(|b| geometry.bank_from_flat((b * stride) % total)).collect();
        let rows: Vec<usize> = (0..banks)
            .flat_map(|b| {
                (0..request.aggressors_per_bank)
                    .map(move |a| AGGRESSOR_BASE + b * self.bank_row_stride + 2 * a)
            })
            .collect();
        AggressorGrid::new(
            channel_walk(self.channels, geometry),
            bank_addrs,
            rows,
            request.aggressors_per_bank,
        )
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn geometry() -> DramGeometry {
        DramGeometry::paper_ddr5()
    }

    #[test]
    fn neighbor_placement_reproduces_the_legacy_layout() {
        let request = PlacementRequest { banks: 4, aggressors_per_bank: 2 };
        let grid = NeighborPlacement::new().place(&request, &geometry());
        assert_eq!(grid.bank_steps(), 4);
        assert_eq!(grid.channel_steps(), 1);
        assert_eq!(grid.channel(0), 0);
        for b in 0..4 {
            assert_eq!(grid.bank(b), geometry().bank_from_flat(b));
            assert_eq!(grid.row(b, 0), AGGRESSOR_BASE);
            assert_eq!(grid.row(b, 1), AGGRESSOR_BASE + 2);
        }
        assert_eq!(grid.aggressor_rows().len(), 8);
    }

    #[test]
    fn neighbor_placement_clamps_banks_to_the_geometry() {
        let request = PlacementRequest { banks: 10_000, aggressors_per_bank: 2 };
        let grid = NeighborPlacement::new().place(&request, &geometry());
        assert_eq!(grid.bank_steps(), geometry().banks_per_channel());
    }

    #[test]
    fn channel_walks_match_the_channel_target() {
        let g = geometry().with_channels(4);
        let request = PlacementRequest { banks: 1, aggressors_per_bank: 2 };
        let pinned = NeighborPlacement::pinned(6).place(&request, &g);
        assert_eq!(pinned.channels(), &[2], "pinned channel wraps modulo the channel count");
        let interleaved = NeighborPlacement::interleaved().place(&request, &g);
        assert_eq!(interleaved.channels(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spread_placement_lands_in_distinct_banks_and_row_regions() {
        let request = PlacementRequest { banks: 4, aggressors_per_bank: 2 };
        let grid = SpreadPlacement::new().place(&request, &geometry());
        let banks: HashSet<BankAddr> = (0..grid.bank_steps()).map(|b| grid.bank(b)).collect();
        assert_eq!(banks.len(), 4, "spread banks must be distinct");
        // Different banks hammer disjoint row regions.
        let rows: HashSet<usize> = (0..4).map(|b| grid.row(b, 0)).collect();
        assert_eq!(rows.len(), 4);
        // And the banks are *not* the first four flat banks (that is the
        // neighbor placement's layout).
        let neighbor = NeighborPlacement::new().place(&request, &geometry());
        let neighbor_banks: HashSet<BankAddr> =
            (0..neighbor.bank_steps()).map(|b| neighbor.bank(b)).collect();
        assert_ne!(banks, neighbor_banks);
    }

    #[test]
    #[should_panic(expected = "bank-major")]
    fn malformed_grid_rejected() {
        let _ = AggressorGrid::new(vec![0], vec![geometry().bank_from_flat(0)], vec![1, 2, 3], 2);
    }
}
