//! Plain-text table and CSV rendering for the experiment binaries.
//!
//! Every figure/table binary in `bh-bench` prints its results both as an
//! aligned text table (for reading in a terminal) and as CSV (for plotting),
//! using the small renderer defined here — no external dependency needed.

use std::fmt::Write as _;

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let render = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        render(&mut out, &self.header);
        for row in &self.rows {
            render(&mut out, row);
        }
        out
    }
}

/// Formats a float with 3 decimal places, the convention used in result rows.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with one decimal place.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_counts() {
        let mut t = Table::new(["mechanism", "speedup"]);
        assert!(t.is_empty());
        t.push_row(["PARA+BH", "1.846"]);
        t.push_row(["Graphene+BH", "1.2"]);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("mechanism"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns are aligned: "speedup" starts at the same offset in each row.
        let col = lines[0].find("speedup").unwrap();
        assert_eq!(&lines[2][col..col + 5], "1.846");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "note"]);
        t.push_row(["plain", "ok"]);
        t.push_row(["comma,inside", "quote\"inside"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,ok");
        assert_eq!(lines[2], "\"comma,inside\",\"quote\"\"inside\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.901), "90.1%");
    }
}
