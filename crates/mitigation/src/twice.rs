//! TWiCe: Time Window Counters [Lee et al., ISCA 2019].
//!
//! TWiCe keeps a counter table of recently-activated rows. Entries age: every
//! pruning interval, entries whose activation count is too low to ever reach
//! the RowHammer threshold within the remaining refresh window are pruned,
//! which keeps the table small for benign access patterns. Rows whose counter
//! crosses the refresh threshold have their neighbours preventively refreshed.

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::{Cycle, DramGeometry, FlatMap, TimingParams};

/// One TWiCe table entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TwiceEntry {
    /// Activations observed for the row in the current window.
    count: u64,
    /// Number of pruning intervals the entry has lived through.
    life: u64,
}

/// The TWiCe mechanism.
#[derive(Debug)]
pub struct Twice {
    geometry: DramGeometry,
    blast_radius: usize,
    refresh_threshold: u64,
    /// Minimum activations per pruning interval an entry must sustain to stay
    /// in the table (the "pruning threshold rate").
    prune_rate: f64,
    prune_interval: Cycle,
    next_prune: Cycle,
    window_cycles: Cycle,
    window_end: Cycle,
    tables: Vec<FlatMap<TwiceEntry>>,
    /// Live entries across all banks (maintained incrementally so the
    /// per-activation peak update is O(1) instead of a per-bank sum).
    live_entries: usize,
    /// Reusable scratch listing the keys to prune (two-phase prune: mutate
    /// lifetimes, then delete — keeps the open-addressing iteration simple
    /// and allocation-free in the steady state).
    prune_scratch: Vec<u64>,
    triggers: u64,
    pruned_entries: u64,
    peak_entries: usize,
}

impl Twice {
    /// Creates TWiCe for the given system and RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh < 4` or `blast_radius` is zero.
    pub fn new(
        geometry: DramGeometry,
        timing: &TimingParams,
        nrh: u64,
        blast_radius: usize,
    ) -> Self {
        assert!(nrh >= 4, "N_RH must be at least 4");
        assert!(blast_radius > 0, "blast radius must be positive");
        let refresh_threshold = (nrh / 4).max(1);
        let window_cycles = timing.t_refw;
        let prune_interval = timing.t_refi.max(1);
        let intervals_per_window = (window_cycles / prune_interval).max(1);
        let prune_rate = refresh_threshold as f64 / intervals_per_window as f64;
        let banks = geometry.banks_per_channel();
        Twice {
            geometry,
            blast_radius,
            refresh_threshold,
            prune_rate,
            prune_interval,
            next_prune: prune_interval,
            window_cycles,
            window_end: window_cycles,
            tables: (0..banks).map(|_| FlatMap::with_capacity(64)).collect(),
            live_entries: 0,
            prune_scratch: Vec::new(),
            triggers: 0,
            pruned_entries: 0,
            peak_entries: 0,
        }
    }

    /// The refresh threshold in use.
    pub fn refresh_threshold(&self) -> u64 {
        self.refresh_threshold
    }

    /// Preventive refreshes triggered so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Entries pruned so far.
    pub fn pruned_entries(&self) -> u64 {
        self.pruned_entries
    }

    /// Largest number of simultaneously live table entries observed.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    fn maybe_prune_and_reset(&mut self, cycle: Cycle) {
        if cycle >= self.window_end {
            for t in &mut self.tables {
                t.clear();
            }
            self.live_entries = 0;
            while cycle >= self.window_end {
                self.window_end += self.window_cycles;
            }
            self.next_prune = self.window_end - self.window_cycles + self.prune_interval;
        }
        while cycle >= self.next_prune {
            let rate = self.prune_rate;
            let mut pruned = 0u64;
            for t in &mut self.tables {
                self.prune_scratch.clear();
                let scratch = &mut self.prune_scratch;
                t.for_each_mut(|row, e| {
                    e.life += 1;
                    // Keep an entry only if it sustains the rate needed to
                    // reach the refresh threshold within the window.
                    if (e.count as f64) < rate * e.life as f64 {
                        scratch.push(row);
                    }
                });
                for i in 0..self.prune_scratch.len() {
                    t.remove(self.prune_scratch[i]);
                }
                pruned += self.prune_scratch.len() as u64;
            }
            self.live_entries -= pruned as usize;
            self.pruned_entries += pruned;
            self.next_prune += self.prune_interval;
        }
    }
}

impl TriggerMechanism for Twice {
    fn name(&self) -> &'static str {
        "TWiCe"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Twice
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        self.maybe_prune_and_reset(event.cycle);
        let bank = self.geometry.flat_bank(event.row.bank);
        let table = &mut self.tables[bank];
        let len_before = table.len();
        let entry = table.or_insert(event.row.row as u64, TwiceEntry { count: 0, life: 0 });
        entry.count += 1;
        let count = entry.count;
        self.live_entries += table.len() - len_before;
        self.peak_entries = self.peak_entries.max(self.live_entries);
        if count >= self.refresh_threshold {
            self.tables[bank].remove(event.row.row as u64);
            self.live_entries -= 1;
            self.triggers += 1;
            sink.push_refresh_rows(self.geometry.neighbors(event.row, self.blast_radius));
        }
    }

    fn storage_bits(&self) -> u64 {
        // TWiCe sizes its table for the worst-case number of concurrently
        // "valid" rows: activations per pruning interval bound how many rows
        // can sustain the pruning rate.
        let row_bits = (usize::BITS - (self.geometry.rows_per_bank - 1).leading_zeros()) as u64;
        let counter_bits = 64 - self.refresh_threshold.leading_zeros() as u64 + 1;
        let life_bits = 16u64;
        let worst_entries = (self.window_cycles / self.prune_interval).max(1)
            * self.geometry.banks_per_channel() as u64;
        worst_entries.min(64 * 1024) * (row_bits + counter_bits + life_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, RowAddr, ThreadId};

    fn mech(nrh: u64) -> Twice {
        Twice::new(DramGeometry::tiny(), &TimingParams::fast_test(), nrh, 1)
    }

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn hot_row_triggers_at_threshold() {
        let mut t = mech(64); // threshold 16
        assert_eq!(t.refresh_threshold(), 16);
        let mut triggered_at = None;
        for i in 0..16u64 {
            // Keep the activations dense so pruning cannot interfere.
            let acts = t.on_activation_vec(&event(40, i));
            if !acts.is_empty() {
                triggered_at = Some(i);
                match &acts[0] {
                    PreventiveAction::RefreshRows(rows) => {
                        assert!(rows.iter().all(|r| r.row == 39 || r.row == 41))
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(triggered_at, Some(15));
        assert_eq!(t.triggers(), 1);
    }

    #[test]
    fn cold_rows_are_pruned_over_time() {
        let timing = TimingParams::fast_test();
        let mut t = Twice::new(DramGeometry::tiny(), &timing, 4096, 1);
        // Touch many rows once at cycle 0..100.
        for r in 0..50usize {
            t.on_activation_vec(&event(r, r as u64));
        }
        assert!(t.peak_entries() >= 50);
        // Advance several pruning intervals with a single (hot-ish) row.
        let mut cycle = 0;
        for i in 0..20u64 {
            cycle = i * timing.t_refi + 200;
            t.on_activation_vec(&event(100, cycle));
        }
        assert!(t.pruned_entries() >= 40, "pruned {}", t.pruned_entries());
        let live: usize = t.tables.iter().map(FlatMap::len).sum();
        assert!(live < 50, "live entries {live}");
        let _ = cycle;
    }

    #[test]
    fn window_reset_forgets_history() {
        let timing = TimingParams::fast_test();
        let mut t = Twice::new(DramGeometry::tiny(), &timing, 64, 1);
        for i in 0..15u64 {
            assert!(t.on_activation_vec(&event(40, i)).is_empty());
        }
        let far = timing.t_refw + 1;
        // After the window reset the row needs a full threshold again.
        for i in 0..15u64 {
            assert!(t.on_activation_vec(&event(40, far + i)).is_empty(), "i={i}");
        }
        assert!(!t.on_activation_vec(&event(40, far + 15)).is_empty());
    }

    #[test]
    fn triggers_scale_with_hammer_count() {
        let mut t = mech(64);
        let mut triggers = 0;
        for i in 0..160u64 {
            if !t.on_activation_vec(&event(40, i)).is_empty() {
                triggers += 1;
            }
        }
        assert_eq!(triggers, 10); // 160 / 16
    }

    #[test]
    fn metadata() {
        let t = mech(1024);
        assert_eq!(t.name(), "TWiCe");
        assert_eq!(t.kind(), MechanismKind::Twice);
        assert!(t.storage_bits() > 0);
    }
}
