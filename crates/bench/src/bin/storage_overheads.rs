//! Storage-overhead comparison referenced in §3 and §8.3: the on-chip state
//! each mitigation mechanism needs as N_RH decreases (Hydra's tens of KiB,
//! Graphene/TWiCe/AQUA growth, BlockHammer's growing history, and
//! BreakHammer's near-zero two-counters-per-thread cost).

use bh_bench::Scale;
use bh_core::hw_cost::HardwareCost;
use bh_dram::{DramGeometry, TimingParams};
use bh_mitigation::MechanismKind;
use bh_stats::Table;

fn main() {
    let scale = Scale::from_env();
    let geometry = DramGeometry::paper_ddr5();
    let timing = TimingParams::ddr5_4800();
    let mechanisms = [
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ];

    let mut table = Table::new(["nrh", "mechanism", "storage_kib"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            let built = mech.build(&geometry, &timing, nrh, 0);
            table.push_row([
                nrh.to_string(),
                mech.to_string(),
                format!("{:.2}", built.storage_bits() as f64 / 8.0 / 1024.0),
            ]);
        }
        let bh = HardwareCost::estimate(4, 1);
        table.push_row([
            nrh.to_string(),
            "BreakHammer".to_string(),
            format!("{:.4}", bh.storage_bits as f64 / 8.0 / 1024.0),
        ]);
    }
    bh_bench::print_results(
        "Mechanism storage overheads vs. N_RH (processor-die state, KiB)",
        &table,
    );
}
