//! The rule implementations behind `bh_analyze`.
//!
//! Every rule operates on the token stream of [`crate::lexer`] plus a small
//! amount of per-file context (crate classification, `#[cfg(test)]` regions,
//! the inline allowlist). Rules are deliberately *heuristic at the token
//! level* — they aim to make determinism and safety hazards loud and
//! greppable, not to re-implement the borrow checker; the inline allowlist
//! (`// bh-analyze: allow(<rule>) -- <reason>`) is the escape hatch for the
//! rare justified exception, and the mandatory reason keeps every escape
//! self-documenting.

use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, SourceFile};
use std::collections::BTreeMap;

/// The rule identifiers `bh_analyze` knows (plus the internal `A0` meta rule
/// diagnosing malformed allowlist comments, which cannot itself be allowed).
pub const RULE_IDS: &[&str] = &["D1", "D2", "S1", "E1", "X1"];

/// Crates whose simulation results are pinned by golden digests: hash-order
/// nondeterminism is banned outright in their non-test code (rule D1).
pub const DIGEST_PINNED_CRATES: &[&str] = &["dram", "mem", "mitigation", "sim", "cpu", "workloads"];

/// The crate exempt from rule D2 (its whole purpose is wall-clock timing).
pub const D2_EXEMPT_CRATE: &str = "bench";

/// Ambient-nondeterminism identifiers rejected by rule D2.
const D2_BANNED_IDENTS: &[(&str, &str)] = &[
    ("Instant", "std::time::Instant reads the wall clock"),
    ("SystemTime", "std::time::SystemTime reads the wall clock"),
    ("thread_rng", "thread_rng draws from an ambient, unseeded RNG"),
];

/// Workspace-level facts shared by every per-file rule pass: the knob
/// registry parsed from `bh_core::knobs` (rule E1) and the set of structs
/// marked `bh-exhaustive` (rule X1).
#[derive(Debug, Default)]
pub struct WorkspaceContext {
    /// Registered knob names mapped to the registry line declaring them.
    pub knob_registry: BTreeMap<String, u32>,
    /// Relative path of the registry file (diagnostic anchor for E1).
    pub registry_path: String,
    /// `bh-exhaustive`-marked struct names, mapped to `file:line` of the
    /// marker (for diagnostics).
    pub exhaustive_structs: BTreeMap<String, String>,
}

impl WorkspaceContext {
    /// Builds the workspace context from the lexed files (first pass).
    pub fn gather(files: &[SourceFile]) -> Self {
        let mut ctx = WorkspaceContext::default();
        for file in files {
            if file.rel_path.ends_with("crates/core/src/knobs.rs") {
                ctx.registry_path = file.rel_path.clone();
                collect_knob_registry(&file.tokens, &mut ctx.knob_registry);
            }
            collect_exhaustive_markers(file, &mut ctx.exhaustive_structs);
        }
        ctx
    }
}

/// Extracts the `BH_*` string literals inside the `KNOBS` table. Scoped to
/// the bracketed initializer so test fixtures elsewhere in the file (e.g.
/// `"BH_NOT_A_KNOB"`) are not mistaken for registrations.
fn collect_knob_registry(tokens: &[Token], registry: &mut BTreeMap<String, u32>) {
    let Some(start) =
        tokens.windows(2).position(|w| w[0].is_ident("const") && w[1].is_ident("KNOBS"))
    else {
        return;
    };
    // Skip past the `=` so the bracket of the *initializer* is matched, not
    // the `[` inside the `&[Knob]` type annotation.
    let Some(eq) = tokens[start..].iter().position(|t| t.is_punct("=")).map(|i| i + start) else {
        return;
    };
    let Some(open) = tokens[eq..].iter().position(|t| t.is_punct("[")).map(|i| i + eq) else {
        return;
    };
    let mut depth = 0i32;
    for token in &tokens[open..] {
        if token.kind == TokenKind::Punct {
            match token.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if token.kind == TokenKind::Str && token.text.starts_with("BH_") {
            registry.entry(token.text.clone()).or_insert(token.line);
        }
    }
}

/// Records `// bh-exhaustive`-marked struct names: the marker comment must
/// precede the struct item (attributes and further comments may sit between).
fn collect_exhaustive_markers(file: &SourceFile, out: &mut BTreeMap<String, String>) {
    for (i, token) in file.tokens.iter().enumerate() {
        if token.kind != TokenKind::Comment || !token.text.starts_with("bh-exhaustive") {
            continue;
        }
        // The next `struct` keyword names the marked struct; the scan gives
        // up after a bounded window so a stray marker cannot capture an
        // unrelated item much further down the file.
        for next in &file.tokens[i + 1..(i + 40).min(file.tokens.len())] {
            if next.is_ident("struct") {
                let index = file.tokens.iter().position(|t| std::ptr::eq(t, next));
                if let Some(pos) = index {
                    if let Some(name) = file.tokens.get(pos + 1) {
                        if name.kind == TokenKind::Ident {
                            out.insert(
                                name.text.clone(),
                                format!("{}:{}", file.rel_path, token.line),
                            );
                        }
                    }
                }
                break;
            }
        }
    }
}

/// One parsed `// bh-analyze: allow(<rules>) -- <reason>` comment.
#[derive(Debug)]
struct Allow {
    rules: Vec<String>,
    line: u32,
}

/// Per-file analysis state: lexed tokens, line classification, `#[cfg(test)]`
/// regions and the parsed allowlist.
pub struct FileAnalysis<'a> {
    file: &'a SourceFile,
    /// Raw source lines (1-based access via `line(n)`).
    lines: Vec<&'a str>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]`/`#[test]` items.
    test_regions: Vec<(u32, u32)>,
    allows: Vec<Allow>,
}

impl std::fmt::Debug for FileAnalysis<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileAnalysis").field("path", &self.file.rel_path).finish_non_exhaustive()
    }
}

impl<'a> FileAnalysis<'a> {
    /// Prepares the per-file context, emitting `A0` diagnostics for
    /// malformed allowlist comments.
    pub fn new(file: &'a SourceFile, diagnostics: &mut Vec<Diagnostic>) -> Self {
        let lines = file.source.lines().collect();
        let test_regions = find_test_regions(&file.tokens);
        let mut allows = Vec::new();
        for token in &file.tokens {
            if token.kind != TokenKind::Comment {
                continue;
            }
            let Some(rest) = token.text.strip_prefix("bh-analyze:") else { continue };
            match parse_allow(rest.trim()) {
                Ok(rules) => allows.push(Allow { rules, line: token.line }),
                Err(problem) => diagnostics.push(Diagnostic {
                    path: file.rel_path.clone(),
                    line: token.line,
                    rule: "A0",
                    message: format!("malformed bh-analyze comment: {problem}"),
                }),
            }
        }
        FileAnalysis { file, lines, test_regions, allows }
    }

    fn line(&self, n: u32) -> &str {
        self.lines.get(n.saturating_sub(1) as usize).copied().unwrap_or("")
    }

    /// True when `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when a violation of `rule` at `line` is covered by an allowlist
    /// comment on the same line or the line directly above.
    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// Pushes a diagnostic unless an allowlist comment covers it.
    fn report(
        &self,
        diagnostics: &mut Vec<Diagnostic>,
        rule: &'static str,
        line: u32,
        message: String,
    ) {
        if self.allowed(rule, line) {
            return;
        }
        diagnostics.push(Diagnostic { path: self.file.rel_path.clone(), line, rule, message });
    }
}

/// Parses the tail of a `bh-analyze:` comment: `allow(<R>[, <R>…]) -- reason`.
fn parse_allow(rest: &str) -> Result<Vec<String>, String> {
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>) -- <reason>`".to_string());
    };
    let Some((list, tail)) = inner.split_once(')') else {
        return Err("unclosed allow(...) list".to_string());
    };
    let rules: Vec<String> =
        list.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("allow() names no rules".to_string());
    }
    for rule in &rules {
        if !RULE_IDS.contains(&rule.as_str()) {
            return Err(format!("unknown rule `{rule}` (known: {})", RULE_IDS.join(", ")));
        }
    }
    let tail = tail.trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing mandatory `-- <reason>` after allow(...)".to_string());
    };
    if reason.trim().is_empty() {
        return Err("the `--` reason must not be empty".to_string());
    }
    Ok(rules)
}

/// Finds `#[cfg(test)] mod … { … }` / `#[test] fn … { … }` line spans.
fn find_test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct("#") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens between [ and its matching ].
        let Some(open) = tokens.get(i + 1).filter(|t| t.is_punct("[")) else {
            i += 1;
            continue;
        };
        let _ = open;
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident {
                attr_idents.push(&t.text);
            }
            j += 1;
        }
        let is_test_attr = match attr_idents.first() {
            Some(&"cfg") => attr_idents.contains(&"test"),
            Some(&"test") => true,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // The attribute covers the next item: its region runs to the matching
        // close of the item's first `{` (or ends at a `;` for extern items).
        let mut k = j + 1;
        let mut brace_depth = 0i32;
        let start_line = tokens[i].line;
        let mut end_line = start_line;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => brace_depth += 1,
                    "}" => {
                        brace_depth -= 1;
                        if brace_depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if brace_depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        regions.push((start_line, end_line));
        i = j + 1;
    }
    regions
}

/// Rule D1: no `HashMap`/`HashSet` in the non-test code of digest-pinned
/// crates. Mere presence is banned — iteration order is the hazard, and a
/// lookup-only use must carry an explicit allow with its justification.
pub fn rule_d1(analysis: &FileAnalysis<'_>, diagnostics: &mut Vec<Diagnostic>) {
    let Some(krate) = analysis.file.crate_name.as_deref() else { return };
    if !DIGEST_PINNED_CRATES.contains(&krate) || analysis.file.is_test_path {
        return;
    }
    for token in &analysis.file.tokens {
        if token.kind != TokenKind::Ident {
            continue;
        }
        if token.text != "HashMap" && token.text != "HashSet" {
            continue;
        }
        if analysis.in_test_region(token.line) {
            continue;
        }
        analysis.report(
            diagnostics,
            "D1",
            token.line,
            format!(
                "{} in digest-pinned crate bh_{krate}: hash iteration order is \
                 nondeterministic; use FlatMap/BTreeMap or a sorted drain",
                token.text
            ),
        );
    }
}

/// Rule D2: no wall-clock or ambient-nondeterminism sources outside
/// `bh_bench` and test code.
pub fn rule_d2(analysis: &FileAnalysis<'_>, diagnostics: &mut Vec<Diagnostic>) {
    if analysis.file.crate_name.as_deref() == Some(D2_EXEMPT_CRATE) || analysis.file.is_test_path {
        return;
    }
    let tokens = &analysis.file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if analysis.in_test_region(token.line) {
            continue;
        }
        match token.kind {
            TokenKind::Ident => {
                for &(ident, why) in D2_BANNED_IDENTS {
                    if token.text == ident {
                        analysis.report(
                            diagnostics,
                            "D2",
                            token.line,
                            format!("{why}; simulation code must stay deterministic"),
                        );
                    }
                }
                // `thread::current()` (thread-id-dependent behavior).
                if token.text == "thread"
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(i + 2).is_some_and(|t| t.is_ident("current"))
                {
                    analysis.report(
                        diagnostics,
                        "D2",
                        token.line,
                        "thread::current() makes behavior depend on scheduling identity"
                            .to_string(),
                    );
                }
            }
            // Pointer-value formatting: addresses vary run to run (ASLR).
            // The needle is assembled from chars so this rule's own source
            // does not contain the banned byte sequence.
            TokenKind::Str if token.text.contains(&[':', 'p', '}'].iter().collect::<String>()) => {
                analysis.report(
                    diagnostics,
                    "D2",
                    token.line,
                    "pointer-value formatting leaks ASLR-randomized addresses into output"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// Rule S1: every `unsafe` keyword (block, fn, impl) must be immediately
/// preceded by a `// SAFETY:` comment (or a `# Safety` doc section reachable
/// through the contiguous comment/attribute block above it).
pub fn rule_s1(analysis: &FileAnalysis<'_>, diagnostics: &mut Vec<Diagnostic>) {
    for token in &analysis.file.tokens {
        if !token.is_ident("unsafe") {
            continue;
        }
        if !safety_comment_precedes(analysis, token.line) {
            analysis.report(
                diagnostics,
                "S1",
                token.line,
                "`unsafe` without an immediately preceding `// SAFETY:` comment (or \
                 `# Safety` doc section)"
                    .to_string(),
            );
        }
    }
}

/// Walks upward from the line holding `unsafe` through the contiguous run of
/// comment / attribute / blank lines, accepting the first comment that
/// carries a `SAFETY:` or `# Safety` marker. A same-line trailing comment
/// also counts.
fn safety_comment_precedes(analysis: &FileAnalysis<'_>, line: u32) -> bool {
    let has_marker = |s: &str| s.contains("SAFETY:") || s.contains("# Safety");
    if has_marker(analysis.line(line)) {
        return true;
    }
    let mut n = line.saturating_sub(1);
    while n >= 1 {
        let trimmed = analysis.line(n).trim();
        if trimmed.is_empty() || trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            n -= 1;
            continue;
        }
        let is_comment =
            trimmed.starts_with("//") || trimmed.starts_with("/*") || trimmed.starts_with('*');
        if is_comment {
            if has_marker(trimmed) {
                return true;
            }
            n -= 1;
            continue;
        }
        return false;
    }
    false
}

/// Rule E1 (per-file half): every literal `env::var("BH_…")` /
/// `env::var_os("BH_…")` read must name a knob registered in
/// `bh_core::knobs::KNOBS`.
pub fn rule_e1_sites(
    analysis: &FileAnalysis<'_>,
    ctx: &WorkspaceContext,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let tokens = &analysis.file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("env") {
            continue;
        }
        let reads_var = tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("var") || t.is_ident("var_os"));
        if !reads_var {
            continue;
        }
        let Some(name) = tokens.get(i + 4) else { continue };
        if !(tokens[i + 3].is_punct("(") && name.kind == TokenKind::Str) {
            continue;
        }
        if !name.text.starts_with("BH_") {
            continue;
        }
        if !ctx.knob_registry.contains_key(&name.text) {
            analysis.report(
                diagnostics,
                "E1",
                name.line,
                format!(
                    "`{}` is read from the environment but not registered in \
                     bh_core::knobs::KNOBS",
                    name.text
                ),
            );
        }
    }
}

/// Rule E1 (workspace half): every registered knob must appear in the README
/// knob table.
pub fn rule_e1_readme(
    ctx: &WorkspaceContext,
    readme: Option<&str>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if ctx.knob_registry.is_empty() {
        return;
    }
    let Some(readme) = readme else {
        diagnostics.push(Diagnostic {
            path: ctx.registry_path.clone(),
            line: 1,
            rule: "E1",
            message: "knobs are registered but the workspace has no README.md to document \
                      them"
                .to_string(),
        });
        return;
    };
    for (name, &line) in &ctx.knob_registry {
        if !readme.contains(name.as_str()) {
            diagnostics.push(Diagnostic {
                path: ctx.registry_path.clone(),
                line,
                rule: "E1",
                message: format!("registered knob `{name}` is missing from the README knob table"),
            });
        }
    }
}

/// Keywords that, when directly preceding `Name {`, mean the brace opens an
/// item or type body rather than a struct literal/pattern.
const X1_EXCLUDED_PREV: &[&str] =
    &["impl", "struct", "enum", "trait", "union", "mod", "fn", "dyn", "as", "in"];

/// Rule X1: a struct marked `// bh-exhaustive` must be used exhaustively —
/// no `..` rest pattern or functional-update tail at any `Name { … }` site.
pub fn rule_x1(
    analysis: &FileAnalysis<'_>,
    ctx: &WorkspaceContext,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let tokens = &analysis.file.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || !ctx.exhaustive_structs.contains_key(&token.text) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct("{")) {
            continue;
        }
        // Walk back over a `path::to::Name` chain, then check what precedes:
        // `impl Name {`, `-> Name {`, `struct Name {` … open item bodies, not
        // struct-literal/pattern braces.
        let mut head = i;
        while head >= 2
            && tokens[head - 1].is_punct("::")
            && tokens[head - 2].kind == TokenKind::Ident
        {
            head -= 2;
        }
        if head > 0 {
            let prev = &tokens[head - 1];
            let excludes_by_ident =
                prev.kind == TokenKind::Ident && X1_EXCLUDED_PREV.contains(&prev.text.as_str());
            let excludes_by_punct = prev.kind == TokenKind::Punct
                && matches!(prev.text.as_str(), "->" | ":" | "<" | "&" | "#");
            if excludes_by_ident || excludes_by_punct {
                continue;
            }
        }
        // Scan the braced region (depth-balanced over all bracket kinds) for
        // a top-level `..` / `..=`.
        let mut depth = 0i32;
        for t in &tokens[i + 1..] {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ".." | "..=" if depth == 1 => {
                        analysis.report(
                            diagnostics,
                            "X1",
                            t.line,
                            format!(
                                "`..` in a `{} {{ … }}` site: the struct is marked \
                                 bh-exhaustive ({}) — name every field so new fields \
                                 cannot silently drop out of accumulate/merge paths",
                                token.text, ctx.exhaustive_structs[&token.text]
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}
